"""CACTI-style area model for DR-STRaNGe's hardware structures (Section 8.9).

The paper models the random number buffer, the RNG request queue and the
DRAM idleness predictor with CACTI at the 22 nm node and reports an area
overhead of 0.0022 mm^2 (0.00048% of an Intel Cascade Lake core) with the
simple predictor, or 0.012 mm^2 with the RL predictor whose Q-table needs
8 KB of storage.

This reproduction uses a linear SRAM area model calibrated so the default
DR-STRaNGe configuration reproduces those numbers: the structures are all
small SRAM arrays, whose area at a fixed technology node is dominated by
the number of bits.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import DRStrangeConfig

#: Area of an Intel Cascade Lake CPU core in mm^2 (the paper's reference
#: denominator, from WikiChip).
CASCADE_LAKE_CORE_AREA_MM2 = 460.0

#: Effective SRAM area per bit at 22 nm, including peripheral overhead of
#: small arrays (mm^2 per bit).  Calibrated so the Table 1 configuration
#: (16-entry 64-bit buffer + 32-entry RNG queue + 4 x 256-entry 2-bit
#: predictor tables) lands at ~0.0022 mm^2.
SRAM_MM2_PER_BIT = 4.0e-7


@dataclass(frozen=True)
class AreaBreakdown:
    """Area of each DR-STRaNGe structure (mm^2)."""

    random_number_buffer_mm2: float
    rng_request_queue_mm2: float
    predictor_mm2: float

    @property
    def total_mm2(self) -> float:
        return self.random_number_buffer_mm2 + self.rng_request_queue_mm2 + self.predictor_mm2

    def fraction_of_core(self, core_area_mm2: float = CASCADE_LAKE_CORE_AREA_MM2) -> float:
        """Total area as a fraction of a CPU core's area."""
        if core_area_mm2 <= 0:
            raise ValueError("core_area_mm2 must be positive")
        return self.total_mm2 / core_area_mm2


class AreaModel:
    """Estimates the area overhead of a DR-STRaNGe configuration."""

    def __init__(
        self,
        mm2_per_bit: float = SRAM_MM2_PER_BIT,
        num_channels: int = 4,
        rng_queue_entries: int = 32,
        rng_queue_entry_bits: int = 64,
    ) -> None:
        if mm2_per_bit <= 0:
            raise ValueError("mm2_per_bit must be positive")
        if num_channels <= 0:
            raise ValueError("num_channels must be positive")
        if rng_queue_entries <= 0 or rng_queue_entry_bits <= 0:
            raise ValueError("RNG queue dimensions must be positive")
        self.mm2_per_bit = mm2_per_bit
        self.num_channels = num_channels
        self.rng_queue_entries = rng_queue_entries
        self.rng_queue_entry_bits = rng_queue_entry_bits

    def breakdown(self, config: DRStrangeConfig) -> AreaBreakdown:
        """Area breakdown for ``config``."""
        buffer_bits = config.buffer_capacity_bits
        # The RNG request queue is a single shared structure in the memory
        # controller (requests are tagged with their target channel).
        queue_bits = self.rng_queue_entries * self.rng_queue_entry_bits

        if config.predictor == "simple":
            predictor_bits = 2 * config.predictor_table_entries * self.num_channels
        elif config.predictor == "rl":
            # 4-byte Q-values, two actions, 2^history_bits states (Section 8.9: 8 KB).
            predictor_bits = (1 << config.rl_history_bits) * 2 * 32
        else:
            predictor_bits = 0

        return AreaBreakdown(
            random_number_buffer_mm2=buffer_bits * self.mm2_per_bit,
            rng_request_queue_mm2=queue_bits * self.mm2_per_bit,
            predictor_mm2=predictor_bits * self.mm2_per_bit,
        )

    def total_area_mm2(self, config: DRStrangeConfig) -> float:
        """Total area overhead of ``config`` in mm^2."""
        return self.breakdown(config).total_mm2
