"""DRAMPower-style energy model.

The paper estimates DRAM energy with DRAMPower fed by Ramulator's command
traces (Section 8.9) and reports a 21% energy reduction, driven mostly by
a 15.8% reduction in the total number of memory cycles spent on RNG and
non-RNG accesses.  This module reproduces that methodology at the counter
level: per-command energies (activate/precharge pair, read, write, RNG
access burst) plus background power proportional to the simulated time.

The per-operation energies are representative DDR3 values derived from
the Micron power calculator; they are configurable so users can plug in
their own device numbers.  What matters for reproducing the paper's
result is the *relative* energy of two designs running the same workload,
which is dominated by execution time (background energy) and by the
number of RNG-mode cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dram.bank import BankStats
from ..dram.channel import ChannelStats


@dataclass(frozen=True)
class EnergyParameters:
    """Per-operation DRAM energy costs (nanojoules) and background power."""

    activate_precharge_nj: float = 2.5
    read_nj: float = 1.6
    write_nj: float = 1.8
    #: Energy of one RNG-mode cycle (all banks of a channel active with
    #: violated timings); charged per cycle the channel spends in RNG mode.
    rng_cycle_nj: float = 0.04
    #: Background (standby + refresh) power per channel, watts.
    background_power_w: float = 0.35
    cycle_time_ns: float = 1.25

    def __post_init__(self) -> None:
        for name in (
            "activate_precharge_nj",
            "read_nj",
            "write_nj",
            "rng_cycle_nj",
            "background_power_w",
            "cycle_time_ns",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy consumption split by source (nanojoules)."""

    activation_nj: float
    read_nj: float
    write_nj: float
    rng_nj: float
    background_nj: float

    @property
    def dynamic_nj(self) -> float:
        return self.activation_nj + self.read_nj + self.write_nj + self.rng_nj

    @property
    def total_nj(self) -> float:
        return self.dynamic_nj + self.background_nj

    @property
    def total_mj(self) -> float:
        return self.total_nj * 1e-6


class DRAMEnergyModel:
    """Computes DRAM energy from simulation counters."""

    def __init__(self, parameters: EnergyParameters | None = None, num_channels: int = 4) -> None:
        if num_channels <= 0:
            raise ValueError("num_channels must be positive")
        self.parameters = parameters or EnergyParameters()
        self.num_channels = num_channels

    def energy(
        self,
        bank_stats: BankStats,
        channel_stats: ChannelStats,
        total_cycles: int,
    ) -> EnergyBreakdown:
        """Energy of one simulation given aggregated device counters."""
        if total_cycles < 0:
            raise ValueError("total_cycles must be non-negative")
        p = self.parameters
        activation_nj = bank_stats.activations * p.activate_precharge_nj
        read_nj = channel_stats.read_accesses * p.read_nj
        write_nj = channel_stats.write_accesses * p.write_nj
        rng_nj = channel_stats.rng_cycles * p.rng_cycle_nj
        elapsed_ns = total_cycles * p.cycle_time_ns
        background_nj = p.background_power_w * elapsed_ns * self.num_channels
        return EnergyBreakdown(
            activation_nj=activation_nj,
            read_nj=read_nj,
            write_nj=write_nj,
            rng_nj=rng_nj,
            background_nj=background_nj,
        )
