"""Energy (DRAMPower-style) and area (CACTI-style) models."""

from .area import CASCADE_LAKE_CORE_AREA_MM2, AreaBreakdown, AreaModel
from .drampower import DRAMEnergyModel, EnergyBreakdown, EnergyParameters

__all__ = [
    "AreaBreakdown",
    "AreaModel",
    "CASCADE_LAKE_CORE_AREA_MM2",
    "DRAMEnergyModel",
    "EnergyBreakdown",
    "EnergyParameters",
]
