"""Content-addressed cache of generated specialised-simulator source.

Two layers, both keyed by the :func:`~repro.sim.codegen.spec_digest` of
the folded config slice (which already includes ``CODEGEN_VERSION`` and
the digest of the template unit sources, so a template edit or version
bump changes every key):

* an in-process module cache (digest -> compiled ``dispatch`` callable),
  guarded by a lock — concurrent tenants of the sweep service with
  *different* engine or config choices resolve to different digests and
  can never observe each other's generated module;
* an optional on-disk source store under ``<cache-dir>/codegen/<digest>.py``
  so later processes skip the AST specialisation work entirely.

Disk-load failures follow :meth:`ResultCache.get
<repro.orchestration.cache.ResultCache.get>`: a *corrupt* entry (header
missing, content hash mismatch, source that no longer compiles — a
killed writer, a torn CI cache restore, a hand edit) is deleted so it
cannot shadow the regenerated entry; transient read errors (``OSError``)
miss non-destructively.  Writes are atomic (temp file + ``os.replace``).
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
from pathlib import Path
from typing import Callable, Dict, Optional

from ... import telemetry

#: Subdirectory of a result-cache directory holding generated sources.
CODEGEN_DIR = "codegen"

#: First-line marker of every cached source file.  The trailing hash is
#: the sha256 of everything after the header line; a mismatch means the
#: file does not contain what the generator wrote.
_HEADER_PREFIX = "# repro-codegen sha256:"

_lock = threading.Lock()
_modules: Dict[str, Callable] = {}
_disk_root: Optional[Path] = None

#: Process-lifetime counters, reported by ``repro cache`` / ``repro status``.
_counters = {"memory_hits": 0, "disk_hits": 0, "emits": 0, "corrupt": 0}


def set_cache_dir(cache_dir: "str | os.PathLike | None") -> None:
    """Point the disk layer at ``<cache_dir>/codegen`` (``None`` disables).

    Unset by default so library use (tests, embedding) never writes
    outside an explicitly chosen cache directory; the CLI calls this
    with its ``--cache-dir``.
    """
    global _disk_root
    _disk_root = None if cache_dir is None else Path(cache_dir) / CODEGEN_DIR


def cache_dir() -> Optional[Path]:
    """The active disk directory, or ``None`` when disk caching is off."""
    return _disk_root


def source_path(digest: str) -> Optional[Path]:
    """Disk path of the source cached under ``digest`` (if disk is on)."""
    return None if _disk_root is None else _disk_root / f"{digest}.py"


def _content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def load_source(digest: str) -> Optional[str]:
    """The cached source for ``digest``, or ``None`` on a miss.

    Verifies the content-hash header; a stale or corrupted file is
    deleted (a regenerate follows under the same digest), transient
    read errors are non-destructive misses.
    """
    path = source_path(digest)
    if path is None:
        return None
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return None
    header, newline, body = text.partition("\n")
    if (
        not newline
        or not header.startswith(_HEADER_PREFIX)
        or header[len(_HEADER_PREFIX) :].strip() != _content_hash(body)
    ):
        _counters["corrupt"] += 1
        telemetry.counter("codegen.corrupt")
        try:
            path.unlink()
        except OSError:
            pass
        return None
    return body


def store_source(digest: str, source: str) -> None:
    """Atomically persist ``source`` under ``digest`` (no-op without disk)."""
    path = source_path(digest)
    if path is None:
        return
    payload = f"{_HEADER_PREFIX}{_content_hash(source)}\n{source}"
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    except OSError:
        return  # unwritable cache dir: run from memory only
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(tmp_name, path)
    except OSError:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass


def get_module(digest: str) -> Optional[Callable]:
    """The in-process compiled dispatch for ``digest``, if present."""
    with _lock:
        dispatch = _modules.get(digest)
    if dispatch is not None:
        _counters["memory_hits"] += 1
        telemetry.counter("codegen.memory_hits")
    return dispatch


def put_module(digest: str, dispatch: Callable) -> Callable:
    """Publish a compiled dispatch; first writer wins (idempotent)."""
    with _lock:
        return _modules.setdefault(digest, dispatch)


def note_disk_hit() -> None:
    _counters["disk_hits"] += 1
    telemetry.counter("codegen.disk_hits")


def note_emit() -> None:
    _counters["emits"] += 1
    telemetry.counter("codegen.emits")


def note_corrupt() -> None:
    _counters["corrupt"] += 1
    telemetry.counter("codegen.corrupt")


def stats() -> Dict:
    """Counters plus a snapshot of the on-disk store (for ``repro cache``)."""
    entries = 0
    total_bytes = 0
    if _disk_root is not None and _disk_root.is_dir():
        for entry in sorted(_disk_root.glob("*.py")):
            try:
                total_bytes += entry.stat().st_size
            except OSError:
                continue
            entries += 1
    return {
        "entries": entries,
        "total_bytes": total_bytes,
        "memory_entries": len(_modules),
        **_counters,
    }


def clear() -> None:
    """Drop the in-process modules and every on-disk generated source."""
    with _lock:
        _modules.clear()
    for name in _counters:
        _counters[name] = 0
    if _disk_root is not None and _disk_root.is_dir():
        for entry in sorted(_disk_root.glob("*.py")):
            try:
                entry.unlink()
            except OSError:
                pass
