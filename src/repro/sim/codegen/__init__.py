"""Specialise-and-compile: render a config-specialised simulator.

The :class:`~repro.sim.engine.CompiledEngine` asks this package for a
``dispatch(engine, system, stop_at)`` callable specialised to one
concrete :class:`~repro.sim.config.SimulationConfig`:

1. :func:`spec_for` folds the config down to the :class:`FoldSpec` —
   the exact slice of the configuration the generated code shape
   depends on (channel/core counts, scheduler, design-derived booleans,
   whether profiling hooks are live),
2. :func:`render_module` takes the ASTs of the *shared* simulation
   units — :func:`~repro.sim.engine.event_dispatch`,
   :func:`~repro.sim.engine.serve_window_end`,
   :func:`~repro.controller.memory_controller.channel_serve_batch` and
   the ``repro.sched`` scan/bookkeeping units, i.e. the same source the
   interpreted engines execute — and specialises them with the passes
   in :mod:`.specialize`: constants bound and folded, component loops
   unrolled to literal counts with per-component locals, per-component
   bookkeeping lists scalarised, the scheduler's ``select_index`` /
   ``notify_served`` inlined into the serve loop, dead design branches
   dropped,
3. :func:`specialized_dispatch` compiles and executes the rendered
   source, content-addressed by :func:`spec_digest` (which covers
   :data:`CODEGEN_VERSION`, the unit/template sources and the folded
   spec) through the two cache layers in :mod:`.cache`.

The generated engine is required to be **bit-identical** to both
interpreted engines — enforced by the three-way differential fuzz
harness — so results and checkpoints stay engine-agnostic and the
engine stays excluded from all result-cache keys.
"""

from __future__ import annotations

import ast
import copy
import hashlib
import inspect
import json
from dataclasses import asdict, dataclass
from typing import Callable, Optional, Tuple

from . import cache
from .cache import cache_dir, clear, set_cache_dir, source_path, stats
from .specialize import (
    CallInliner,
    CallRewriter,
    CodegenError,
    ConstBinder,
    HoistedCallRewriter,
    LoopUnroller,
    MethodCallRewriter,
    NONNULL,
    UnrollGroup,
    fold_fixpoint,
    make_prebinds,
    replace_assignment,
    scalarize,
)

__all__ = [
    "CODEGEN_VERSION",
    "CodegenError",
    "FoldSpec",
    "spec_for",
    "spec_digest",
    "render_module",
    "render_source",
    "specialized_dispatch",
    "cache_dir",
    "set_cache_dir",
    "source_path",
    "stats",
    "clear",
]

#: Bump on any change to the generation recipe that is not visible in
#: the unit or pass sources themselves (both are hashed into every
#: digest, so most template edits re-key automatically).
CODEGEN_VERSION = 1


# --------------------------------------------------------------------------
# the folded config slice
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FoldSpec:
    """Everything the generated module's shape depends on — nothing else.

    Derivations mirror the :class:`~repro.sim.system.System` factories
    exactly (``_make_scheduler`` / ``_make_queue_policy`` /
    ``_make_fill_policy`` and the controller's probe resolution); the
    direct-equivalence tests and the fuzz harness keep them honest.
    """

    num_channels: int
    num_cores: int
    scheduler: str  # canonical: "fr-fcfs" | "fr-fcfs+cap" | "bliss"
    scheduler_cap: Optional[int]
    has_buffer: bool
    has_fill: bool
    separate_rng_queue: bool
    fast_policy: bool
    has_scheduler_probe: bool
    profiled: bool
    # Microarchitectural literals folded into the core and channel hot
    # paths (uniform across cores/channels by construction: one
    # CoreConfig per Processor, one DRAMTiming per System).
    slots_per_cycle: int
    window_size: int
    banks_per_channel: int
    trcd: int
    trp: int
    tcl: int
    tcwl: int
    tbl: int
    twr: int


def spec_for(config, num_cores: int, profiled: bool = False) -> FoldSpec:
    """Fold ``config`` down to the :class:`FoldSpec` for ``num_cores``."""
    from ..config import DESIGN_DRSTRANGE, DESIGN_GREEDY_IDLE

    name = config.scheduler.lower()
    if name in ("fr-fcfs", "frfcfs"):
        scheduler, cap = "fr-fcfs", None
    elif name in ("fr-fcfs+cap", "frfcfs+cap", "frfcfs-cap"):
        scheduler, cap = "fr-fcfs+cap", config.scheduler_cap
    elif name == "bliss":
        scheduler, cap = "bliss", None
    else:
        raise ValueError(f"unknown scheduler {config.scheduler!r}")
    has_buffer = config.uses_buffer
    return FoldSpec(
        num_channels=config.organization.channels,
        num_cores=num_cores,
        scheduler=scheduler,
        scheduler_cap=cap,
        has_buffer=has_buffer,
        # Mirrors System._make_fill_policy: a fill policy exists only
        # for the buffered designs (and always exposes its buffer).
        has_fill=has_buffer
        and config.design in (DESIGN_GREEDY_IDLE, DESIGN_DRSTRANGE),
        separate_rng_queue=config.uses_rng_aware_scheduler,
        # Mirrors ChannelController: the fast serve path engages only
        # under the baseline queue policy.
        fast_policy=not config.uses_rng_aware_scheduler,
        # Mirrors the controller's override resolution: only BLISS
        # overrides the scheduler tick/event hooks.
        has_scheduler_probe=scheduler == "bliss",
        profiled=profiled,
        slots_per_cycle=config.core.slots_per_bus_cycle,
        window_size=config.core.window_size,
        banks_per_channel=config.organization.banks_per_channel,
        trcd=config.timing.tRCD,
        trp=config.timing.tRP,
        tcl=config.timing.tCL,
        tcwl=config.timing.tCWL,
        tbl=config.timing.tBL,
        twr=config.timing.tWR,
    )


# --------------------------------------------------------------------------
# template units
# --------------------------------------------------------------------------


def _unit_functions() -> dict:
    from ...controller.memory_controller import (
        channel_schedule_regular,
        channel_serve_batch,
        channel_tick,
        controller_apply_skip,
        controller_catch_up,
        controller_next_event_cycle,
        controller_skip_cycles,
    )
    from ...cpu.core import (
        core_issue,
        core_next_event_cycle,
        core_retire,
        core_skip_cycles,
        core_tick,
    )
    from ...dram.channel import channel_service_access
    from ...sched.bliss import bliss_notify_served, bliss_select_index
    from ...sched.frfcfs import (
        frfcfs_cap_notify_served,
        frfcfs_cap_select_index,
        frfcfs_select_index,
    )
    from ..engine import event_dispatch, serve_window_end

    return {
        "event_dispatch": event_dispatch,
        "serve_window_end": serve_window_end,
        "channel_serve_batch": channel_serve_batch,
        "channel_tick": channel_tick,
        "channel_schedule_regular": channel_schedule_regular,
        "controller_next_event_cycle": controller_next_event_cycle,
        "controller_skip_cycles": controller_skip_cycles,
        "controller_catch_up": controller_catch_up,
        "controller_apply_skip": controller_apply_skip,
        "core_next_event_cycle": core_next_event_cycle,
        "core_skip_cycles": core_skip_cycles,
        "core_tick": core_tick,
        "core_retire": core_retire,
        "core_issue": core_issue,
        "channel_service_access": channel_service_access,
        "frfcfs_select_index": frfcfs_select_index,
        "frfcfs_cap_select_index": frfcfs_cap_select_index,
        "frfcfs_cap_notify_served": frfcfs_cap_notify_served,
        "bliss_select_index": bliss_select_index,
        "bliss_notify_served": bliss_notify_served,
    }


_unit_asts: Optional[dict] = None
_units_digest: Optional[str] = None


def _load_units() -> Tuple[dict, str]:
    """Parsed unit ASTs plus the digest of every template input.

    The digest covers the unit sources *and* the specialisation passes:
    editing either re-keys every generated module, so a stale cached
    source can never be executed after a template change.
    """
    global _unit_asts, _units_digest
    if _unit_asts is None:
        from . import specialize

        units = {}
        hasher = hashlib.sha256()
        for name, fn in sorted(_unit_functions().items()):
            source = inspect.getsource(fn)
            hasher.update(name.encode("utf-8"))
            hasher.update(source.encode("utf-8"))
            tree = ast.parse(source)
            if len(tree.body) != 1 or not isinstance(tree.body[0], ast.FunctionDef):
                raise CodegenError(f"unit {name} is not a single function")
            units[name] = tree.body[0]
        hasher.update(inspect.getsource(specialize).encode("utf-8"))
        _unit_asts, _units_digest = units, hasher.hexdigest()
    return _unit_asts, _units_digest


def spec_digest(spec: FoldSpec) -> str:
    """Content address of the module generated for ``spec``."""
    _, units_digest = _load_units()
    payload = json.dumps(
        {"codegen_version": CODEGEN_VERSION, "units": units_digest, "spec": asdict(spec)},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------
# rendering
# --------------------------------------------------------------------------


def _render_swe(units: dict, spec: FoldSpec, c_names, cb_names) -> ast.FunctionDef:
    fn = copy.deepcopy(units["serve_window_end"])
    fn.name = "_swe"
    # Flat signature: the per-controller locals replace the two lists.
    fn.args = ast.arguments(
        posonlyargs=[],
        args=[ast.arg(arg="cycle"), ast.arg(arg="limit")]
        + [ast.arg(arg=name) for name in c_names]
        + [ast.arg(arg=name) for name in cb_names],
        vararg=None,
        kwonlyargs=[],
        kw_defaults=[],
        kwarg=None,
        defaults=[],
    )
    group = UnrollGroup(
        c_names,
        attrs={
            "rng_queue": NONNULL if spec.separate_rng_queue else None,
            "_scheduler_event_probe": NONNULL if spec.has_scheduler_probe else None,
            "fill_policy": NONNULL if spec.has_fill else None,
        },
    )
    unroller = LoopUnroller({"controller_range": group})
    unroller.visit(fn)
    scalarize(fn, {"controller_bounds": ("_cb", spec.num_channels)})
    fold_fixpoint(fn, nonnull_attrs=unroller.nonnull_attrs)
    return fn


def _inline_scheduler(fn: ast.FunctionDef, units: dict, spec: FoldSpec) -> None:
    """Inline the spec's scheduler scan at the hoisted call sites of ``fn``.

    ``fn`` must hoist ``select_index`` / ``notify_served`` off a local
    named ``scheduler`` (the shape shared by ``channel_serve_batch`` and
    ``channel_schedule_regular``); the hoists are dropped once inlined.
    """
    if spec.scheduler == "fr-fcfs":
        select, notify = units["frfcfs_select_index"], None
    elif spec.scheduler == "fr-fcfs+cap":
        select = units["frfcfs_cap_select_index"]
        notify = (units["frfcfs_cap_notify_served"], "scheduler")
    else:
        select = units["bliss_select_index"]
        notify = (units["bliss_notify_served"], "scheduler")
    CallInliner(
        {"select_index": (select, "scheduler"), "notify_served": notify}
    ).visit(fn)
    # The hoisted bound methods are fully inlined: drop the hoists.
    replace_assignment(fn, "select_index", [])
    replace_assignment(fn, "notify_served", [])
    if spec.scheduler == "fr-fcfs+cap":
        ConstBinder(attrs={("scheduler", "cap"): spec.scheduler_cap}).visit(fn)
    fold_fixpoint(fn)


def _render_svc(units: dict, spec: FoldSpec) -> ast.FunctionDef:
    fn = copy.deepcopy(units["channel_service_access"])
    fn.name = "_svc"
    binder = ConstBinder(
        attrs={
            ("timing", "tRCD"): spec.trcd,
            ("timing", "tRP"): spec.trp,
            ("timing", "tCL"): spec.tcl,
            ("timing", "tCWL"): spec.tcwl,
            ("timing", "tBL"): spec.tbl,
            ("timing", "tWR"): spec.twr,
        },
        lens={"banks": spec.banks_per_channel},
    )
    binder.visit(fn)
    # Every timing read is folded: drop the hoist.
    replace_assignment(fn, "timing", [])
    fold_fixpoint(fn)
    return fn


def _render_ktick(units: dict, spec: FoldSpec) -> ast.FunctionDef:
    fn = copy.deepcopy(units["core_tick"])
    fn.name = "_ktick"
    CallInliner(
        methods={
            ("self", "_retire"): units["core_retire"],
            ("self", "_issue"): units["core_issue"],
        }
    ).visit(fn)
    ConstBinder(
        attrs={
            ("self", "_slots_per_cycle"): spec.slots_per_cycle,
            ("self", "_window_size"): spec.window_size,
        }
    ).visit(fn)
    fold_fixpoint(fn)
    return fn


def _render_serve_batch(units: dict, spec: FoldSpec) -> ast.FunctionDef:
    fn = copy.deepcopy(units["channel_serve_batch"])
    fn.name = "_serve_batch"
    ConstBinder(attrs={("self", "_fast_policy"): spec.fast_policy}).visit(fn)
    fold_fixpoint(fn)
    if spec.fast_policy:
        _inline_scheduler(fn, units, spec)
    # The non-fast fallback (writes queued mid-window, or an RNG-aware
    # policy) schedules through the specialised per-cycle decision, and
    # the deferred-segment close through the specialised catch-up.
    MethodCallRewriter(
        ["self"],
        {"_schedule_regular": "_schedule", "catch_up": "_catch", "_apply_skip": "_capply"},
    ).visit(fn)
    # The window loop's access path goes through the timing-folded
    # channel unit; the hoist of the interpreted bound method is dead.
    HoistedCallRewriter({"service_access": ("_svc", "channel")}).visit(fn)
    replace_assignment(fn, "service_access", [])
    return fn


def _render_schedule(units: dict, spec: FoldSpec) -> ast.FunctionDef:
    fn = copy.deepcopy(units["channel_schedule_regular"])
    fn.name = "_schedule"
    binder = ConstBinder(
        attrs={
            ("self", "_fast_policy"): spec.fast_policy,
            ("self", "rng_queue"): NONNULL if spec.separate_rng_queue else None,
        }
    )
    binder.visit(fn)
    fold_fixpoint(fn, nonnull_attrs=binder.nonnull_attrs)
    if spec.fast_policy:
        _inline_scheduler(fn, units, spec)
    MethodCallRewriter(["channel"], {"service_access": "_svc"}).visit(fn)
    return fn


def _render_capply(units: dict, spec: FoldSpec) -> ast.FunctionDef:
    fn = copy.deepcopy(units["controller_apply_skip"])
    fn.name = "_capply"
    binder = ConstBinder(
        attrs={("self", "fill_policy"): NONNULL if spec.has_fill else None}
    )
    binder.visit(fn)
    fold_fixpoint(fn, nonnull_attrs=binder.nonnull_attrs)
    return fn


def _render_catch(units: dict, spec: FoldSpec) -> ast.FunctionDef:
    fn = copy.deepcopy(units["controller_catch_up"])
    fn.name = "_catch"
    MethodCallRewriter(["self"], {"_apply_skip": "_capply"}).visit(fn)
    return fn


def _render_tick(units: dict, spec: FoldSpec) -> ast.FunctionDef:
    fn = copy.deepcopy(units["channel_tick"])
    fn.name = "_tick"
    binder = ConstBinder(
        attrs={
            ("self", "_scheduler_tick"): NONNULL if spec.has_scheduler_probe else None,
            ("self", "_scheduler_event_probe"): NONNULL
            if spec.has_scheduler_probe
            else None,
            ("self", "fill_policy"): NONNULL if spec.has_fill else None,
            ("self", "_fill_buffer"): NONNULL if spec.has_fill else None,
        }
    )
    binder.visit(fn)
    fold_fixpoint(fn, nonnull_attrs=binder.nonnull_attrs)
    MethodCallRewriter(
        ["self"],
        {"_schedule_regular": "_schedule", "catch_up": "_catch", "_apply_skip": "_capply"},
    ).visit(fn)
    return fn


def _render_dispatch(units: dict, spec: FoldSpec, c_names, k_names, cb_names) -> ast.FunctionDef:
    fn = copy.deepcopy(units["event_dispatch"])
    fn.name = "dispatch"
    binder = ConstBinder(
        names={
            "profile": NONNULL if spec.profiled else None,
            "shared_buffer": NONNULL if spec.has_buffer else None,
        },
        lens={"cores": spec.num_cores, "controllers": spec.num_channels},
    )
    binder.visit(fn)
    fold_fixpoint(fn, nonnull_names=binder.nonnull_names)
    controller_group = UnrollGroup(
        c_names, attrs={"_fill_buffer": NONNULL if spec.has_fill else None}
    )
    core_group = UnrollGroup(k_names)
    unroller = LoopUnroller(
        {
            "controller_range": controller_group,
            "controllers": controller_group,
            "core_range": core_group,
            "cores": core_group,
        }
    )
    unroller.visit(fn)
    replace_assignment(fn, "controller_range", make_prebinds("controllers", c_names))
    replace_assignment(fn, "core_range", make_prebinds("cores", k_names))
    # Splice the per-component cycle-skipping units into the unrolled
    # bound-scan and skip sites: 20k+ method calls per dense run become
    # straight-line code, and the controller units' fill branches fold
    # against the per-controller bindings below.
    methods = {}
    for name in k_names:
        methods[(name, "next_event_cycle")] = units["core_next_event_cycle"]
        methods[(name, "skip_cycles")] = units["core_skip_cycles"]
    for name in c_names:
        methods[(name, "next_event_cycle")] = units["controller_next_event_cycle"]
        methods[(name, "skip_cycles")] = units["controller_skip_cycles"]
    CallInliner(methods=methods).visit(fn)
    inline_attrs = {
        (name, attr): NONNULL if spec.has_fill else None
        for name in c_names
        for attr in ("fill_policy", "_fill_buffer")
    }
    for name in k_names:
        inline_attrs[(name, "_slots_per_cycle")] = spec.slots_per_cycle
        inline_attrs[(name, "_window_size")] = spec.window_size
    inline_binder = ConstBinder(attrs=inline_attrs)
    inline_binder.visit(fn)
    CallRewriter(
        "_swe",
        {
            "serve_batch": "_serve_batch",
            "tick": "_tick",
            "catch_up": "_catch",
            "_apply_skip": "_capply",
        },
        c_names,
        cb_names,
    ).visit(fn)
    # Core ticks go through the slots/window-folded rendering (the
    # controller ticks were already rewritten above — the receivers are
    # disjoint name sets, so the two maps cannot collide).
    MethodCallRewriter(k_names, {"tick": "_ktick"}).visit(fn)
    scalarize(
        fn,
        {
            "controller_bounds": ("_cb", spec.num_channels),
            "stalled_since": ("_ss", spec.num_cores),
            "quiet_since": ("_qs", spec.num_cores),
            "core_bound_cache": ("_kb", spec.num_cores),
        },
    )
    fold_fixpoint(
        fn,
        nonnull_names=binder.nonnull_names,
        nonnull_attrs=unroller.nonnull_attrs | inline_binder.nonnull_attrs,
    )
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and node.id in ("controller_range", "core_range"):
            raise CodegenError(f"{node.id} survived specialisation")
    return fn


def render_module(spec: FoldSpec) -> str:
    """The specialised module source for ``spec`` (deterministic)."""
    units, _ = _load_units()
    c_names = [f"_c{i}" for i in range(spec.num_channels)]
    k_names = [f"_k{i}" for i in range(spec.num_cores)]
    cb_names = [f"_cb{i}" for i in range(spec.num_channels)]

    doc = (
        "Generated by repro.sim.codegen — DO NOT EDIT.\n\n"
        f"codegen_version: {CODEGEN_VERSION}\n"
        + "\n".join(f"{name}: {value!r}" for name, value in sorted(asdict(spec).items()))
    )
    module = ast.Module(
        body=[
            ast.Expr(value=ast.Constant(doc)),
            ast.Import(names=[ast.alias(name="heapq", asname=None)]),
            ast.ImportFrom(
                module="repro.controller.memory_controller",
                names=[ast.alias(name="ExecutionMode", asname=None)],
                level=0,
            ),
            ast.ImportFrom(
                module="repro.controller.request",
                names=[ast.alias(name="RequestType", asname=None)],
                level=0,
            ),
            ast.ImportFrom(
                module="repro.cpu.core",
                names=[
                    ast.alias(name="_RNGCompletion", asname=None),
                    ast.alias(name="_WindowSlot", asname=None),
                ],
                level=0,
            ),
            ast.ImportFrom(
                module="repro.dram.bank",
                names=[ast.alias(name="AccessCategory", asname=None)],
                level=0,
            ),
            _render_swe(units, spec, c_names, cb_names),
            _render_svc(units, spec),
            _render_capply(units, spec),
            _render_catch(units, spec),
            _render_schedule(units, spec),
            _render_tick(units, spec),
            _render_serve_batch(units, spec),
            _render_ktick(units, spec),
            _render_dispatch(units, spec, c_names, k_names, cb_names),
        ],
        type_ignores=[],
    )
    ast.fix_missing_locations(module)
    return ast.unparse(module) + "\n"


def render_source(config, num_cores: int, profiled: bool = False) -> Tuple[str, str]:
    """``(digest, source)`` for a config — the ``repro codegen dump`` path."""
    spec = spec_for(config, num_cores, profiled)
    return spec_digest(spec), render_module(spec)


# --------------------------------------------------------------------------
# compile + cache
# --------------------------------------------------------------------------


def _compile(source: str, digest: str) -> Callable:
    path = cache.source_path(digest)
    filename = str(path) if path is not None else f"<repro-codegen {digest[:12]}>"
    code = compile(source, filename, "exec")
    namespace = {"__name__": f"repro.sim.codegen._gen_{digest[:12]}"}
    exec(code, namespace)
    return namespace["dispatch"]


def specialized_dispatch(config, num_cores: int, profiled: bool = False) -> Callable:
    """The compiled ``dispatch(engine, system, stop_at)`` for a config.

    Resolution order: in-process module cache, on-disk generated
    source (content-hash verified; corrupt entries deleted), fresh
    render.  The digest covers the full folded spec, so concurrent
    callers with different configs — e.g. sweep-service tenants with
    different engines or designs — can never share a module.
    """
    spec = spec_for(config, num_cores, profiled)
    digest = spec_digest(spec)
    dispatch = cache.get_module(digest)
    if dispatch is not None:
        return dispatch
    source = cache.load_source(digest)
    if source is not None:
        cache.note_disk_hit()
        try:
            dispatch = _compile(source, digest)
        except SyntaxError:
            # The content hash matched but the source no longer
            # compiles (a truncated-but-rehashed hand edit): treat as
            # corruption, exactly like ResultCache.get.
            cache.note_corrupt()
            path = cache.source_path(digest)
            if path is not None:
                try:
                    path.unlink()
                except OSError:
                    pass
            source = None
    if source is None:
        source = render_module(spec)
        cache.note_emit()
        cache.store_source(digest, source)
        dispatch = _compile(source, digest)
    return cache.put_module(digest, dispatch)
