"""AST specialisation passes for the compiled engine.

The code generator does not invent simulator code: it takes the exact
module-level unit functions the interpreted engines execute
(:func:`repro.sim.engine.event_dispatch`,
:func:`repro.sim.engine.serve_window_end`,
:func:`repro.controller.memory_controller.channel_serve_batch`, the
``repro.sched`` scan/bookkeeping units) and mechanically specialises
their ASTs to one concrete ``SimulationConfig``:

* :class:`ConstBinder` — pin names, attribute reads and ``len(...)``
  calls to the config's constants (``profile``/``shared_buffer`` to
  ``None`` when inactive, channel/core counts to literals, …),
* :class:`StaticFolder` — evaluate the now-constant tests and drop the
  dead branches (fill-policy hazards for designs without a fill policy,
  scheduler probes for probe-less schedulers, profile hooks, …),
* :class:`LoopUnroller` — replace ``for index, controller in
  controller_range`` with the loop body repeated per component, the
  loop variables bound to prebound locals (``_c0`` …) and literal
  indices; sole-statement ``continue`` guards are rewritten into
  ``if not guard`` nesting so the unrolled body is straight-line,
* :func:`scalarize` — turn the per-component bookkeeping lists
  (``controller_bounds[2]`` …) into flat locals (``_cb2``),
* :func:`inline_function` — splice a callee's body into the caller
  (the scheduler's ``select_index``/``notify_served`` into the serve
  loop), with renamed locals and ``return`` rewritten to
  assign-and-break.

Every transform either provably preserves semantics or raises
:class:`CodegenError`: the generator refuses to emit code for shapes it
cannot reason about, falling back is never silent.  Bit-identity of the
output against both interpreted engines is enforced by the three-way
differential fuzz harness (``tests/test_engine_fuzz.py``).

Truthiness note: boolean folding may replace ``a and b`` with ``b``
(when ``a`` is statically true) or a truthiness-equivalent prefix.  The
folded expressions all sit in test positions (``if``/``while``) or feed
tests, where truthiness equivalence is full equivalence.
"""

from __future__ import annotations

import ast
import copy
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class CodegenError(RuntimeError):
    """A unit's shape defeated a transform; refuse to emit code."""


class _NonNull:
    """Marker: the binding is known non-``None`` but otherwise unknown."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<non-null>"


#: Bind a name/attribute to this to fold only its ``is None`` tests.
NONNULL = _NonNull()


# --------------------------------------------------------------------------
# constant binding
# --------------------------------------------------------------------------


class ConstBinder(ast.NodeTransformer):
    """Replace loads of pinned names/attributes/lens with constants.

    ``names`` maps local names to constants (or :data:`NONNULL`);
    ``attrs`` maps ``(base_name, attr)`` pairs; ``lens`` maps names to
    the literal value of ``len(name)``.  Store contexts are never
    touched — a dead assignment to a pinned name is harmless, a wrong
    read is not.
    """

    def __init__(
        self,
        names: Optional[Dict[str, object]] = None,
        attrs: Optional[Dict[Tuple[str, str], object]] = None,
        lens: Optional[Dict[str, int]] = None,
    ) -> None:
        self.names = names or {}
        self.attrs = attrs or {}
        self.lens = lens or {}
        #: (name,) and (name, attr) keys bound to NONNULL, for the folder.
        self.nonnull_names = {k for k, v in self.names.items() if v is NONNULL}
        self.nonnull_attrs = {k for k, v in self.attrs.items() if v is NONNULL}

    def visit_Attribute(self, node: ast.Attribute):
        self.generic_visit(node)
        if isinstance(node.ctx, ast.Load) and isinstance(node.value, ast.Name):
            key = (node.value.id, node.attr)
            if key in self.attrs:
                value = self.attrs[key]
                if value is not NONNULL:
                    return ast.copy_location(ast.Constant(value), node)
        return node

    def visit_Name(self, node: ast.Name):
        if isinstance(node.ctx, ast.Load) and node.id in self.names:
            value = self.names[node.id]
            if value is not NONNULL:
                return ast.copy_location(ast.Constant(value), node)
        return node

    def visit_Call(self, node: ast.Call):
        self.generic_visit(node)
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "len"
            and len(node.args) == 1
            and not node.keywords
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id in self.lens
        ):
            return ast.copy_location(ast.Constant(self.lens[node.args[0].id]), node)
        return node


# --------------------------------------------------------------------------
# static truth + folding
# --------------------------------------------------------------------------


def _is_pure(expr: ast.expr) -> bool:
    """Whether dropping ``expr`` unevaluated cannot change behaviour.

    Conservative over the expression grammar the units use: attribute
    and subscript loads on simulator objects are plain state reads, so
    they count as pure; calls never do.
    """
    if isinstance(expr, (ast.Constant, ast.Name)):
        return True
    if isinstance(expr, ast.Attribute):
        return _is_pure(expr.value)
    if isinstance(expr, ast.Subscript):
        return _is_pure(expr.value) and _is_pure(expr.slice)
    if isinstance(expr, ast.UnaryOp):
        return _is_pure(expr.operand)
    if isinstance(expr, ast.BinOp):
        return _is_pure(expr.left) and _is_pure(expr.right)
    if isinstance(expr, ast.Compare):
        return _is_pure(expr.left) and all(_is_pure(c) for c in expr.comparators)
    if isinstance(expr, ast.BoolOp):
        return all(_is_pure(v) for v in expr.values)
    if isinstance(expr, ast.IfExp):
        return _is_pure(expr.test) and _is_pure(expr.body) and _is_pure(expr.orelse)
    if isinstance(expr, (ast.Tuple, ast.List)):
        return all(_is_pure(e) for e in expr.elts)
    return False


def _static_truth(
    node: ast.expr,
    nonnull_names: Iterable[str] = (),
    nonnull_attrs: Iterable[Tuple[str, str]] = (),
) -> Optional[bool]:
    """Statically decide a test's truthiness, or ``None`` if unknown."""
    nonnull_names = set(nonnull_names)
    nonnull_attrs = set(nonnull_attrs)

    def known_nonnull(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name) and expr.id in nonnull_names:
            return True
        return (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and (expr.value.id, expr.attr) in nonnull_attrs
        )

    def truth(expr: ast.expr) -> Optional[bool]:
        if isinstance(expr, ast.Constant):
            return bool(expr.value)
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
            inner = truth(expr.operand)
            return None if inner is None else not inner
        if (
            isinstance(expr, ast.Compare)
            and len(expr.ops) == 1
            and isinstance(expr.ops[0], (ast.Is, ast.IsNot))
            and isinstance(expr.comparators[0], ast.Constant)
            and expr.comparators[0].value is None
        ):
            left = expr.left
            if isinstance(left, ast.Constant):
                is_none = left.value is None
            elif known_nonnull(left):
                is_none = False
            else:
                return None
            return is_none if isinstance(expr.ops[0], ast.Is) else not is_none
        if isinstance(expr, ast.BoolOp):
            is_and = isinstance(expr.op, ast.And)
            result: Optional[bool] = is_and
            unknown = False
            for value in expr.values:
                t = truth(value)
                if t is None:
                    # An unknown-but-pure operand can be skipped over:
                    # whatever it evaluates to, a later decisive operand
                    # still fixes the whole expression's truthiness.
                    if not _is_pure(value):
                        return None
                    unknown = True
                    continue
                if is_and and not t:
                    return False
                if not is_and and t:
                    return True
                result = t
            return None if unknown else result
        return None

    return truth(node)


class StaticFolder(ast.NodeTransformer):
    """Fold statically-decidable tests and prune the dead branches."""

    def __init__(
        self,
        nonnull_names: Iterable[str] = (),
        nonnull_attrs: Iterable[Tuple[str, str]] = (),
    ) -> None:
        self.nonnull_names = set(nonnull_names)
        self.nonnull_attrs = set(nonnull_attrs)
        self.changed = False

    def _truth(self, node: ast.expr) -> Optional[bool]:
        return _static_truth(node, self.nonnull_names, self.nonnull_attrs)

    def visit_If(self, node: ast.If):
        self.generic_visit(node)
        t = self._truth(node.test)
        if t is True:
            self.changed = True
            return node.body
        if t is False:
            self.changed = True
            return node.orelse
        return node

    def visit_IfExp(self, node: ast.IfExp):
        self.generic_visit(node)
        t = self._truth(node.test)
        if t is None:
            return node
        self.changed = True
        return node.body if t else node.orelse

    def visit_BoolOp(self, node: ast.BoolOp):
        self.generic_visit(node)
        is_and = isinstance(node.op, ast.And)
        kept: List[ast.expr] = []
        decided = False
        for value in node.values:
            t = self._truth(value)
            if t is None:
                kept.append(value)
                continue
            if t is (not is_and):
                # Decisive operand (False in `and`, True in `or`): a
                # pure unknown prefix is dropped outright; an impure
                # one still evaluates, then the constant decides.
                # Truthiness is preserved either way.
                self.changed = True
                if not kept or all(_is_pure(v) for v in kept):
                    return ast.copy_location(ast.Constant(not is_and), node)
                kept.append(ast.Constant(not is_and))
                decided = True
                break
            # Neutral operand (True in `and`, False in `or`): drop it.
            self.changed = True
        if not kept:
            return ast.copy_location(ast.Constant(is_and), node)
        if len(kept) == 1:
            return kept[0]
        if decided or len(kept) != len(node.values):
            return ast.copy_location(ast.BoolOp(op=node.op, values=kept), node)
        return node

    def visit_UnaryOp(self, node: ast.UnaryOp):
        self.generic_visit(node)
        if isinstance(node.op, ast.Not):
            t = self._truth(node.operand)
            if t is not None:
                self.changed = True
                return ast.copy_location(ast.Constant(not t), node)
            # Cosmetic: `not (x is not None)` -> `x is None` (and dual).
            operand = node.operand
            if (
                isinstance(operand, ast.Compare)
                and len(operand.ops) == 1
                and isinstance(operand.ops[0], (ast.Is, ast.IsNot))
            ):
                flipped = ast.IsNot() if isinstance(operand.ops[0], ast.Is) else ast.Is()
                self.changed = True
                return ast.copy_location(
                    ast.Compare(
                        left=operand.left, ops=[flipped], comparators=operand.comparators
                    ),
                    node,
                )
        return node


# --------------------------------------------------------------------------
# single-constant local propagation
# --------------------------------------------------------------------------


def propagate_single_constants(fn: ast.FunctionDef) -> bool:
    """Propagate locals whose every assignment is one same constant.

    Sound because a read that could precede the (conditional) constant
    assignment would raise ``UnboundLocalError`` in the original code;
    every completing execution observes the constant.  The (now dead)
    assignments are dropped.  Returns whether anything changed.
    """
    banned = {arg.arg for arg in fn.args.args}
    banned.update(arg.arg for arg in fn.args.posonlyargs)
    banned.update(arg.arg for arg in fn.args.kwonlyargs)
    assigns: Dict[str, List[ast.Constant]] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                if isinstance(node.value, ast.Constant):
                    assigns.setdefault(name, []).append(node.value)
                else:
                    banned.add(name)
            else:
                for target in node.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            banned.add(sub.id)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign, ast.NamedExpr)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    banned.add(sub.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    banned.add(sub.id)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            for sub in ast.walk(node.optional_vars):
                if isinstance(sub, ast.Name):
                    banned.add(sub.id)
        elif isinstance(node, ast.comprehension):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    banned.add(sub.id)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            banned.update(node.names)

    def key(value: ast.Constant) -> Tuple[str, str]:
        return (type(value.value).__name__, repr(value.value))

    constants = {
        name: values[0].value
        for name, values in assigns.items()
        if name not in banned and len({key(v) for v in values}) == 1
    }
    if not constants:
        return False

    class _Propagate(ast.NodeTransformer):
        def visit_Name(self, node: ast.Name):
            if isinstance(node.ctx, ast.Load) and node.id in constants:
                return ast.copy_location(ast.Constant(constants[node.id]), node)
            return node

        def visit_Assign(self, node: ast.Assign):
            self.generic_visit(node)
            if (
                len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id in constants
            ):
                return None  # drop: value is a constant, store is dead
            return node

    _Propagate().visit(fn)
    return True


# --------------------------------------------------------------------------
# continue-guard elimination + loop unrolling
# --------------------------------------------------------------------------


def _contains_loop_escape(stmts: Sequence[ast.stmt]) -> bool:
    """``continue``/``break`` bound to the *enclosing* loop in ``stmts``?"""

    def scan(body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Continue, ast.Break)):
                return True
            if isinstance(stmt, (ast.For, ast.While, ast.AsyncFor)):
                continue  # escapes inside bind to the inner loop
            for field in ("body", "orelse", "finalbody"):
                if scan(getattr(stmt, field, [])):
                    return True
        return False

    return scan(stmts)


def _is_guard(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.If)
        and len(stmt.body) == 1
        and isinstance(stmt.body[0], ast.Continue)
        and not stmt.orelse
    )


def eliminate_continue_guards(stmts: List[ast.stmt], tail: bool = True) -> List[ast.stmt]:
    """Rewrite sole-statement ``if guard: continue`` into ``if not guard``.

    Only sound where the guard's enclosing statements (up to the loop
    body) are all in tail position — exactly the discipline the engine
    units follow.  Raises :class:`CodegenError` on any other
    ``continue`` shape; ``break`` is rejected outright by the caller.
    """
    out: List[ast.stmt] = []
    for position, stmt in enumerate(stmts):
        last = position == len(stmts) - 1
        if _is_guard(stmt):
            if not tail:
                raise CodegenError(
                    "continue guard outside tail position cannot be unrolled"
                )
            rest = eliminate_continue_guards(list(stmts[position + 1 :]), tail)
            if rest:
                guarded = ast.If(
                    test=ast.UnaryOp(op=ast.Not(), operand=stmt.test),
                    body=rest,
                    orelse=[],
                )
                out.append(ast.copy_location(guarded, stmt))
            return out
        if isinstance(stmt, ast.If):
            stmt.body = eliminate_continue_guards(stmt.body, tail and last)
            stmt.orelse = eliminate_continue_guards(stmt.orelse, tail and last)
        out.append(stmt)
    return out


class UnrollGroup:
    """One unrollable component list: its element names and attr folds."""

    def __init__(
        self,
        element_names: Sequence[str],
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        self.element_names = list(element_names)
        self.count = len(self.element_names)
        #: attr name -> constant (or NONNULL) folded on the loop variable.
        self.attrs = attrs or {}


class _IterationSubst(ast.NodeTransformer):
    """Per-iteration rewrite: loop vars to literals/locals, attrs folded."""

    def __init__(
        self,
        index_var: Optional[str],
        index: int,
        item_var: str,
        element: str,
        attrs: Dict[str, object],
    ) -> None:
        self.index_var = index_var
        self.index = index
        self.item_var = item_var
        self.element = element
        self.attrs = attrs

    def visit_Attribute(self, node: ast.Attribute):
        if (
            isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id == self.item_var
            and node.attr in self.attrs
        ):
            value = self.attrs[node.attr]
            if value is not NONNULL:
                return ast.copy_location(ast.Constant(value), node)
            node.value = ast.copy_location(ast.Name(id=self.element, ctx=ast.Load()), node.value)
            return node
        self.generic_visit(node)
        return node

    def visit_Name(self, node: ast.Name):
        if node.id == self.item_var:
            return ast.copy_location(ast.Name(id=self.element, ctx=node.ctx), node)
        if self.index_var is not None and node.id == self.index_var:
            if not isinstance(node.ctx, ast.Load):
                raise CodegenError("unroll index variable must be read-only")
            return ast.copy_location(ast.Constant(self.index), node)
        return node


class LoopUnroller(ast.NodeTransformer):
    """Unroll ``for`` loops over registered component iterables."""

    def __init__(self, groups: Dict[str, UnrollGroup]) -> None:
        #: iterable name -> group; ``enumerate(name)`` matches too.
        self.groups = groups
        self.nonnull_attrs: set = set()

    def _match(self, iter_node: ast.expr) -> Optional[Tuple[UnrollGroup, bool]]:
        if isinstance(iter_node, ast.Name) and iter_node.id in self.groups:
            return self.groups[iter_node.id], False
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id == "enumerate"
            and len(iter_node.args) == 1
            and not iter_node.keywords
            and isinstance(iter_node.args[0], ast.Name)
            and iter_node.args[0].id in self.groups
        ):
            return self.groups[iter_node.args[0].id], True
        return None

    def visit_For(self, node: ast.For):
        self.generic_visit(node)
        match = self._match(node.iter)
        if match is None:
            return node
        group, enumerated = match
        if node.orelse:
            raise CodegenError("cannot unroll a for loop with an else clause")
        target = node.target
        if isinstance(target, ast.Tuple):
            if len(target.elts) != 2 or not all(
                isinstance(e, ast.Name) for e in target.elts
            ):
                raise CodegenError("unroll target must be `item` or `index, item`")
            index_var, item_var = target.elts[0].id, target.elts[1].id
        elif isinstance(target, ast.Name):
            if enumerated:
                raise CodegenError("enumerate target must unpack `index, item`")
            index_var, item_var = None, target.id
        else:
            raise CodegenError("unsupported unroll target shape")
        unrolled: List[ast.stmt] = []
        for i, element in enumerate(group.element_names):
            body = copy.deepcopy(node.body)
            subst = _IterationSubst(index_var, i, item_var, element, group.attrs)
            body = [subst.visit(stmt) for stmt in body]
            body = eliminate_continue_guards(body)
            if _contains_loop_escape(body):
                raise CodegenError(
                    "unrolled loop body still contains continue/break"
                )
            unrolled.extend(body)
            for attr, value in group.attrs.items():
                if value is NONNULL:
                    self.nonnull_attrs.add((element, attr))
        return unrolled or ast.Pass()


# --------------------------------------------------------------------------
# scalarisation
# --------------------------------------------------------------------------

_NO_LITERAL = object()


def _literal_value(node: ast.expr):
    """The value of a literal constant, handling ``-1`` (a UnaryOp)."""
    if isinstance(node, ast.Constant):
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, (int, float))
    ):
        return -node.operand.value
    return _NO_LITERAL


def scalarize(fn: ast.FunctionDef, arrays: Dict[str, Tuple[str, int]]) -> None:
    """Replace per-component list accesses with flat scalar locals.

    ``arrays`` maps list name -> (scalar prefix, element count).  The
    initialiser ``name = [K] * n`` becomes ``n`` scalar assignments;
    every ``name[i]`` (constant ``i`` after unrolling) becomes
    ``<prefix><i>``.  Any surviving reference to the list name is a
    :class:`CodegenError` — a partial scalarisation would desynchronise
    the two representations.
    """

    class _Scalarize(ast.NodeTransformer):
        def visit_Subscript(self, node: ast.Subscript):
            self.generic_visit(node)
            if (
                isinstance(node.value, ast.Name)
                and node.value.id in arrays
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, int)
            ):
                prefix, count = arrays[node.value.id]
                index = node.slice.value
                if not 0 <= index < count:
                    raise CodegenError(
                        f"{node.value.id}[{index}] out of range for scalarisation"
                    )
                return ast.copy_location(
                    ast.Name(id=f"{prefix}{index}", ctx=node.ctx), node
                )
            return node

        def visit_Assign(self, node: ast.Assign):
            self.generic_visit(node)
            if (
                len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id in arrays
                and isinstance(node.value, ast.BinOp)
                and isinstance(node.value.op, ast.Mult)
                and isinstance(node.value.left, ast.List)
                and len(node.value.left.elts) == 1
                and _literal_value(node.value.left.elts[0]) is not _NO_LITERAL
                and isinstance(node.value.right, ast.Constant)
            ):
                prefix, count = arrays[node.targets[0].id]
                if node.value.right.value != count:
                    raise CodegenError(
                        f"initialiser length mismatch for {node.targets[0].id}"
                    )
                fill = _literal_value(node.value.left.elts[0])
                return [
                    ast.copy_location(
                        ast.Assign(
                            targets=[ast.Name(id=f"{prefix}{i}", ctx=ast.Store())],
                            value=ast.Constant(fill),
                        ),
                        node,
                    )
                    for i in range(count)
                ]
            return node

    _Scalarize().visit(fn)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and node.id in arrays:
            raise CodegenError(
                f"list {node.id!r} survived scalarisation (non-constant access?)"
            )


# --------------------------------------------------------------------------
# call inlining
# --------------------------------------------------------------------------


def _collect_locals(fn: ast.FunctionDef) -> set:
    names = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names


class _InlineSubst(ast.NodeTransformer):
    """Parameter -> argument expression, local -> prefixed local."""

    def __init__(self, params: Dict[str, ast.expr], renames: Dict[str, str]) -> None:
        self.params = params
        self.renames = renames

    def visit_Name(self, node: ast.Name):
        if node.id in self.renames:
            return ast.copy_location(ast.Name(id=self.renames[node.id], ctx=node.ctx), node)
        if node.id in self.params:
            if not isinstance(node.ctx, ast.Load):
                raise CodegenError("inlined unit assigns to a parameter")
            return copy.deepcopy(self.params[node.id])
        return node


def _rewrite_returns(
    stmts: List[ast.stmt], target: Optional[str], done_flag: str
) -> Tuple[List[ast.stmt], bool, bool]:
    """Rewrite ``return`` to assign-and-break; returns (stmts, any, nested)."""
    any_return = False
    nested_return = False

    def rewrite(body: List[ast.stmt], depth: int) -> Tuple[List[ast.stmt], bool]:
        nonlocal any_return, nested_return
        out: List[ast.stmt] = []
        returned_here = False
        for stmt in body:
            if isinstance(stmt, ast.Return):
                any_return = True
                returned_here = True
                if target is not None:
                    value = stmt.value if stmt.value is not None else ast.Constant(None)
                    out.append(
                        ast.copy_location(
                            ast.Assign(
                                targets=[ast.Name(id=target, ctx=ast.Store())],
                                value=value,
                            ),
                            stmt,
                        )
                    )
                elif stmt.value is not None and not isinstance(
                    stmt.value, (ast.Constant, ast.Name)
                ):
                    raise CodegenError(
                        "discarded return value must be side-effect-free"
                    )
                if depth > 0:
                    nested_return = True
                    out.append(
                        ast.Assign(
                            targets=[ast.Name(id=done_flag, ctx=ast.Store())],
                            value=ast.Constant(True),
                        )
                    )
                out.append(ast.copy_location(ast.Break(), stmt))
                continue
            if isinstance(stmt, (ast.For, ast.While)):
                stmt.body, inner = rewrite(stmt.body, depth + 1)
                if stmt.orelse:
                    raise CodegenError("cannot inline loop-else in a unit")
                out.append(stmt)
                if inner:
                    returned_here = True
                    out.append(
                        ast.If(
                            test=ast.Name(id=done_flag, ctx=ast.Load()),
                            body=[ast.Break()],
                            orelse=[],
                        )
                    )
                continue
            if isinstance(stmt, ast.If):
                stmt.body, a = rewrite(stmt.body, depth)
                stmt.orelse, b = rewrite(stmt.orelse, depth)
                returned_here = returned_here or a or b
                out.append(stmt)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                raise CodegenError("cannot inline nested definitions")
            out.append(stmt)
        return out, returned_here

    new_body, _ = rewrite(stmts, 0)
    return new_body, any_return, nested_return


def inline_function(
    call: ast.Call,
    target: Optional[str],
    unit: ast.FunctionDef,
    receiver: Optional[str],
    prefix: str,
) -> List[ast.stmt]:
    """Expand ``target = f(args...)`` (or bare ``f(args...)``) in place.

    ``unit`` is the callee's FunctionDef; ``receiver`` names the local
    the bound method's ``self`` parameter maps to (the call site calls
    a hoisted bound method, so ``self`` is not among the call args).
    The callee body is spliced inside a single-iteration ``while``
    frame, locals renamed with ``prefix``, each ``return`` rewritten to
    an assignment plus ``break`` (returns inside the unit's own loops
    propagate through a ``<prefix>done`` flag).
    """
    params = [arg.arg for arg in unit.args.args]
    if call.keywords:
        raise CodegenError("cannot inline a call with keyword arguments")
    args = list(call.args)
    param_map: Dict[str, ast.expr] = {}
    if receiver is not None:
        param_map[params[0]] = ast.Name(id=receiver, ctx=ast.Load())
        params = params[1:]
    if len(args) != len(params):
        raise CodegenError(
            f"cannot inline {unit.name}: expected {len(params)} args, got {len(args)}"
        )
    for name, arg in zip(params, args):
        # A pure argument expression may be duplicated per parameter use
        # without changing behaviour (no calls, no side effects).
        if not _is_pure(arg):
            raise CodegenError("inline call arguments must be pure expressions")
        param_map[name] = arg

    renames = {
        name: f"{prefix}{name}"
        for name in _collect_locals(unit)
        if name not in param_map
    }
    body = copy.deepcopy(unit.body)
    if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant):
        body = body[1:]  # docstring
    subst = _InlineSubst(param_map, renames)
    body = [subst.visit(stmt) for stmt in body]
    done_flag = f"{prefix}done"
    body, _, nested = _rewrite_returns(body, target, done_flag)
    frame: List[ast.stmt] = []
    if nested:
        frame.append(
            ast.Assign(
                targets=[ast.Name(id=done_flag, ctx=ast.Store())],
                value=ast.Constant(False),
            )
        )
    frame.append(
        ast.While(test=ast.Constant(True), body=body + [ast.Break()], orelse=[])
    )
    return frame


class CallInliner(ast.NodeTransformer):
    """Statement-level inliner for hoisted-call and method-call sites.

    ``units`` maps a local callee name to ``(FunctionDef, receiver)`` —
    or ``None`` to drop the call outright (a statically-known no-op like
    the base scheduler's ``notify_served``).  ``methods`` maps concrete
    ``(receiver_name, attr)`` pairs to the method's unit FunctionDef, so
    ``_k3.next_event_cycle(cycle)`` can be expanded with ``self`` bound
    to ``_k3``.
    """

    def __init__(
        self,
        units: Optional[Dict[str, Optional[Tuple[ast.FunctionDef, str]]]] = None,
        methods: Optional[Dict[Tuple[str, str], ast.FunctionDef]] = None,
    ) -> None:
        self.units = units or {}
        self.methods = methods or {}
        self._counter = 0

    def _match(self, value: ast.expr) -> Optional[Tuple[ast.FunctionDef, Optional[str]]]:
        """``(unit, receiver)`` for an inlinable call, else ``None``.

        A ``(None, None)`` return marks a droppable no-op call.
        """
        if not isinstance(value, ast.Call):
            return None
        if isinstance(value.func, ast.Name) and value.func.id in self.units:
            entry = self.units[value.func.id]
            return (None, None) if entry is None else entry
        if (
            isinstance(value.func, ast.Attribute)
            and isinstance(value.func.value, ast.Name)
            and (value.func.value.id, value.func.attr) in self.methods
        ):
            key = (value.func.value.id, value.func.attr)
            return self.methods[key], value.func.value.id
        return None

    def visit_Assign(self, node: ast.Assign):
        self.generic_visit(node)
        entry = self._match(node.value)
        if entry is None:
            return node
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            raise CodegenError("inline call must assign to a single name")
        unit, receiver = entry
        if unit is None:
            raise CodegenError("no-op unit cannot produce a value")
        self._counter += 1
        return inline_function(
            node.value, node.targets[0].id, unit, receiver, f"_i{self._counter}_"
        )

    def visit_Expr(self, node: ast.Expr):
        self.generic_visit(node)
        entry = self._match(node.value)
        if entry is None:
            return node
        unit, receiver = entry
        if unit is None:
            return None  # statically-known no-op: drop the call
        self._counter += 1
        return inline_function(node.value, None, unit, receiver, f"_i{self._counter}_")


# --------------------------------------------------------------------------
# call rewriting (signature specialisation across generated functions)
# --------------------------------------------------------------------------


class MethodCallRewriter(ast.NodeTransformer):
    """Rewrite ``<recv>.<method>(args...)`` to ``<fn>(<recv>, args...)``.

    Points method calls on known receivers (the unrolled ``_cI``
    controller locals, or a specialised unit's own ``self``) at the
    module-level renderings of the same units, so generated functions
    call each other instead of falling back to the interpreted methods.
    """

    def __init__(self, receivers: Sequence[str], methods: Dict[str, str]) -> None:
        self.receivers = set(receivers)
        self.methods = methods

    def visit_Call(self, node: ast.Call):
        self.generic_visit(node)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in self.methods
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in self.receivers
        ):
            return ast.copy_location(
                ast.Call(
                    func=ast.Name(id=self.methods[node.func.attr], ctx=ast.Load()),
                    args=[ast.Name(id=node.func.value.id, ctx=ast.Load()), *node.args],
                    keywords=node.keywords,
                ),
                node,
            )
        return node


class HoistedCallRewriter(ast.NodeTransformer):
    """Rewrite calls through a hoisted bound method to a flat function.

    ``names`` maps a hoisted local (``service_access = channel.
    service_access``) to ``(fn, receiver)``: every ``<name>(args...)``
    call becomes ``<fn>(<receiver>, args...)``.  The hoist assignment
    itself is left for :func:`replace_assignment` to drop.
    """

    def __init__(self, names: Dict[str, Tuple[str, str]]) -> None:
        self.names = names

    def visit_Call(self, node: ast.Call):
        self.generic_visit(node)
        if isinstance(node.func, ast.Name) and node.func.id in self.names:
            fn, receiver = self.names[node.func.id]
            return ast.copy_location(
                ast.Call(
                    func=ast.Name(id=fn, ctx=ast.Load()),
                    args=[ast.Name(id=receiver, ctx=ast.Load()), *node.args],
                    keywords=node.keywords,
                ),
                node,
            )
        return node


class CallRewriter(ast.NodeTransformer):
    """Rewrite cross-unit call sites to the generated flat signatures.

    * ``serve_window_end(a, b, controller_range, controller_bounds)``
      becomes ``_swe(a, b, _c0, ..., _cb0, ...)``;
    * ``_cI.<method>(args...)`` becomes ``<fn>(_cI, args...)`` for every
      entry of ``methods`` (e.g. ``serve_batch`` -> ``_serve_batch``,
      ``tick`` -> ``_tick``).
    """

    def __init__(
        self,
        window_fn: str,
        methods: Dict[str, str],
        controller_names: Sequence[str],
        bound_names: Sequence[str],
    ) -> None:
        self.window_fn = window_fn
        self.controller_names = list(controller_names)
        self.bound_names = list(bound_names)
        self._methods = MethodCallRewriter(controller_names, methods)

    def visit_Call(self, node: ast.Call):
        self.generic_visit(node)
        if isinstance(node.func, ast.Name) and node.func.id == "serve_window_end":
            if len(node.args) != 4 or node.keywords:
                raise CodegenError("unexpected serve_window_end call shape")
            flat = [node.args[0], node.args[1]]
            flat.extend(ast.Name(id=n, ctx=ast.Load()) for n in self.controller_names)
            flat.extend(ast.Name(id=n, ctx=ast.Load()) for n in self.bound_names)
            return ast.copy_location(
                ast.Call(
                    func=ast.Name(id=self.window_fn, ctx=ast.Load()),
                    args=flat,
                    keywords=[],
                ),
                node,
            )
        return self._methods.visit_Call(node)


# --------------------------------------------------------------------------
# statement-level rewrites
# --------------------------------------------------------------------------


def replace_assignment(
    fn: ast.FunctionDef, name: str, replacement: List[ast.stmt]
) -> None:
    """Replace the single ``name = ...`` statement with ``replacement``."""

    found = 0

    class _Replace(ast.NodeTransformer):
        def visit_Assign(self, node: ast.Assign):
            nonlocal found
            self.generic_visit(node)
            if (
                len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == name
            ):
                found += 1
                return replacement
            return node

    _Replace().visit(fn)
    if found != 1:
        raise CodegenError(f"expected exactly one assignment to {name!r}, saw {found}")


def make_prebinds(list_name: str, element_names: Sequence[str]) -> List[ast.stmt]:
    """``_c0 = controllers[0]; ...`` statements for an unroll group."""
    return [
        ast.Assign(
            targets=[ast.Name(id=element, ctx=ast.Store())],
            value=ast.Subscript(
                value=ast.Name(id=list_name, ctx=ast.Load()),
                slice=ast.Constant(i),
                ctx=ast.Load(),
            ),
        )
        for i, element in enumerate(element_names)
    ]


def fold_fixpoint(
    fn: ast.FunctionDef,
    nonnull_names: Iterable[str] = (),
    nonnull_attrs: Iterable[Tuple[str, str]] = (),
    max_rounds: int = 8,
) -> None:
    """Alternate folding and constant propagation until nothing changes."""
    for _ in range(max_rounds):
        folder = StaticFolder(nonnull_names, nonnull_attrs)
        folder.visit(fn)
        propagated = propagate_single_constants(fn)
        if not folder.changed and not propagated:
            return
