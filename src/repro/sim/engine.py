"""Simulation engines: the reference tick loop and the cycle-skipping loop.

The simulator originally advanced one DRAM bus cycle at a time, ticking
every channel controller, the RNG subsystem and every core — even across
the long idle stretches the paper's whole design exploits (Figures 5, 15
and 18 are dominated by idleness).  The :class:`EventEngine` removes that
cost without changing a single result bit:

* every component exposes ``next_event_cycle(now)`` — a lower bound on
  the first cycle at which ticking it is **not** a pure counter update
  (``now`` = "must tick normally", ``None`` = "no self-generated events"),
* the engine advances the clock directly to the minimum of those bounds,
  asking each component to ``skip_cycles(now, target)`` — a closed-form
  replay of the skipped ticks (idle/busy/RNG-mode counters, occupancy
  samples, stall cycles, bubble retirement),
* whenever any component cannot bound its next event the engine falls
  back to single-stepping, reusing the exact tick code path.

Because skipped ticks are by construction state-preserving modulo those
linear counters, both engines produce **bit-identical**
:class:`~repro.sim.results.SimulationResult`s for every design; cached
results therefore stay valid and the engine choice is excluded from all
result-cache keys (see :mod:`repro.orchestration.keys`).

Select the engine with ``SimulationConfig.engine`` (default ``"event"``;
``"tick"`` is kept as the executable reference the equivalence tests
compare against) or ``python -m repro --engine``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .system import System


class TickEngine:
    """The reference engine: tick every component once per bus cycle."""

    name = "tick"

    def run(self, system: "System") -> int:
        """Advance ``system`` to completion; return the final cycle count."""
        controllers = system.controllers
        processor = system.processor
        rng_subsystem = system.rng_subsystem
        max_cycles = system.config.max_cycles

        cycle = 0
        while not processor.all_finished:
            if cycle >= max_cycles:
                system.hit_cycle_limit = True
                break
            system.cycle = cycle
            for controller in controllers:
                controller.tick(cycle)
            rng_subsystem.tick(cycle)
            processor.tick(cycle)
            cycle += 1
        return cycle


class EventEngine:
    """Cycle-skipping engine: jump straight to the next possible event.

    Two mechanisms remove per-cycle work, both exploiting that a *quiet*
    tick (one whose only effect is a constant per-cycle counter delta) is
    exactly equivalent to a one-cycle ``skip_cycles``:

    * **Jumping.**  When every component is quiet past the current cycle,
      the clock advances straight to the earliest bound and the skipped
      ticks are replayed in closed form.
    * **Selective stepping.**  When some component must tick, only the
      active components run the real tick path; quiet ones take the cheap
      one-cycle skip.  Causality within a cycle is preserved by keeping
      the reference order (controllers, RNG subsystem, processor) and by
      deciding each core's activity *after* the memory side has ticked —
      a completion fired by a controller this cycle makes the waiting
      core active this cycle, exactly as in the tick engine.
    """

    name = "event"

    def run(self, system: "System") -> int:
        """Advance ``system`` to completion; return the final cycle count."""
        controllers = system.controllers
        processor = system.processor
        cores = processor.cores
        rng_subsystem = system.rng_subsystem
        max_cycles = system.config.max_cycles

        controller_range = list(enumerate(controllers))
        core_range = list(enumerate(cores))
        controller_bounds = [0] * len(controllers)
        core_bounds = [0] * len(cores)
        # Stall deferral: a core whose instruction window is full behind an
        # outstanding request can neither act nor finish until a completion
        # callback flips its head slot, so its per-cycle stall bookkeeping
        # is deferred entirely — ``stalled_since[i]`` records the first
        # deferred cycle, and the engine watches the head slot directly
        # (cores are engine-intimate by design) to wake it.
        stalled_since = [None] * len(cores)
        # The engine reads component internals (cached bounds, deferred
        # segment markers, window heads) to keep the hot loop free of
        # redundant calls; every such read mirrors a documented invariant
        # of the component's next_event_cycle / skip_cycles contract.
        unfinished = processor._unfinished
        cycle = 0
        while True:
            while unfinished and unfinished[-1].finish_cycle is not None:
                unfinished.pop()
            if not unfinished:
                break
            if cycle >= max_cycles:
                system.hit_cycle_limit = True
                break

            # Memory-side horizon: the earliest cycle a controller or the
            # RNG subsystem may change state.  ``None`` = unbounded-quiet.
            target = max_cycles
            memory_active = False
            for index, controller in controller_range:
                if controller._bound_cache_valid:
                    buffer = controller._fill_buffer
                    if buffer is None or buffer.version == controller._fill_buffer_version:
                        bound = controller._bound_cache
                    else:
                        bound = controller.next_event_cycle(cycle)
                else:
                    bound = controller.next_event_cycle(cycle)
                controller_bounds[index] = bound
                if bound is None:
                    continue
                if bound <= cycle:
                    memory_active = True
                elif bound < target:
                    target = bound
            rng_bound = rng_subsystem.next_event_cycle(cycle)
            if rng_bound is not None:
                if rng_bound <= cycle:
                    memory_active = True
                elif rng_bound < target:
                    target = rng_bound

            step = cycle + 1
            if not memory_active:
                # Nothing on the memory side ticks this cycle: no
                # completion can fire, so stalled cores stay stalled and
                # the remaining cores' bounds are valid now.  A full jump
                # may be possible.
                cores_active = False
                for index, core in core_range:
                    if stalled_since[index] is not None:
                        core_bounds[index] = None
                        continue
                    bound = core.next_event_cycle(cycle)
                    if bound is None:
                        # Newly stalled: defer its bookkeeping from here.
                        stalled_since[index] = cycle
                        core_bounds[index] = None
                        continue
                    core_bounds[index] = bound
                    if bound <= cycle:
                        cores_active = True
                    elif bound < target:
                        target = bound
                if not cores_active and target > step:
                    for index, controller in controller_range:
                        if controller._skip_kind is None:
                            controller.skip_cycles(cycle, target)
                    rng_subsystem.skip_cycles(cycle, target)
                    for index, core in core_range:
                        if stalled_since[index] is None:
                            core.skip_cycles(cycle, target)
                    cycle = target
                    continue
                # Mixed cycle with a quiet memory side: skip it wholesale
                # and step only the active cores, reusing the bounds just
                # computed (no memory tick ran, so they are still valid).
                # Advancing the RNG clock inline is exactly its
                # skip_cycles(cycle, cycle + 1).
                system.cycle = system.dram.now = rng_subsystem.now = cycle
                for index, controller in controller_range:
                    if controller._skip_kind is None:
                        controller.skip_cycles(cycle, step)
                for index, core in core_range:
                    bound = core_bounds[index]
                    if bound is None:
                        continue
                    if bound <= cycle:
                        core.tick(cycle)
                    else:
                        core.skip_cycles(cycle, step)
                cycle = step
                continue

            # Single step with memory activity: tick the active memory
            # components, one-cycle-skip the quiet ones (identical by the
            # definition of quietness), then decide each core *after* the
            # memory side has ticked — a completion fired above wakes the
            # waiting core this very cycle, exactly as in the tick engine.
            system.cycle = system.dram.now = cycle
            for index, controller in controller_range:
                bound = controller_bounds[index]
                if bound is not None and bound <= cycle:
                    controller.tick(cycle)
                elif controller._skip_kind is None:
                    controller.skip_cycles(cycle, step)
            if rng_bound is not None and rng_bound <= cycle:
                rng_subsystem.tick(cycle)
            else:
                rng_subsystem.now = cycle
            for index, core in core_range:
                since = stalled_since[index]
                if since is not None:
                    # A stalled window only unblocks when a completion
                    # marks its head slot done; until then the core has
                    # no tick effects beyond the deferred stall counters.
                    if not core._window[0].done:
                        continue
                    core.catch_up_stall(since, cycle)
                    stalled_since[index] = None
                bound = core.next_event_cycle(cycle)
                if bound is None:
                    stalled_since[index] = cycle
                elif bound <= cycle:
                    core.tick(cycle)
                else:
                    core.skip_cycles(cycle, step)
            cycle = step

        # Close every deferred quiet segment at the final cycle count
        # (simulation finished or hit the cycle limit) so the statistics
        # the result builder reads are complete.
        system.dram.now = cycle
        for controller in controllers:
            controller.catch_up(cycle)
        for index, core in enumerate(cores):
            since = stalled_since[index]
            if since is not None:
                core.catch_up_stall(since, cycle)
        return cycle


#: Engine registry, keyed by ``SimulationConfig.engine``.  The single
#: source of truth for valid engine names: ``SimulationConfig`` derives
#: its validation tuple from it.
ENGINE_REGISTRY = {
    EventEngine.name: EventEngine,
    TickEngine.name: TickEngine,
}


def make_engine(name: str):
    """Instantiate the engine registered under ``name``."""
    try:
        return ENGINE_REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; known engines: {', '.join(sorted(ENGINE_REGISTRY))}"
        ) from None
