"""Simulation engines: the reference tick loop and the cycle-skipping loop.

The simulator originally advanced one DRAM bus cycle at a time, ticking
every channel controller, the RNG subsystem and every core — even across
the long idle stretches the paper's whole design exploits (Figures 5, 15
and 18 are dominated by idleness).  The :class:`EventEngine` removes that
cost without changing a single result bit:

* every component exposes ``next_event_cycle(now)`` — a lower bound on
  the first cycle at which ticking it is **not** a pure counter update
  (``now`` = "must tick normally", ``None`` = "no self-generated events"),
* the engine advances the clock directly to the minimum of those bounds,
  asking each component to ``skip_cycles(now, target)`` — a closed-form
  replay of the skipped ticks (idle/busy/RNG-mode counters, occupancy
  samples, stall cycles, bubble retirement),
* whenever any component cannot bound its next event the engine falls
  back to single-stepping, reusing the exact tick code path.

Because skipped ticks are by construction state-preserving modulo those
linear counters, both engines produce **bit-identical**
:class:`~repro.sim.results.SimulationResult`s for every design; cached
results therefore stay valid and the engine choice is excluded from all
result-cache keys (see :mod:`repro.orchestration.keys`).

The third engine, :class:`CompiledEngine`, is the specialise-and-compile
seam: at run time it renders Python source specialised to the concrete
``SimulationConfig`` — channel/core counts constant-folded into unrolled
loops, the chosen scheduler's ``select_index`` inlined into the serve
loop, dead design branches dropped — then ``compile``/``exec``-utes it
(see :mod:`repro.sim.codegen`).  The generated code is produced from the
same module-level unit functions the interpreted engines execute
(:func:`event_dispatch`, :func:`serve_window_end`,
:func:`~repro.controller.memory_controller.channel_serve_batch`, the
``sched`` unit functions): one source of truth, rendered two ways.

Select the engine with ``SimulationConfig.engine`` (default ``"event"``;
``"tick"`` is kept as the executable reference the equivalence tests
compare against) or ``python -m repro --engine``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..controller.memory_controller import ExecutionMode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .system import System


class EngineProfile:
    """Opt-in phase profiling for one engine run (``--profile-engine``).

    Counts where the engine's dispatch loop actually spends its
    iterations — the attribution dataset the specialise-and-compile
    roadmap item needs before anyone writes a code generator:

    * ``serve_window_len`` / ``window_break`` — power-of-two histogram
      of batched-serve window lengths and the distribution of which
      bound ended each window (a waking completion, the RNG subsystem,
      the minimum read latency, the cycle limit, a serve-side event),
    * ``skip_len`` — histogram of full-jump lengths,
    * ``dispatch_iterations`` / ``single_steps`` / ``mixed_step_cycles``
      / ``serve_batches`` / ``controller_ticks`` — how often each
      dispatch path ran (``controller_ticks`` counts real
      :meth:`ChannelController.tick` calls, i.e. scheduler selects).

    Strictly observe-only: the profile never feeds a scheduling or
    skipping decision, and every hook is behind ``profile is not None``
    so the default (unprofiled) hot path pays one predicted branch.
    Exported as ``engine.profile.*`` counters through
    :meth:`TickEngine.metrics` / :meth:`EventEngine.metrics`, folded
    into run manifests and rendered by ``repro trace profile``.
    """

    __slots__ = (
        "dispatch_iterations",
        "single_steps",
        "mixed_step_cycles",
        "serve_batches",
        "controller_ticks",
        "serve_window_len",
        "skip_len",
        "window_break",
    )

    #: Histogram ceiling: everything at or past this lands in ``4096+``.
    BUCKET_CAP = 4096

    def __init__(self) -> None:
        self.dispatch_iterations = 0
        self.single_steps = 0
        self.mixed_step_cycles = 0
        self.serve_batches = 0
        self.controller_ticks = 0
        self.serve_window_len: dict = {}
        self.skip_len: dict = {}
        self.window_break: dict = {}

    @staticmethod
    def bucket(value: int) -> str:
        """Power-of-two bucket label for a cycle count."""
        if value <= 1:
            return "1"
        if value >= EngineProfile.BUCKET_CAP:
            return f"{EngineProfile.BUCKET_CAP}+"
        return str(1 << (value - 1).bit_length())

    def add_window(self, length: int, cause: str) -> None:
        label = self.bucket(length)
        self.serve_window_len[label] = self.serve_window_len.get(label, 0) + 1
        self.window_break[cause] = self.window_break.get(cause, 0) + 1

    def add_skip(self, length: int) -> None:
        label = self.bucket(length)
        self.skip_len[label] = self.skip_len.get(label, 0) + 1

    def metrics(self) -> dict:
        """The profile as flat ``engine.profile.*`` counters (zeros
        omitted, so an unprofiled-looking run stays unprofiled-looking)."""
        out = {
            "engine.profile.dispatch_iterations": self.dispatch_iterations,
            "engine.profile.single_steps": self.single_steps,
            "engine.profile.mixed_step_cycles": self.mixed_step_cycles,
            "engine.profile.serve_batches": self.serve_batches,
            "engine.profile.controller_ticks": self.controller_ticks,
        }
        for label, count in self.serve_window_len.items():
            out[f"engine.profile.serve_window_len.{label}"] = count
        for label, count in self.skip_len.items():
            out[f"engine.profile.skip_len.{label}"] = count
        for cause, count in self.window_break.items():
            out[f"engine.profile.window_break.{cause}"] = count
        return {name: value for name, value in out.items() if value}


class TickEngine:
    """The reference engine: tick every component once per bus cycle."""

    name = "tick"
    #: One-line description surfaced by registry-derived CLI help text.
    blurb = "cycle-by-cycle reference"

    def __init__(self) -> None:
        self.profile = None

    def enable_profile(self) -> EngineProfile:
        if self.profile is None:
            self.profile = EngineProfile()
        return self.profile

    def metrics(self) -> dict:
        """Engine counters to export as telemetry (profile only; the
        reference loop has no fast paths to count)."""
        return self.profile.metrics() if self.profile is not None else {}

    def run(self, system: "System", stop_at: "int | None" = None) -> int:
        """Advance ``system`` from its current cycle; return the final cycle.

        ``stop_at`` pauses the run at exactly that cycle (checkpointing);
        the loop starts from ``system.cycle`` so a paused run resumes
        where it left off.  Only reaching ``max_cycles`` sets
        ``hit_cycle_limit``.
        """
        controllers = system.controllers
        processor = system.processor
        rng_subsystem = system.rng_subsystem
        max_cycles = system.config.max_cycles
        limit = max_cycles if stop_at is None else min(stop_at, max_cycles)

        cycle = start_cycle = system.cycle
        while not processor.all_finished:
            if cycle >= limit:
                if cycle >= max_cycles:
                    system.hit_cycle_limit = True
                break
            system.cycle = cycle
            for controller in controllers:
                controller.tick(cycle)
            rng_subsystem.tick(cycle)
            processor.tick(cycle)
            cycle += 1
        profile = self.profile
        if profile is not None:
            # Every cycle is one dispatch iteration of one single-step
            # path that ticks every controller — closed form, so the
            # reference loop itself stays hook-free.
            ticked = cycle - start_cycle
            profile.dispatch_iterations += ticked
            profile.single_steps += ticked
            profile.controller_ticks += ticked * len(controllers)
        return cycle


def event_dispatch(engine, system: "System", stop_at: "int | None" = None) -> int:
    """Advance ``system`` from its current cycle; return the final cycle.

    The event engine's dispatch loop, factored to module level as the
    primary codegen unit: :class:`EventEngine` executes it directly
    (``run = event_dispatch``), while :mod:`repro.sim.codegen`
    specialises its AST per config (loops over ``controller_range`` /
    ``core_range`` unrolled to the concrete channel/core counts, the
    profile and shared-buffer branches folded away when inactive) for
    :class:`CompiledEngine`.  The loop bodies therefore keep every
    per-component ``continue`` as a sole-statement guard and avoid
    ``break`` inside component loops — the shape the unroller requires.

    ``stop_at`` pauses the run at exactly that cycle (checkpointing).
    The pause epilogue is the same as the completion epilogue: every
    deferred quiet segment is materialised at the pause cycle, so the
    paused system's state is bit-identical to the reference engine's
    at that cycle and a resumed run continues exactly.  Only reaching
    ``max_cycles`` sets ``hit_cycle_limit``.
    """
    controllers = system.controllers
    processor = system.processor
    cores = processor.cores
    rng_subsystem = system.rng_subsystem
    max_cycles = system.config.max_cycles
    limit = max_cycles if stop_at is None else min(stop_at, max_cycles)

    controller_range = list(enumerate(controllers))
    core_range = list(enumerate(cores))
    controller_bounds = [0] * len(controllers)
    # Stall deferral: a core whose instruction window is full behind an
    # outstanding request can neither act nor finish until a completion
    # callback flips its head slot, so its per-cycle stall bookkeeping
    # is deferred entirely — ``stalled_since[i]`` records the first
    # deferred cycle, and the engine watches the head slot directly
    # (cores are engine-intimate by design) to wake it.
    stalled_since = [None] * len(cores)
    # Streaming deferral: a *quiet* core (pure bubble streaming until
    # its event bound) evolves deterministically as long as no memory
    # tick fires a completion into its window, so instead of one
    # ``skip_cycles`` call per cycle, the engine records the start of
    # the quiet stretch (``quiet_since[i]``) and the core's cached
    # absolute event bound (``core_bound_cache[i]``, ``-1`` invalid),
    # and materialises the whole stretch in one call right before the
    # core must tick, before any memory step (completions may change
    # its window), or at the end of the run.
    quiet_since = [None] * len(cores)
    core_bound_cache = [-1] * len(cores)
    # ``stalled_count`` mirrors the number of non-None entries so the
    # batched-serve pre-flight's "every core is stalled" test is O(1).
    stalled_count = 0
    num_cores = len(cores)
    # Floor on the cycles between issuing a read inside a serve window
    # and its completion; windows never exceed it, so completions of
    # reads issued inside a window always land outside it.
    min_read_completion = controllers[0].channel.min_read_completion_distance(
        controllers[0].config.backend_latency
    )
    # The shared random number buffer (if the design has one): its
    # version counter is one of the signals that end a mixed stretch.
    shared_buffer = system.buffer
    # The engine reads component internals (cached bounds, deferred
    # segment markers, window heads) to keep the hot loop free of
    # redundant calls; every such read mirrors a documented invariant
    # of the component's next_event_cycle / skip_cycles contract.
    unfinished = processor._unfinished
    profile = engine.profile
    cycle = system.cycle
    while True:
        if profile is not None:
            profile.dispatch_iterations += 1
        while unfinished and unfinished[-1].finish_cycle is not None:
            unfinished.pop()
        if not unfinished:
            # The last finish may have been *materialised for the
            # current, not-yet-processed cycle*: the mixed-stretch
            # re-examination closes a quiet core's stretch through
            # ``cycle`` itself when its event bound is the next cycle
            # (so a finish inside it reaches this check), and every
            # other exit path leaves ``cycle`` already past the
            # finish.  The reference engine still runs that final
            # cycle, so the clock must advance past the last finish
            # before the epilogue closes the deferred memory-side
            # segments — which provably cover the gap: the stretch
            # only materialises while the memory side is quiet past
            # it, so the skipped cycle extends each open segment
            # with its established classification.
            for core in cores:
                finish = core.finish_cycle
                if finish is not None and finish >= cycle:
                    cycle = finish + 1
            break
        if cycle >= limit:
            if cycle >= max_cycles:
                system.hit_cycle_limit = True
            break

        # Memory-side horizon: the earliest cycle a controller or the
        # RNG subsystem may change state.  ``None`` = unbounded-quiet.
        # The shared-buffer version is read once per iteration (every
        # controller's fill decision consults the same buffer).
        target = limit
        memory_active = False
        buffer_version = None if shared_buffer is None else shared_buffer.version
        for index, controller in controller_range:
            if controller._bound_cache_valid and (
                buffer_version is None
                or controller._fill_buffer is None
                or controller._fill_buffer_version == buffer_version
            ):
                bound = controller._bound_cache
            else:
                bound = controller.next_event_cycle(cycle)
            controller_bounds[index] = bound
            if bound is None:
                continue
            if bound <= cycle:
                memory_active = True
            elif bound < target:
                target = bound
        # RNG-subsystem bound, inlined from
        # RNGSubsystem.next_event_cycle (keep in sync): a pending
        # retry forces normal ticking, else the deferred heap head is
        # the earliest event.
        if rng_subsystem._retry_queue:
            rng_bound = cycle
        elif rng_subsystem._deferred:
            head = rng_subsystem._deferred[0][0]
            rng_bound = cycle if head <= cycle else head
        else:
            rng_bound = None
        if rng_bound is not None:
            if rng_bound <= cycle:
                memory_active = True
            elif rng_bound < target:
                target = rng_bound

        step = cycle + 1
        if not memory_active:
            # Nothing on the memory side ticks this cycle: no
            # completion can fire, so stalled cores stay stalled,
            # quiet cores' cached bounds stay exact, and a full jump
            # may be possible.
            cores_active = False
            for index, core in core_range:
                if stalled_since[index] is not None:
                    continue
                bound = core_bound_cache[index]
                if bound == -1:
                    since = quiet_since[index]
                    if since is not None:
                        core.skip_cycles(since, cycle)
                        quiet_since[index] = None
                    bound = core.next_event_cycle(cycle)
                    if bound is None:
                        # Newly stalled: defer its bookkeeping from here.
                        stalled_since[index] = cycle
                        stalled_count += 1
                    else:
                        core_bound_cache[index] = bound
                if bound is not None:
                    if bound <= cycle:
                        cores_active = True
                    elif bound == step:
                        # The core's event is next cycle: materialise the
                        # stretch through this cycle now, so a finish
                        # inside it is visible to the loop-top check of
                        # the next iteration (the engine must stop at the
                        # exact cycle the last core finishes).  The
                        # deferral marker moves to ``step`` (an empty
                        # stretch) so a re-examination of the same cycle
                        # cannot account it twice.
                        since = quiet_since[index]
                        core.skip_cycles(cycle if since is None else since, step)
                        quiet_since[index] = step
                        target = step
                    else:
                        if bound < target:
                            target = bound
                        if quiet_since[index] is None:
                            quiet_since[index] = cycle
            if not cores_active and target > step:
                # Full jump: quiet cores stay deferred — their
                # stretches extend through the jump for free — except
                # those whose event is exactly the jump target, which
                # materialise now for the same loop-top reason.
                for index, controller in controller_range:
                    if controller._skip_kind is None:
                        controller.skip_cycles(cycle, target)
                # = RNGSubsystem.skip_cycles(cycle, target); keep in sync.
                rng_subsystem.now = target - 1
                for index, core in core_range:
                    if core_bound_cache[index] == target and quiet_since[index] is not None:
                        core.skip_cycles(quiet_since[index], target)
                        quiet_since[index] = None
                if profile is not None:
                    profile.add_skip(target - cycle)
                cycle = target
                continue
            # Mixed stretch with a quiet memory side: step the active
            # cores cycle by cycle *without re-running the memory
            # prologue*.  The memory side provably stays quiet until
            # ``target`` unless a core's tick perturbs it, and every
            # perturbation is observable: an enqueue invalidates that
            # controller's bound cache, a buffer serve bumps the
            # shared buffer version, and an RNG request grows the
            # subsystem's deferred heap or retry queue.  The stretch
            # breaks on the first such signal (or a finish of the
            # watched tail core) and falls back to the full loop.
            deferred_len = len(rng_subsystem._deferred)
            buffer_version = -1 if shared_buffer is None else shared_buffer.version
            stretch_start = cycle
            while True:
                system.cycle = system.dram.now = rng_subsystem.now = cycle
                for index, controller in controller_range:
                    if controller._skip_kind is None:
                        controller.skip_cycles(cycle, step)
                for index, core in core_range:
                    bound = core_bound_cache[index]
                    if bound == -1 or bound > cycle:
                        continue
                    since = quiet_since[index]
                    if since is not None:
                        core.skip_cycles(since, cycle)
                        quiet_since[index] = None
                    core.tick(cycle)
                    core_bound_cache[index] = -1
                cycle = step
                step = cycle + 1
                if unfinished[-1].finish_cycle is not None:
                    break
                if cycle >= target:
                    break
                if (
                    (shared_buffer is not None and shared_buffer.version != buffer_version)
                    or len(rng_subsystem._deferred) != deferred_len
                    or rng_subsystem._retry_queue
                ):
                    break
                dirty = False
                for index, controller in controller_range:
                    if not controller._bound_cache_valid:
                        dirty = True
                if dirty:
                    break
                # Re-examine the cores for the next cycle (same rules
                # as the prologue's core pass).
                cores_active = False
                for index, core in core_range:
                    if stalled_since[index] is not None:
                        continue
                    bound = core_bound_cache[index]
                    if bound == -1:
                        since = quiet_since[index]
                        if since is not None:
                            core.skip_cycles(since, cycle)
                            quiet_since[index] = None
                        bound = core.next_event_cycle(cycle)
                        if bound is None:
                            stalled_since[index] = cycle
                            stalled_count += 1
                        else:
                            core_bound_cache[index] = bound
                    if bound is not None:
                        if bound <= cycle:
                            cores_active = True
                        elif bound == step:
                            since = quiet_since[index]
                            core.skip_cycles(cycle if since is None else since, step)
                            quiet_since[index] = step
                        elif quiet_since[index] is None:
                            quiet_since[index] = cycle
                if not cores_active:
                    break
            if profile is not None:
                profile.mixed_step_cycles += cycle - stretch_start
            continue

        # Batched-serve fast path: with every core window-stalled and
        # the RNG subsystem quiet, no request can arrive at any
        # controller, so each controller's serve decisions are a pure
        # function of its own state until an event re-couples the
        # components.  Resolve the whole window in one engine
        # iteration instead of one per cycle.
        if stalled_count == num_cores and (rng_bound is None or rng_bound > cycle):
            # Horizon: the minimum-completion ceiling, the RNG
            # subsystem's next event, the cycle limit, and — the
            # common binding constraint in dense workloads — the
            # earliest *waking* completion: a stalled core's window
            # head re-activates it the cycle it completes.  Serving
            # controllers' own future serve points are deliberately
            # *not* horizon events; serve_batch resolves them.
            window_end = cycle + min_read_completion
            if rng_bound is not None and rng_bound < window_end:
                window_end = rng_bound
            if limit < window_end:
                window_end = limit
            # A waking completion at cycle ``c`` does not end the
            # window at ``c``: in the reference order the controllers
            # tick *before* the cores, so every serve decision at
            # ``c`` precedes the woken core's enqueues.  The window
            # extends through ``c`` and the engine runs the woken
            # cores' ticks at ``c`` itself below — saving the whole
            # per-cycle dispatch the wake would otherwise cost.
            # (A stalled core's window head is its oldest outstanding
            # slot, ``_undone_fifo[0]``.)
            for core in cores:
                ready = core._undone_fifo[0].ready_at
                if ready is not None and ready < window_end:
                    window_end = ready + 1
            if window_end > step:
                window_end = serve_window_end(
                    cycle, window_end, controller_range, controller_bounds
                )
            if window_end > step:
                for index, controller in controller_range:
                    if controller.mode is ExecutionMode.REGULAR and (
                        controller.read_queue._entries or controller.write_queue._entries
                    ):
                        controller.serve_batch(cycle, window_end)
                    elif controller._skip_kind is None:
                        controller.skip_cycles(cycle, window_end)
                # = RNGSubsystem.skip_cycles(cycle, window_end); keep in sync.
                rng_subsystem.now = window_end - 1
                engine.serve_windows += 1
                engine.serve_window_cycles += window_end - cycle
                if profile is not None:
                    # Cause-of-break attribution, re-derived from the
                    # bounds (first match wins on ties, in horizon
                    # order): the cycle limit, the RNG subsystem's
                    # next event, the minimum-read-latency ceiling, a
                    # waking completion, else a serve-side event from
                    # ``serve_window_end``.
                    if window_end == limit:
                        cause = "cycle_limit"
                    elif rng_bound is not None and window_end == rng_bound:
                        cause = "rng"
                    elif window_end == cycle + min_read_completion:
                        cause = "read_completion"
                    else:
                        cause = "serve_bound"
                        for core in cores:
                            ready = core._undone_fifo[0].ready_at
                            if ready is not None and ready + 1 == window_end:
                                cause = "wake"
                    profile.serve_batches += 1
                    profile.add_window(window_end - cycle, cause)
                # Wake pass at the window's last cycle: completions
                # fired inside the window may have flipped stalled
                # heads; those cores tick now, exactly as the
                # reference would after the memory side at this
                # cycle.  Their enqueues land after every in-window
                # serve decision, preserving arrival order.
                wake_cycle = window_end - 1
                system.cycle = system.dram.now = wake_cycle
                for index, core in core_range:
                    if stalled_since[index] is None or not core._undone_fifo[0].done:
                        continue
                    core.catch_up_stall(stalled_since[index], wake_cycle)
                    stalled_since[index] = None
                    stalled_count -= 1
                    bound = core.next_event_cycle(wake_cycle)
                    if bound is None:
                        stalled_since[index] = wake_cycle
                        stalled_count += 1
                    elif bound <= wake_cycle:
                        core.tick(wake_cycle)
                    elif bound == window_end:
                        core.skip_cycles(wake_cycle, window_end)
                    else:
                        core_bound_cache[index] = bound
                        quiet_since[index] = wake_cycle
                cycle = window_end
                continue

        # Single step with memory activity: tick the active memory
        # components, one-cycle-skip the quiet ones (identical by the
        # definition of quietness), then decide each core *after* the
        # memory side has ticked — a completion fired above wakes the
        # waiting core this very cycle, exactly as in the tick engine.
        # Quiet cores' deferred stretches materialise first: the
        # completions about to fire may change their windows, which
        # would reclassify cycles that already went by.
        system.cycle = system.dram.now = cycle
        if profile is not None:
            profile.single_steps += 1
            for index, controller in controller_range:
                bound = controller_bounds[index]
                if bound is not None and bound <= cycle:
                    profile.controller_ticks += 1
        for index, core in core_range:
            since = quiet_since[index]
            if since is not None:
                core.skip_cycles(since, cycle)
                quiet_since[index] = None
            core_bound_cache[index] = -1
        for index, controller in controller_range:
            bound = controller_bounds[index]
            if bound is not None and bound <= cycle:
                controller.tick(cycle)
            elif controller._skip_kind is None:
                controller.skip_cycles(cycle, step)
        if rng_bound is not None and rng_bound <= cycle:
            rng_subsystem.tick(cycle)
        else:
            rng_subsystem.now = cycle
        for index, core in core_range:
            since = stalled_since[index]
            if since is not None and not core._undone_fifo[0].done:
                # A stalled window only unblocks when a completion
                # marks its head slot done; until then the core has
                # no tick effects beyond the deferred stall counters.
                continue
            if since is not None:
                core.catch_up_stall(since, cycle)
                stalled_since[index] = None
                stalled_count -= 1
            bound = core.next_event_cycle(cycle)
            if bound is None:
                stalled_since[index] = cycle
                stalled_count += 1
            elif bound <= cycle:
                core.tick(cycle)
            elif bound == step:
                # Event next cycle: materialise immediately so a
                # finish this cycle reaches the loop-top check.
                core.skip_cycles(cycle, step)
            else:
                core_bound_cache[index] = bound
                quiet_since[index] = cycle
        cycle = step

    # Close every deferred quiet segment at the final cycle count
    # (simulation finished or hit the cycle limit) so the statistics
    # the result builder reads are complete.
    system.dram.now = cycle
    for controller in controllers:
        controller.catch_up(cycle)
    for index, core in enumerate(cores):
        since = stalled_since[index]
        if since is not None:
            core.catch_up_stall(since, cycle)
        since = quiet_since[index]
        if since is not None:
            core.skip_cycles(since, cycle)
    return cycle


def serve_window_end(cycle, limit, controller_range, controller_bounds):
    """Bound a batched-serve window starting at ``cycle``, or reject it.

    Called with every core window-stalled, the RNG subsystem quiet
    past ``limit``, and ``limit`` already capped by the earliest
    waking completion (a stalled core's window head re-activates its
    core the cycle it completes; completions of reads that are still
    queued land at least a full minimum read latency after they
    issue, past any window formed now).  Returns the first cycle
    per-cycle dispatch must resume at — ``<= cycle + 1`` rejects the
    window.  Per controller:

    * a *server* (Regular Execution Mode with queued regular work) is
      checked for events ``serve_batch`` cannot replay: a queued
      RNG-type request (serving it switches modes), a scheduler event
      in the window (BLISS clearing boundary), a write-only backlog
      whose last issue could end the busy streak mid-window, and a
      fill-policy low-utilisation hazard at the window start (later
      serve points observe a busy bus, see
      :meth:`DRStrangeFillPolicy.serve_window_hazard
      <repro.core.fill_policies.DRStrangeFillPolicy.serve_window_hazard>`);
    * every other controller is quiet until its cached event bound
      (RNG-mode segment end, in-flight completion, idle fill event),
      which simply caps the window; a non-serving controller that is
      active *now* (a completion or fill decision due this cycle)
      rejects it.

    A codegen unit like :func:`event_dispatch`: the generated engine
    rewrites the signature to take the unrolled per-controller locals
    directly.
    """
    end = limit
    for index, controller in controller_range:
        if controller.mode is ExecutionMode.REGULAR and (
            controller.read_queue._entries or controller.write_queue._entries
        ):
            read_queue = controller.read_queue
            if read_queue.rng_pending:
                return 0
            rng_queue = controller.rng_queue
            if rng_queue is not None and rng_queue._entries:
                return 0
            probe = controller._scheduler_event_probe
            if probe is not None:
                event = probe(cycle)
                if event is not None:
                    if event <= cycle:
                        return 0
                    if event < end:
                        end = event
            if not read_queue._entries:
                # Write-only backlog: no read issued inside the window
                # pins the busy streak, so it may lapse once the last
                # write has issued and the in-flight reads drained.
                floor = cycle + len(controller.write_queue._entries)
                inflight = controller._inflight
                if inflight:
                    last_completion = max(entry[0] for entry in inflight)
                    if last_completion > floor:
                        floor = last_completion
                if floor < end:
                    end = floor
            fill = controller.fill_policy
            if fill is not None and fill.serve_window_hazard(controller, cycle):
                return 0
        else:
            bound = controller_bounds[index]
            if bound is None:
                continue
            if bound <= cycle:
                return 0
            if bound < end:
                end = bound
    return end


class EventEngine:
    """Cycle-skipping engine: jump straight to the next possible event.

    Two mechanisms remove per-cycle work, both exploiting that a *quiet*
    tick (one whose only effect is a constant per-cycle counter delta) is
    exactly equivalent to a one-cycle ``skip_cycles``:

    * **Jumping.**  When every component is quiet past the current cycle,
      the clock advances straight to the earliest bound and the skipped
      ticks are replayed in closed form.
    * **Selective stepping.**  When some component must tick, only the
      active components run the real tick path; quiet ones take the cheap
      one-cycle skip.  Causality within a cycle is preserved by keeping
      the reference order (controllers, RNG subsystem, processor) and by
      deciding each core's activity *after* the memory side has ticked —
      a completion fired by a controller this cycle makes the waiting
      core active this cycle, exactly as in the tick engine.
    * **Batched serving.**  Dense workloads defeat both mechanisms: with
      deep read queues the controllers issue nearly every cycle, so the
      engine degenerates into per-cycle dispatch.  But whenever *every*
      core is window-stalled and the RNG subsystem is quiet, no request
      can arrive at any controller until a completion re-activates a
      core — each controller's serve decisions over that stretch depend
      only on its own state.  The engine detects such windows, bounds
      them by every event that could couple components again (a waking
      completion, a scheduler event such as a BLISS clearing boundary, an
      RNG-buffer state change, the earliest cycle a read issued inside
      the window could complete), and drains each controller through
      :meth:`~repro.controller.memory_controller.ChannelController.serve_batch`
      in a single call per window instead of one engine iteration per
      cycle.  ``serve_windows`` / ``serve_window_cycles`` on the engine
      instance count how often the fast path engaged.

    The dispatch loop itself lives at module level (:func:`event_dispatch`,
    with :func:`serve_window_end` bounding the batched windows) so the
    same source serves as the codegen template for :class:`CompiledEngine`.
    """

    name = "event"
    blurb = "cycle-skipping, default"

    def __init__(self) -> None:
        #: Batched-serve instrumentation: windows drained and cycles
        #: covered by them.  Tests use these to assert the fast path
        #: engaged (dense workloads) or was correctly broken by
        #: mid-window events.
        self.serve_windows = 0
        self.serve_window_cycles = 0
        #: Opt-in phase profiling; ``None`` keeps every hook to one
        #: predicted branch (see :class:`EngineProfile`).
        self.profile = None

    def enable_profile(self) -> EngineProfile:
        if self.profile is None:
            self.profile = EngineProfile()
        return self.profile

    def metrics(self) -> dict:
        """Engine counters to export as telemetry, keyed by metric name."""
        out = {
            "engine.serve_windows": self.serve_windows,
            "engine.serve_window_cycles": self.serve_window_cycles,
        }
        if self.profile is not None:
            out.update(self.profile.metrics())
        return out

    # The interpreted rendering of the shared dispatch unit.
    run = event_dispatch

    # Backward-compatible alias for the factored-out window bound.
    _serve_window_end = staticmethod(serve_window_end)


class CompiledEngine(EventEngine):
    """Config-specialised engine: run generated, constant-folded source.

    At ``run`` time the engine asks :mod:`repro.sim.codegen` for a
    dispatch function specialised to this exact configuration — the
    same :func:`event_dispatch` / :func:`serve_window_end` /
    ``serve_batch`` sources, with channel/core loops unrolled to
    literal counts, design-constant branches (profiling, shared
    buffer, fill policy, scheduler probe) folded away, and the chosen
    scheduler's ``select_index`` / ``notify_served`` inlined into the
    serve loop.  Specialised modules are content-addressed by the
    folded config slice and cached in memory and on disk; results are
    bit-identical to both interpreted engines (enforced by the
    three-way differential fuzz harness), so cached results and
    checkpoints remain engine-agnostic.

    Everything else — counters, profiling, metrics — is inherited from
    :class:`EventEngine`; the generated dispatch updates the same
    instance attributes.
    """

    name = "compiled"
    blurb = "config-specialised generated code"

    def run(self, system: "System", stop_at: "int | None" = None) -> int:
        # Lazy import: the codegen machinery only loads (and costs
        # anything) when this engine is actually selected.
        from .codegen import specialized_dispatch

        dispatch = specialized_dispatch(
            system.config,
            num_cores=len(system.processor.cores),
            profiled=self.profile is not None,
        )
        return dispatch(self, system, stop_at)


#: Engine registry, keyed by ``SimulationConfig.engine``.  The single
#: source of truth for valid engine names: ``SimulationConfig`` derives
#: its validation tuple from it, as do the CLI ``--engine`` choices and
#: the distributed submit/worker paths.
ENGINE_REGISTRY = {
    EventEngine.name: EventEngine,
    TickEngine.name: TickEngine,
    CompiledEngine.name: CompiledEngine,
}


def make_engine(name: str):
    """Instantiate the engine registered under ``name``."""
    try:
        return ENGINE_REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; known engines: {', '.join(sorted(ENGINE_REGISTRY))}"
        ) from None
