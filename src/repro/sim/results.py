"""Result records produced by simulations and the experiment runner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..energy.drampower import EnergyBreakdown


@dataclass(frozen=True)
class CoreResult:
    """Per-core outcome of one simulation (statistics frozen at finish)."""

    core_id: int
    name: str
    is_rng: bool
    instructions: int
    cycles: int
    memory_stall_cycles: int
    rng_stall_cycles: int
    reads: int
    writes: int
    rng_requests: int
    average_read_latency: float
    average_rng_latency: float

    @property
    def ipc(self) -> float:
        """Instructions per bus cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mcpi(self) -> float:
        """Memory stall cycles per instruction."""
        return self.memory_stall_cycles / self.instructions if self.instructions else 0.0


@dataclass(frozen=True)
class ChannelResult:
    """Per-channel outcome of one simulation."""

    channel_id: int
    busy_cycles: int
    idle_cycles: int
    rng_mode_cycles: int
    served_reads: int
    served_writes: int
    served_rng_demand: int
    rng_fill_batches: int
    rng_fill_bits: int
    mode_switches: int
    idle_periods: List[int] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return self.busy_cycles + self.idle_cycles + self.rng_mode_cycles

    @property
    def utilization(self) -> float:
        total = self.total_cycles
        if not total:
            return 0.0
        return (self.busy_cycles + self.rng_mode_cycles) / total


@dataclass(frozen=True)
class SimulationResult:
    """Complete outcome of one system simulation."""

    design: str
    total_cycles: int
    cores: List[CoreResult]
    channels: List[ChannelResult]
    buffer_serve_rate: float
    buffer_serves: int
    rng_requests: int
    predictor_accuracy: Optional[float]
    predictor_predictions: int
    energy: EnergyBreakdown
    memory_busy_cycles: int
    scheduler_stats: Dict[str, int] = field(default_factory=dict)

    # -- convenience accessors -----------------------------------------------------

    def core(self, core_id: int) -> CoreResult:
        return self.cores[core_id]

    @property
    def rng_cores(self) -> List[CoreResult]:
        return [core for core in self.cores if core.is_rng]

    @property
    def non_rng_cores(self) -> List[CoreResult]:
        return [core for core in self.cores if not core.is_rng]

    @property
    def total_memory_cycles(self) -> int:
        """Channel cycles spent on RNG and non-RNG memory accesses."""
        return sum(channel.busy_cycles + channel.rng_mode_cycles for channel in self.channels)

    @property
    def all_idle_periods(self) -> List[int]:
        periods: List[int] = []
        for channel in self.channels:
            periods.extend(channel.idle_periods)
        return periods
