"""System assembly and the simulation loop.

A :class:`System` wires together the substrate (DRAM channels, channel
controllers, trace-driven cores) and the configured design (RNG-oblivious
baseline, Greedy Idle, or DR-STRaNGe with its buffer, idleness predictors
and RNG-aware scheduler) and runs the cycle-level simulation until every
core has retired its target instruction count.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Sequence

from .. import telemetry
from ..controller.memory_controller import BaselineQueuePolicy, ChannelController
from ..controller.request import Request, RequestType
from ..core.fill_policies import DRStrangeFillPolicy, GreedyIdleFillPolicy
from ..core.idleness_predictor import IdlenessPredictor, SimpleIdlenessPredictor
from ..core.rl_predictor import QLearningIdlenessPredictor
from ..core.rng_buffer import RandomNumberBuffer
from ..core.rng_scheduler import ApplicationRegistry, RNGAwareQueuePolicy
from ..core.rng_subsystem import RNGSubsystem
from ..cpu.processor import Processor
from ..cpu.trace import Trace
from ..dram.dram_system import DRAMSystem
from ..energy.drampower import DRAMEnergyModel
from ..sched import BLISS, FRFCFS, FRFCFSCap, MemoryScheduler
from .config import (
    DESIGN_DRSTRANGE,
    DESIGN_GREEDY_IDLE,
    PRIORITY_NON_RNG_HIGH,
    PRIORITY_RNG_HIGH,
    SimulationConfig,
)
from .engine import make_engine
from .results import ChannelResult, CoreResult, SimulationResult


class _PredictorIdleListener:
    """Feeds observed idle periods into a channel's idleness predictor.

    A class (not a closure) so a mid-run :class:`System` stays
    serialisable by :mod:`repro.sim.checkpoint` — listeners live on the
    controllers for the whole run.
    """

    __slots__ = ("predictor",)

    def __init__(self, predictor: IdlenessPredictor) -> None:
        self.predictor = predictor

    def __call__(self, channel_id: int, length: int, last_address: int) -> None:
        self.predictor.observe_idle_period(length, last_address)


class System:
    """A fully assembled simulated system."""

    def __init__(self, traces: Sequence[Trace], config: Optional[SimulationConfig] = None) -> None:
        if not traces:
            raise ValueError("a system needs at least one trace")
        self.config = config or SimulationConfig()
        self.traces = list(traces)
        self.cycle = 0
        self.hit_cycle_limit = False

        cfg = self.config
        self.trng = cfg.make_trng()
        self.dram = DRAMSystem(cfg.timing, cfg.organization)

        # Application registry: priorities + RNG-application marking.
        priorities = self._derive_priorities()
        self.registry = ApplicationRegistry(priorities)

        # Random number buffer and per-channel idleness predictors.
        self.buffer: Optional[RandomNumberBuffer] = None
        if cfg.uses_buffer:
            self.buffer = RandomNumberBuffer(
                cfg.drstrange.buffer_entries, cfg.drstrange.bits_per_entry
            )
        self.predictors: Dict[int, IdlenessPredictor] = {}
        if cfg.design == DESIGN_DRSTRANGE and cfg.drstrange.predictor != "none" and self.buffer:
            for channel_id in range(self.dram.num_channels):
                self.predictors[channel_id] = self._make_predictor()

        # Channel controllers with the design-specific policies.
        self.controllers: List[ChannelController] = []
        self.queue_policies: List = []
        fill_policy = self._make_fill_policy()
        self.fill_policy = fill_policy
        for channel in self.dram.channels:
            queue_policy = self._make_queue_policy()
            self.queue_policies.append(queue_policy)
            controller = ChannelController(
                channel=channel,
                dram=self.dram,
                scheduler=self._make_scheduler(),
                config=cfg.controller,
                trng=self.trng,
                queue_policy=queue_policy,
                fill_policy=fill_policy,
                separate_rng_queue=cfg.uses_rng_aware_scheduler,
            )
            predictor = self.predictors.get(channel.channel_id)
            if predictor is not None:
                controller.add_idle_period_listener(_PredictorIdleListener(predictor))
            self.controllers.append(controller)

        # RNG subsystem and processor.
        self.rng_subsystem = RNGSubsystem(
            self.controllers,
            self.registry,
            buffer=self.buffer,
            buffer_serve_latency=cfg.drstrange.buffer_serve_latency,
        )
        self.processor = Processor(
            self.traces,
            send_read=self._send_read,
            send_write=self._send_write,
            send_rng=self._send_rng,
            core_config=cfg.core,
            priorities=[priorities[core_id] for core_id in range(len(self.traces))],
        )

        # Hot request-lifecycle state (see _send_read/_send_write):
        # decoded DRAM coordinates cached per distinct address (traces
        # wrap, so every address decodes once per run instead of once per
        # access), one request free-list arena per core (requests recycle
        # after their terminal completion instead of allocating one
        # object per memory access), and each core's shared read-
        # completion callback resolved once.
        self._decode_cache: Dict[int, object] = {}
        self._request_pools: List[list] = [[] for _ in self.traces]
        self._read_callbacks = [core._on_read_complete for core in self.processor.cores]
        self._priorities = [priorities[core_id] for core_id in range(len(self.traces))]

        self.energy_model = DRAMEnergyModel(num_channels=self.dram.num_channels)

        # Segment accounting: a run may execute as several engine
        # segments (periodic checkpointing pauses the engine between
        # them, possibly across processes after a restore), so wall time
        # and engine counters accumulate here until finalize().
        self._elapsed_seconds = 0.0
        self._engine_metrics: Dict[str, int] = {}

    # ------------------------------------------------------------------ wiring

    def _derive_priorities(self) -> Dict[int, int]:
        mode = self.config.priority_mode
        priorities: Dict[int, int] = {}
        for core_id, trace in enumerate(self.traces):
            is_rng = trace.rng_requests > 0
            if mode == PRIORITY_RNG_HIGH:
                priorities[core_id] = 1 if is_rng else 0
            elif mode == PRIORITY_NON_RNG_HIGH:
                priorities[core_id] = 0 if is_rng else 1
            else:
                priorities[core_id] = 0
        return priorities

    def _make_scheduler(self) -> MemoryScheduler:
        name = self.config.scheduler.lower()
        if name in ("fr-fcfs", "frfcfs"):
            return FRFCFS()
        if name in ("fr-fcfs+cap", "frfcfs+cap", "frfcfs-cap"):
            return FRFCFSCap(cap=self.config.scheduler_cap)
        if name == "bliss":
            return BLISS()
        raise ValueError(f"unknown scheduler {self.config.scheduler!r}")

    def _make_predictor(self) -> IdlenessPredictor:
        ds = self.config.drstrange
        if ds.predictor == "simple":
            return SimpleIdlenessPredictor(
                period_threshold=ds.period_threshold,
                table_entries=ds.predictor_table_entries,
                block_size=self.config.organization.bytes_per_column,
            )
        if ds.predictor == "rl":
            return QLearningIdlenessPredictor(
                period_threshold=ds.period_threshold,
                learning_rate=ds.rl_learning_rate,
                history_bits=ds.rl_history_bits,
                block_size=self.config.organization.bytes_per_column,
            )
        raise ValueError(f"unknown predictor {ds.predictor!r}")

    def _make_queue_policy(self):
        if self.config.uses_rng_aware_scheduler:
            return RNGAwareQueuePolicy(self.registry, stall_limit=self.config.drstrange.stall_limit)
        return BaselineQueuePolicy()

    def _make_fill_policy(self):
        cfg = self.config
        if self.buffer is None:
            return None
        if cfg.design == DESIGN_GREEDY_IDLE:
            return GreedyIdleFillPolicy(
                self.buffer,
                period_threshold=cfg.drstrange.period_threshold,
                bits_per_batch=self.trng.bits_per_batch(cfg.organization.banks_per_rank),
            )
        if cfg.design == DESIGN_DRSTRANGE:
            return DRStrangeFillPolicy(
                self.buffer,
                predictors=self.predictors,
                low_utilization_threshold=cfg.drstrange.low_utilization_threshold,
            )
        return None

    # ------------------------------------------------------------------ core callbacks

    def _send_read(self, address: int, core_id: int, slot) -> bool:
        cache = self._decode_cache
        decoded = cache.get(address)
        if decoded is None:
            decoded = self.dram.mapping.decode(address)
            cache[address] = decoded
        pool = self._request_pools[core_id]
        if pool:
            request = pool.pop().reuse(
                RequestType.READ,
                address,
                self.cycle,
                self._read_callbacks[core_id],
                decoded,
                slot,
            )
        else:
            request = Request(
                type=RequestType.READ,
                core_id=core_id,
                address=address,
                arrival_cycle=self.cycle,
                priority=self._priorities[core_id],
                callback=self._read_callbacks[core_id],
                decoded=decoded,
                window_slot=slot,
                pool=pool,
            )
        if self.controllers[decoded.channel].enqueue(request):
            return True
        # Rejected (queue full): the request never left our hands, so it
        # goes straight back to the arena and the core retries next cycle.
        pool.append(request)
        return False

    def _send_write(self, address: int, core_id: int) -> bool:
        cache = self._decode_cache
        decoded = cache.get(address)
        if decoded is None:
            decoded = self.dram.mapping.decode(address)
            cache[address] = decoded
        pool = self._request_pools[core_id]
        if pool:
            request = pool.pop().reuse(
                RequestType.WRITE, address, self.cycle, None, decoded, None
            )
        else:
            request = Request(
                type=RequestType.WRITE,
                core_id=core_id,
                address=address,
                arrival_cycle=self.cycle,
                priority=self._priorities[core_id],
                decoded=decoded,
                pool=pool,
            )
        if self.controllers[decoded.channel].enqueue(request):
            return True
        pool.append(request)
        return False

    def _send_rng(self, bits: int, core_id: int, callback) -> None:
        self.rng_subsystem.request_random(bits, core_id, callback)

    # ------------------------------------------------------------------ simulation

    def run(self) -> SimulationResult:
        """Run the simulation to completion and return its results.

        The loop itself lives in :mod:`repro.sim.engine`: the ``"event"``
        engine (default) skips straight to the next cycle at which any
        component can change state, the ``"tick"`` engine is the
        cycle-by-cycle reference.  Both produce bit-identical results.
        """
        self.advance()
        return self.finalize()

    def advance(self, stop_at: Optional[int] = None) -> bool:
        """Advance the simulation from its current cycle.

        Runs the configured engine until every core finishes, the cycle
        limit is hit, or — when ``stop_at`` is given — exactly cycle
        ``stop_at``, whichever comes first.  Returns ``True`` once the
        simulation is over (finished or cycle-limited); a ``False``
        return means the run paused at ``stop_at`` and the system is in
        a checkpointable state bit-identical to an uninterrupted run at
        that cycle (see :mod:`repro.sim.checkpoint`).
        """
        engine = make_engine(self.config.engine)
        if telemetry.profiling():
            engine.enable_profile()
        start = perf_counter()
        cycle = engine.run(self, stop_at=stop_at)
        self._elapsed_seconds += perf_counter() - start
        # Kept for instrumentation-minded callers (tests inspect the
        # engine's serve-window counters after a run).
        self.last_engine = engine

        self.cycle = cycle
        metrics = self._engine_metrics
        for name, value in engine.metrics().items():
            metrics[name] = metrics.get(name, 0) + value
        return self.processor.all_finished or self.hit_cycle_limit

    def finalize(self) -> SimulationResult:
        """Close trailing statistics and build the result (run once)."""
        cycle = self.cycle
        for controller in self.controllers:
            controller.flush_idle_period()
        telemetry.record_simulation(
            self.config.engine, cycle, self._elapsed_seconds, dict(self._engine_metrics)
        )
        return self._build_result(cycle)

    # ------------------------------------------------------------------ results

    def _build_result(self, total_cycles: int) -> SimulationResult:
        cores: List[CoreResult] = []
        for core in self.processor.cores:
            stats = core.result_stats()
            cycles = core.finish_cycle if core.finish_cycle is not None else total_cycles
            cores.append(
                CoreResult(
                    core_id=core.core_id,
                    name=core.trace.name,
                    is_rng=core.is_rng_application,
                    instructions=stats.instructions,
                    cycles=max(1, cycles),
                    memory_stall_cycles=stats.memory_stall_cycles,
                    rng_stall_cycles=stats.rng_stall_cycles,
                    reads=stats.reads_issued,
                    writes=stats.writes_issued,
                    rng_requests=stats.rng_requests,
                    average_read_latency=stats.average_read_latency,
                    average_rng_latency=stats.average_rng_latency,
                )
            )

        channels: List[ChannelResult] = []
        for controller in self.controllers:
            stats = controller.stats
            channels.append(
                ChannelResult(
                    channel_id=controller.channel_id,
                    busy_cycles=stats.busy_cycles,
                    idle_cycles=stats.idle_cycles,
                    rng_mode_cycles=stats.rng_mode_cycles,
                    served_reads=stats.served_reads,
                    served_writes=stats.served_writes,
                    served_rng_demand=stats.served_rng_demand,
                    rng_fill_batches=stats.rng_fill_batches,
                    rng_fill_bits=stats.rng_fill_bits,
                    mode_switches=stats.mode_switches,
                    idle_periods=list(stats.idle_periods),
                )
            )

        predictor_accuracy: Optional[float] = None
        predictor_predictions = 0
        if self.predictors:
            correct = 0
            for predictor in self.predictors.values():
                stats = predictor.stats
                correct += stats.true_positives + stats.true_negatives
                predictor_predictions += stats.predictions
            predictor_accuracy = correct / predictor_predictions if predictor_predictions else 0.0

        bank_stats = self.dram.channels[0].bank_stats()
        for channel in self.dram.channels[1:]:
            bank_stats.merge(channel.bank_stats())
        channel_stats = self.dram.total_stats()
        energy = self.energy_model.energy(bank_stats, channel_stats, total_cycles)

        scheduler_stats: Dict[str, int] = {}
        for policy in self.queue_policies:
            if isinstance(policy, RNGAwareQueuePolicy):
                scheduler_stats["rng_queue_choices"] = scheduler_stats.get(
                    "rng_queue_choices", 0
                ) + policy.stats.rng_queue_choices
                scheduler_stats["regular_queue_choices"] = scheduler_stats.get(
                    "regular_queue_choices", 0
                ) + policy.stats.regular_queue_choices
                scheduler_stats["starvation_interventions"] = scheduler_stats.get(
                    "starvation_interventions", 0
                ) + policy.stats.starvation_interventions

        rng_stats = self.rng_subsystem.stats
        memory_busy = sum(c.busy_cycles + c.rng_mode_cycles for c in channels)

        return SimulationResult(
            design=self.config.design,
            total_cycles=total_cycles,
            cores=cores,
            channels=channels,
            buffer_serve_rate=rng_stats.buffer_serve_rate,
            buffer_serves=rng_stats.buffer_serves,
            rng_requests=rng_stats.requests,
            predictor_accuracy=predictor_accuracy,
            predictor_predictions=predictor_predictions,
            energy=energy,
            memory_busy_cycles=memory_busy,
            scheduler_stats=scheduler_stats,
        )


def simulate(traces: Sequence[Trace], config: Optional[SimulationConfig] = None) -> SimulationResult:
    """Convenience wrapper: build a :class:`System` and run it."""
    return System(traces, config).run()
