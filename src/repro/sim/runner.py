"""Experiment runner: shared vs. alone runs, slowdowns, fairness.

The paper's methodology (Section 7) reports every per-application metric
relative to the application running *alone* on a single-core baseline
system.  The runner materialises a workload mix into traces, simulates it
under a given design, simulates every application alone (cached across
experiments, since alone runs are design-independent), and assembles the
derived metrics: execution slowdown, memory slowdown, unfairness index and
weighted speedup.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .. import telemetry
from ..cpu.trace import Trace
from ..dram.address import AddressMapping
from ..metrics.fairness import memory_slowdown, unfairness_index
from ..metrics.speedup import normalized_weighted_speedup, weighted_speedup
from ..workloads.mixes import build_traces
from ..workloads.spec import WorkloadMix
from .config import SimulationConfig
from .results import CoreResult, SimulationResult
from .system import System


class _ThreadScope(threading.local):
    """Per-thread backend installation and engine override.

    The pluggable execution backend (see :mod:`repro.orchestration.sweep`)
    and the ``--engine`` override are scoped *per thread*, not per process:
    the sweep service plans and replays several tenants' jobs on their own
    threads while in-process workers simulate leased points concurrently —
    a process-global backend would route a worker's real simulation
    through another tenant's :class:`PlanningBackend` and commit a stub
    result to the shared store.  Each thread starts with no backend
    installed (direct execution) and no engine override; the class
    attributes below are the per-thread defaults ``threading.local``
    hands to every new thread.
    """

    #: ``None`` means "build a :class:`System` and run it in-process"; the
    #: orchestrator temporarily installs planning/cache-serving backends
    #: here so every simulation in the repository routes through one
    #: choke point.
    backend: Optional[Callable[[Sequence[Trace], SimulationConfig], SimulationResult]] = None

    #: Engine override (``None`` = honour each config's engine).  Set from
    #: the CLI's ``--engine`` flag or a :class:`SweepRequest`; applied at
    #: the choke point so every simulation of a run — experiments, alone
    #: runs, orchestration workers — uses the requested engine.  Results
    #: are engine-independent, so the override never affects cache keys.
    engine: Optional[str] = None

    #: Periodic-checkpoint policy (``None`` = run straight through).
    #: Installed per thread like the backend, and only honoured on the
    #: direct-execution path: a planning/cache-serving backend never
    #: simulates, and process-pool workers run in their own interpreters
    #: where callers install the policy explicitly.
    checkpoint: Optional["CheckpointPolicy"] = None


_SCOPE = _ThreadScope()


@dataclass(frozen=True)
class CheckpointPolicy:
    """Periodic checkpointing for direct simulations.

    Every ``interval`` simulated cycles the running :class:`System` is
    snapshotted into ``store`` (any object with the
    :class:`~repro.orchestration.cache.CheckpointStore` ``resume``/``put``
    interface), and a fresh simulation first asks the store for the
    latest matching checkpoint to resume from — so an interrupted
    process loses at most one interval, and sweep points sharing a
    warmup prefix skip it (the store is content-addressed by
    config-prefix + traces, see :func:`repro.sim.checkpoint.prefix_key`).
    """

    store: object
    interval: int

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError("checkpoint interval must be >= 1 cycle")


def simulate_traces(traces: Sequence[Trace], config: SimulationConfig) -> SimulationResult:
    """Run one simulation through the currently installed backend."""
    engine = _SCOPE.engine
    if engine is not None and config.engine != engine:
        config = replace(config, engine=engine)
    backend = _SCOPE.backend
    if backend is None:
        return simulate_direct(traces, config)
    return backend(traces, config)


def simulate_direct(traces: Sequence[Trace], config: SimulationConfig) -> SimulationResult:
    """One simulation on this thread, bypassing any installed backend.

    This is the execution choke point for the backends themselves (the
    cache-serving replay backend, the serial executor): routing their
    misses here instead of ``System(...).run()`` keeps this thread's
    periodic-checkpoint policy in force — so a CLI sweep under
    ``--checkpoint-interval`` checkpoints the points it computes, not
    just bare ``simulate_traces`` calls.
    """
    policy = _SCOPE.checkpoint
    if policy is not None:
        return _simulate_with_checkpoints(list(traces), config, policy)
    return System(list(traces), config).run()


def _simulate_with_checkpoints(
    traces: List[Trace], config: SimulationConfig, policy: CheckpointPolicy
) -> SimulationResult:
    """Direct execution under a checkpoint policy: resume, advance, snapshot."""
    system = policy.store.resume(traces, config)
    if system is None:
        system = System(traces, config)
    while not system.advance(stop_at=system.cycle + policy.interval):
        policy.store.put(traces, config, system)
    return system.finalize()


def set_engine_override(engine: Optional[str]) -> Optional[str]:
    """Force this thread's simulations onto ``engine`` (``None`` restores
    configs).

    Returns the previous override so callers can scope it.
    """
    previous = _SCOPE.engine
    _SCOPE.engine = engine
    return previous


def set_simulation_backend(
    backend: Optional[Callable[[Sequence[Trace], SimulationConfig], SimulationResult]],
) -> Optional[Callable[[Sequence[Trace], SimulationConfig], SimulationResult]]:
    """Install ``backend`` (or ``None`` for direct execution); returns the old one."""
    previous = _SCOPE.backend
    _SCOPE.backend = backend
    return previous


def backend_provides_real_results() -> bool:
    """Whether backend results may be cached (planning backends return stubs)."""
    backend = _SCOPE.backend
    return backend is None or getattr(backend, "provides_real_results", True)


@contextmanager
def engine_override(engine: Optional[str]) -> Iterator[Optional[str]]:
    """Scope an engine override: installed on entry, restored on exit.

    Both :func:`set_engine_override` and :func:`set_simulation_backend`
    mutate this thread's scope; a sweep that raises between install and
    restore would otherwise leak its override into every subsequent
    simulation on the thread (a long-lived test session, a library
    caller, a service job thread).  All scoped installs — the CLI, the
    orchestrator, the sweep service, benchmarks — go through these
    context managers so an exception cannot leak.
    """
    previous = set_engine_override(engine)
    try:
        yield engine
    finally:
        set_engine_override(previous)


@contextmanager
def simulation_backend(backend) -> Iterator:
    """Scope a simulation backend: installed on entry, restored on exit.

    See :func:`engine_override` for why installs must be scoped.
    """
    previous = set_simulation_backend(backend)
    try:
        yield backend
    finally:
        set_simulation_backend(previous)


def set_checkpoint_policy(policy: Optional[CheckpointPolicy]) -> Optional[CheckpointPolicy]:
    """Install ``policy`` for this thread's direct simulations; returns the old one."""
    previous = _SCOPE.checkpoint
    _SCOPE.checkpoint = policy
    return previous


@contextmanager
def checkpointing(store, interval: int) -> Iterator[CheckpointPolicy]:
    """Scope a periodic-checkpoint policy (see :func:`engine_override`)."""
    policy = CheckpointPolicy(store=store, interval=interval)
    previous = set_checkpoint_policy(policy)
    try:
        yield policy
    finally:
        set_checkpoint_policy(previous)


@dataclass(frozen=True)
class SlotEvaluation:
    """Shared-vs-alone comparison for one core of a workload."""

    name: str
    is_rng: bool
    slowdown: float
    memory_slowdown: float
    ipc_shared: float
    ipc_alone: float
    shared: CoreResult
    alone: CoreResult


@dataclass
class WorkloadEvaluation:
    """Full evaluation of one workload mix under one design."""

    mix_name: str
    design: str
    slots: List[SlotEvaluation]
    unfairness: float
    result: SimulationResult

    @property
    def rng_slots(self) -> List[SlotEvaluation]:
        return [slot for slot in self.slots if slot.is_rng]

    @property
    def non_rng_slots(self) -> List[SlotEvaluation]:
        return [slot for slot in self.slots if not slot.is_rng]

    @property
    def rng_slowdown(self) -> float:
        """Average slowdown of the RNG applications in the workload."""
        slots = self.rng_slots
        if not slots:
            return 1.0
        return sum(slot.slowdown for slot in slots) / len(slots)

    @property
    def non_rng_slowdown(self) -> float:
        """Average slowdown of the non-RNG applications in the workload."""
        slots = self.non_rng_slots
        if not slots:
            return 1.0
        return sum(slot.slowdown for slot in slots) / len(slots)

    @property
    def non_rng_weighted_speedup(self) -> float:
        """Weighted speedup of the non-RNG applications (Figure 7)."""
        slots = self.non_rng_slots
        if not slots:
            return 0.0
        return weighted_speedup(
            [slot.ipc_shared for slot in slots], [slot.ipc_alone for slot in slots]
        )

    @property
    def non_rng_normalized_weighted_speedup(self) -> float:
        slots = self.non_rng_slots
        if not slots:
            return 0.0
        return normalized_weighted_speedup(
            [slot.ipc_shared for slot in slots], [slot.ipc_alone for slot in slots]
        )

    @property
    def buffer_serve_rate(self) -> float:
        return self.result.buffer_serve_rate

    @property
    def predictor_accuracy(self) -> Optional[float]:
        return self.result.predictor_accuracy

    @property
    def energy_nj(self) -> float:
        return self.result.energy.total_nj

    @property
    def memory_busy_cycles(self) -> int:
        return self.result.memory_busy_cycles


class AloneRunCache:
    """Cache of single-application "alone" runs keyed by trace + config."""

    def __init__(self) -> None:
        self._cache: Dict[tuple, Tuple[CoreResult, SimulationResult]] = {}
        self.hits = 0
        self.misses = 0

    def get(
        self, trace: Trace, config: SimulationConfig
    ) -> Tuple[CoreResult, SimulationResult]:
        alone_config = config.alone_run_config()
        key = (
            trace.name,
            trace.metadata.get("seed"),
            trace.metadata.get("row_offset"),
            trace.metadata.get("throughput_mbps"),
            trace.total_instructions,
            alone_config.cache_key(),
        )
        if key in self._cache:
            self.hits += 1
            telemetry.counter("alone_cache.hits")
            return self._cache[key]
        entry = self._load(trace, alone_config)
        if entry is not None:
            self.hits += 1
            telemetry.counter("alone_cache.hits")
            self._cache[key] = entry
            return entry
        self.misses += 1
        telemetry.counter("alone_cache.misses")
        result = simulate_traces([trace], alone_config)
        entry = (result.cores[0], result)
        if backend_provides_real_results():
            self._cache[key] = entry
            self._persist(trace, alone_config, result)
        return entry

    def _load(
        self, trace: Trace, alone_config: SimulationConfig
    ) -> Optional[Tuple[CoreResult, SimulationResult]]:
        """Hook for persistent subclasses: fetch an entry from backing storage."""
        return None

    def _persist(
        self, trace: Trace, alone_config: SimulationConfig, result: SimulationResult
    ) -> None:
        """Hook for persistent subclasses: store a freshly computed entry."""

    def clear(self) -> None:
        self._cache.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._cache)


#: Module-level cache shared by all experiments of one process.
GLOBAL_ALONE_CACHE = AloneRunCache()


def run_workload(
    mix: WorkloadMix,
    config: SimulationConfig,
    instructions: int = 20_000,
    seed: int = 0,
    cache: Optional[AloneRunCache] = None,
    traces: Optional[Sequence[Trace]] = None,
) -> WorkloadEvaluation:
    """Simulate ``mix`` under ``config`` and compare against alone runs."""
    cache = cache if cache is not None else GLOBAL_ALONE_CACHE
    mapping = AddressMapping(config.organization)
    if traces is None:
        traces = build_traces(mix, instructions, seed=seed, mapping=mapping)
    shared_result = simulate_traces(traces, config)

    slots: List[SlotEvaluation] = []
    slowdown_values: List[float] = []
    for core_id, trace in enumerate(traces):
        alone_core, _ = cache.get(trace, config)
        shared_core = shared_result.cores[core_id]
        execution_slowdown = shared_core.cycles / max(1, alone_core.cycles)
        mem_slowdown = memory_slowdown(shared_core.mcpi, alone_core.mcpi)
        slots.append(
            SlotEvaluation(
                name=trace.name,
                is_rng=shared_core.is_rng,
                slowdown=execution_slowdown,
                memory_slowdown=mem_slowdown,
                ipc_shared=max(shared_core.ipc, 1e-12),
                ipc_alone=max(alone_core.ipc, 1e-12),
                shared=shared_core,
                alone=alone_core,
            )
        )
        # For the unfairness index an application that runs *faster* than
        # alone (e.g. an RNG application whose requests are absorbed by
        # the random number buffer) is not "unfairly favoured" beyond
        # parity, so its memory slowdown is floored at 1.0.
        slowdown_values.append(max(1.0, mem_slowdown))

    unfairness = unfairness_index(slowdown_values) if len(slowdown_values) > 1 else 1.0
    return WorkloadEvaluation(
        mix_name=mix.name,
        design=config.design,
        slots=slots,
        unfairness=unfairness,
        result=shared_result,
    )


def run_single_application(
    trace: Trace,
    config: SimulationConfig,
    cache: Optional[AloneRunCache] = None,
) -> Tuple[CoreResult, SimulationResult]:
    """Run one application alone on the baseline system (cached)."""
    cache = cache if cache is not None else GLOBAL_ALONE_CACHE
    return cache.get(trace, config)


def compare_designs(
    mix: WorkloadMix,
    configs: Dict[str, SimulationConfig],
    instructions: int = 20_000,
    seed: int = 0,
    cache: Optional[AloneRunCache] = None,
) -> Dict[str, WorkloadEvaluation]:
    """Evaluate the same workload (same traces) under several designs."""
    cache = cache if cache is not None else GLOBAL_ALONE_CACHE
    results: Dict[str, WorkloadEvaluation] = {}
    base_config = next(iter(configs.values()))
    mapping = AddressMapping(base_config.organization)
    traces = build_traces(mix, instructions, seed=seed, mapping=mapping)
    for label, config in configs.items():
        results[label] = run_workload(
            mix, config, instructions=instructions, seed=seed, cache=cache, traces=traces
        )
    return results
