"""Simulation configuration (the paper's Table 1 plus design selection)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..controller.config import ControllerConfig
from ..core.config import DRStrangeConfig
from ..cpu.core import CoreConfig
from ..dram.timing import DRAMOrganization, DRAMTiming
from ..trng import DRAMTRNGModel, make_trng
from .engine import ENGINE_REGISTRY, CompiledEngine, EventEngine, TickEngine

#: System design points evaluated by the paper.
DESIGN_RNG_OBLIVIOUS = "rng-oblivious"
DESIGN_GREEDY_IDLE = "greedy-idle"
DESIGN_DRSTRANGE = "dr-strange"

DESIGNS = (DESIGN_RNG_OBLIVIOUS, DESIGN_GREEDY_IDLE, DESIGN_DRSTRANGE)

#: Application priority assignments (Section 8.5).
PRIORITY_EQUAL = "equal"
PRIORITY_RNG_HIGH = "rng-high"
PRIORITY_NON_RNG_HIGH = "non-rng-high"

PRIORITY_MODES = (PRIORITY_EQUAL, PRIORITY_RNG_HIGH, PRIORITY_NON_RNG_HIGH)

#: Simulation engines (see :mod:`repro.sim.engine`).  Every engine produces
#: bit-identical :class:`~repro.sim.results.SimulationResult`s: the event
#: engine skips over cycles in which no component can change state, and the
#: compiled engine runs source generated for the exact configuration.  The
#: registry in :mod:`repro.sim.engine` is the single source of truth, so
#: config validation can never drift from what ``make_engine`` accepts.
ENGINE_EVENT = EventEngine.name
ENGINE_TICK = TickEngine.name
ENGINE_COMPILED = CompiledEngine.name

ENGINES = tuple(ENGINE_REGISTRY)


def engine_help() -> str:
    """Registry-derived ``--engine`` help text (CLI, worker and submit paths).

    Built from each engine's ``name``/``blurb`` so the help can never
    drift from :data:`~repro.sim.engine.ENGINE_REGISTRY`.
    """
    choices = ", ".join(
        f"'{name}' ({cls.blurb})" for name, cls in ENGINE_REGISTRY.items()
    )
    return f"simulation engine: {choices}; results are bit-identical either way"


@dataclass(frozen=True)
class SimulationConfig:
    """Complete configuration of one simulation.

    The defaults reproduce the paper's evaluated DR-STRaNGe system
    (Table 1): DDR3-1600 with 4 channels, FR-FCFS with a column cap of 16
    as the within-queue scheduler, the D-RaNGe TRNG, a 16-entry random
    number buffer, the simple idleness predictor with a low-utilisation
    threshold of 4, and equal application priorities.
    """

    design: str = DESIGN_DRSTRANGE
    scheduler: str = "fr-fcfs+cap"
    scheduler_cap: int = 16
    trng_name: str = "d-range"
    trng_throughput_mbps: Optional[float] = None
    priority_mode: str = PRIORITY_EQUAL
    drstrange: DRStrangeConfig = field(default_factory=DRStrangeConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    core: CoreConfig = field(default_factory=CoreConfig)
    timing: DRAMTiming = field(default_factory=DRAMTiming)
    organization: DRAMOrganization = field(default_factory=DRAMOrganization)
    #: Hard simulation length limit (bus cycles) as a runaway guard.
    max_cycles: int = 5_000_000
    #: Seed for the TRNG entropy source.
    entropy_seed: int = 0
    #: Simulation engine: ``"event"`` (cycle-skipping) or ``"tick"`` (the
    #: reference cycle-by-cycle loop).  Results are bit-identical, so the
    #: engine is excluded from all result-cache keys.
    engine: str = ENGINE_EVENT

    def __post_init__(self) -> None:
        if self.design not in DESIGNS:
            raise ValueError(f"design must be one of {DESIGNS}, got {self.design!r}")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.priority_mode not in PRIORITY_MODES:
            raise ValueError(
                f"priority_mode must be one of {PRIORITY_MODES}, got {self.priority_mode!r}"
            )
        if self.max_cycles <= 0:
            raise ValueError("max_cycles must be positive")

    # -- derived objects -----------------------------------------------------------

    def make_trng(self) -> DRAMTRNGModel:
        """Instantiate the configured TRNG mechanism model."""
        from ..trng.entropy import EntropySource

        kwargs = {"entropy_source": EntropySource(seed=self.entropy_seed)}
        if self.trng_name == "parametric":
            if self.trng_throughput_mbps is None:
                raise ValueError("parametric TRNG requires trng_throughput_mbps")
            kwargs["throughput_mbps"] = self.trng_throughput_mbps
            kwargs["num_channels"] = self.organization.channels
            kwargs["bus_mhz"] = self.timing.bus_frequency_mhz
        elif self.trng_throughput_mbps is not None:
            kwargs["throughput_mbps"] = self.trng_throughput_mbps
        return make_trng(self.trng_name, **kwargs)

    @property
    def uses_rng_aware_scheduler(self) -> bool:
        """Whether the design separates RNG requests into their own queue."""
        return self.design in (DESIGN_GREEDY_IDLE, DESIGN_DRSTRANGE)

    @property
    def uses_buffer(self) -> bool:
        """Whether the design has a random number buffer."""
        return self.design in (DESIGN_GREEDY_IDLE, DESIGN_DRSTRANGE) and self.drstrange.has_buffer

    def alone_run_config(self) -> "SimulationConfig":
        """Configuration of the single-core baseline used for "alone" runs.

        Per-application slowdowns are always measured against the
        application running alone on the RNG-oblivious baseline system
        with the same TRNG mechanism (Section 7).
        """
        return replace(
            self,
            design=DESIGN_RNG_OBLIVIOUS,
            scheduler="fr-fcfs+cap",
            priority_mode=PRIORITY_EQUAL,
        )

    def cache_key(self) -> tuple:
        """Hashable key of the parameters that affect an alone run."""
        return (
            self.trng_name,
            self.trng_throughput_mbps,
            self.scheduler,
            self.scheduler_cap,
            self.timing.name,
            self.organization.channels,
            self.organization.banks_per_rank,
            self.core.issue_width,
            self.core.window_size,
            self.core.clock_ratio,
            self.controller.backend_latency,
            self.controller.rng_mode_switch_penalty,
        )


def baseline_config(**overrides) -> SimulationConfig:
    """The RNG-oblivious baseline system configuration."""
    return SimulationConfig(design=DESIGN_RNG_OBLIVIOUS, **overrides)


def greedy_config(**overrides) -> SimulationConfig:
    """The Greedy Idle design configuration."""
    return SimulationConfig(design=DESIGN_GREEDY_IDLE, **overrides)


def drstrange_config(**overrides) -> SimulationConfig:
    """The full DR-STRaNGe design configuration (paper defaults)."""
    return SimulationConfig(design=DESIGN_DRSTRANGE, **overrides)
