"""System assembly, simulation loop and the experiment runner."""

from .config import (
    DESIGN_DRSTRANGE,
    DESIGN_GREEDY_IDLE,
    DESIGN_RNG_OBLIVIOUS,
    DESIGNS,
    ENGINE_EVENT,
    ENGINE_TICK,
    ENGINES,
    PRIORITY_EQUAL,
    PRIORITY_MODES,
    PRIORITY_NON_RNG_HIGH,
    PRIORITY_RNG_HIGH,
    SimulationConfig,
    baseline_config,
    drstrange_config,
    greedy_config,
)
from .engine import EventEngine, TickEngine, make_engine
from .results import ChannelResult, CoreResult, SimulationResult
from .runner import (
    GLOBAL_ALONE_CACHE,
    AloneRunCache,
    SlotEvaluation,
    WorkloadEvaluation,
    compare_designs,
    run_single_application,
    run_workload,
)
from .system import System, simulate

__all__ = [
    "AloneRunCache",
    "ChannelResult",
    "CoreResult",
    "DESIGNS",
    "DESIGN_DRSTRANGE",
    "DESIGN_GREEDY_IDLE",
    "DESIGN_RNG_OBLIVIOUS",
    "ENGINES",
    "ENGINE_EVENT",
    "ENGINE_TICK",
    "EventEngine",
    "GLOBAL_ALONE_CACHE",
    "TickEngine",
    "make_engine",
    "PRIORITY_EQUAL",
    "PRIORITY_MODES",
    "PRIORITY_NON_RNG_HIGH",
    "PRIORITY_RNG_HIGH",
    "SimulationConfig",
    "SimulationResult",
    "SlotEvaluation",
    "System",
    "WorkloadEvaluation",
    "baseline_config",
    "compare_designs",
    "drstrange_config",
    "greedy_config",
    "run_single_application",
    "run_workload",
    "simulate",
]
