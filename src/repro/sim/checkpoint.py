"""Deterministic checkpoint/restore of a mid-run :class:`~repro.sim.system.System`.

Both simulation engines can pause at an exact cycle
(:meth:`System.advance(stop_at=...) <repro.sim.system.System.advance>`);
at a pause every deferred quiet segment is materialised, so the paused
kernel state — trace-replay counters, outstanding-slot FIFOs, request
arenas, queue slots, open-row mirrors, bank/channel timing state, TRNG
buffers, predictor/scheduler/BLISS state, deferred-skip bookkeeping — is
bit-identical to an uninterrupted run's state at that cycle.  This
module serialises that state so ``restore(snapshot(sys))`` resumes and
finishes bit-identical to never having stopped, on either engine.

Format (all stdlib):

* an outer container — magic, a format version byte, a SHA-256 integrity
  hash, then a zlib-compressed pickle of the container dict;
* the container holds metadata (cycle, engine, config as a plain dict,
  trace fingerprints, the warmup *prefix key*), the traces in their text
  wire form, the module-global request-id counter position, and the
  **kernel**: a pickle of the whole ``System`` object graph in which
  every :class:`~repro.cpu.trace.Trace`, its compiled
  :class:`~repro.cpu.trace.TraceColumns` and the four column arrays are
  externalised by reference (``persistent_id``), so trace content is
  stored once and restored cores share the restored traces' arrays
  exactly as freshly built ones do;
* the **content digest** is the SHA-256 of the kernel bytes.  Pickling
  is structure-driven, so ``snapshot(restore(snapshot(sys)))`` carries
  the same digest — the round-trip property the checkpoint tests pin.

The request-id counter (:mod:`repro.controller.request`) is process
global; BLISS tie-breaks compare ids, but only their *relative* order
within one system matters.  Restoring advances the global counter to at
least the saved position, so every post-resume id exceeds every
in-snapshot id — the same ordering an uninterrupted run produces.

File-level loading mirrors :meth:`ResultCache.get
<repro.orchestration.cache.ResultCache.get>` semantics: corrupt or
truncated files are deleted and the caller resimulates; a version/schema
mismatch or an unreadable file is a non-destructive miss.

The warmup *prefix key* content-addresses checkpoints by
(config-prefix, traces, –): the configuration fingerprint minus
``engine`` (the engines are bit-identical) and minus ``max_cycles`` (the
limit only matters once reached — state at cycle ``C`` is the same under
any limit ``>= C``), so sweep points sharing a warmup share checkpoints.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import itertools
import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..controller import request as request_module
from ..cpu.trace import Trace
from .config import SimulationConfig
from .system import System

#: Bump whenever the kernel's pickled shape changes incompatibly; stale
#: snapshots are rejected (and silently missed by :func:`load`).
CHECKPOINT_VERSION = 1

_MAGIC = b"REPRO-CKPT"
_HEADER = struct.Struct(">B")
_HASH_BYTES = 32
_PICKLE_PROTOCOL = 4  # fixed, so digests don't depend on interpreter defaults


class CheckpointError(Exception):
    """Base class for checkpoint failures."""


class CheckpointCorruptError(CheckpointError):
    """The data is damaged (bad magic, truncation, integrity-hash mismatch)."""


class CheckpointVersionError(CheckpointError):
    """The snapshot was written by an incompatible format version."""


class CheckpointMismatchError(CheckpointError):
    """The snapshot does not belong to the given traces/configuration."""


# ------------------------------------------------------------------ keys


def prefix_key(traces: Sequence[Trace], config: SimulationConfig) -> str:
    """Content-addressed key of a warmup prefix (config-prefix + traces).

    Excludes ``engine`` and ``max_cycles`` from the configuration (see
    module docstring), so configurations differing only in those share
    warmup checkpoints.
    """
    # Imported lazily: orchestration packages import the runner at
    # module scope, which would cycle back into this module.
    from ..orchestration.keys import (
        SCHEMA_VERSION,
        canonical_json,
        config_fingerprint,
        trace_fingerprint,
    )

    fields = config_fingerprint(config)
    fields.pop("max_cycles", None)
    payload = {
        "checkpoint": CHECKPOINT_VERSION,
        "schema": SCHEMA_VERSION,
        "config": fields,
        "traces": [trace_fingerprint(trace) for trace in traces],
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def _trace_fingerprints(traces: Sequence[Trace]) -> List[Dict]:
    from ..orchestration.keys import trace_fingerprint

    return [trace_fingerprint(trace) for trace in traces]


# ------------------------------------------------------------------ kernel pickling


class _KernelPickler(pickle._Pickler):
    """Pickles the ``System`` graph with traces externalised by reference.

    Built on the pure-Python pickler for its ``memoize`` hook: strings
    are deliberately *not* memoised.  Whether two equal strings in the
    graph are one object or two depends on interpreter interning (e.g. a
    config value equal to a method name), and reduce-reconstructed
    objects synthesise fresh interned strings on restore — so memo
    references to strings would make the bytes depend on object identity
    history, breaking the snapshot→restore→snapshot digest equality this
    module guarantees.  Writing every string inline keeps the bytes a
    pure function of structure.  (Mutable objects keep full memo
    sharing; their identity graph is recorded in the stream and restored
    exactly, so they re-pickle deterministically.)
    """

    def __init__(self, file, external: Dict[int, Tuple]) -> None:
        super().__init__(file, protocol=_PICKLE_PROTOCOL)
        self._external = external

    def persistent_id(self, obj):  # noqa: D102 - pickle hook
        return self._external.get(id(obj))

    def memoize(self, obj):  # noqa: D102 - pickle hook
        if type(obj) is str:
            return
        super().memoize(obj)


class _KernelUnpickler(pickle.Unpickler):
    """Resolves externalised trace references against fresh traces."""

    def __init__(self, file, traces: Sequence[Trace]) -> None:
        super().__init__(file)
        self._traces = list(traces)
        self._columns = [trace.columns() for trace in self._traces]

    def persistent_load(self, pid):  # noqa: D102 - pickle hook
        kind = pid[0]
        if kind == "trace":
            return self._traces[pid[1]]
        if kind == "cols":
            return self._columns[pid[1]]
        if kind == "col":
            cols = self._columns[pid[1]]
            return (
                cols.bubbles,
                cols.read_addresses,
                cols.write_addresses,
                cols.rng_bits,
            )[pid[2]]
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def _external_index(traces: Sequence[Trace]) -> Dict[int, Tuple]:
    external: Dict[int, Tuple] = {}
    for index, trace in enumerate(traces):
        cols = trace.columns()
        external[id(trace)] = ("trace", index)
        external[id(cols)] = ("cols", index)
        external[id(cols.bubbles)] = ("col", index, 0)
        external[id(cols.read_addresses)] = ("col", index, 1)
        external[id(cols.write_addresses)] = ("col", index, 2)
        external[id(cols.rng_bits)] = ("col", index, 3)
    return external


def _dump_kernel(system: System) -> bytes:
    buffer = io.BytesIO()
    _KernelPickler(buffer, _external_index(system.traces)).dump(system)
    return buffer.getvalue()


def _load_kernel(data: bytes, traces: Sequence[Trace]) -> System:
    return _KernelUnpickler(io.BytesIO(data), traces).load()


# ------------------------------------------------------------------ request-id counter


def _request_counter_value() -> int:
    # itertools.count reduces to (count, (next_value,)).
    return request_module._request_ids.__reduce__()[1][0]


def _advance_request_counter(value: int) -> None:
    """Ensure post-resume request ids exceed every id in the snapshot."""
    if value > _request_counter_value():
        request_module._request_ids = itertools.count(value)


# ------------------------------------------------------------------ snapshot / restore


def snapshot(system: System) -> bytes:
    """Serialise ``system`` (paused or fresh) into checkpoint bytes."""
    kernel = _dump_kernel(system)
    container = {
        "format": CHECKPOINT_VERSION,
        "cycle": system.cycle,
        "engine": system.config.engine,
        "design": system.config.design,
        "digest": hashlib.sha256(kernel).hexdigest(),
        "prefix": prefix_key(system.traces, system.config),
        "config": dataclasses.asdict(system.config),
        "trace_fingerprints": _trace_fingerprints(system.traces),
        "traces": [
            {"name": trace.name, "metadata": dict(trace.metadata), "text": trace.format()}
            for trace in system.traces
        ],
        "request_counter": _request_counter_value(),
        "kernel": kernel,
    }
    payload = zlib.compress(pickle.dumps(container, protocol=_PICKLE_PROTOCOL), 6)
    return (
        _MAGIC
        + _HEADER.pack(CHECKPOINT_VERSION)
        + hashlib.sha256(payload).digest()
        + payload
    )


def _read_container(data: bytes) -> Dict:
    head = len(_MAGIC) + _HEADER.size
    if len(data) < head + _HASH_BYTES:
        raise CheckpointCorruptError("checkpoint truncated")
    if data[: len(_MAGIC)] != _MAGIC:
        raise CheckpointCorruptError("not a checkpoint (bad magic)")
    (version,) = _HEADER.unpack_from(data, len(_MAGIC))
    if version != CHECKPOINT_VERSION:
        raise CheckpointVersionError(
            f"checkpoint format v{version} != supported v{CHECKPOINT_VERSION}"
        )
    expected = data[head : head + _HASH_BYTES]
    payload = data[head + _HASH_BYTES :]
    if hashlib.sha256(payload).digest() != expected:
        raise CheckpointCorruptError("checkpoint integrity hash mismatch")
    try:
        container = pickle.loads(zlib.decompress(payload))
    except (pickle.UnpicklingError, zlib.error, EOFError, ValueError, TypeError) as exc:
        raise CheckpointCorruptError(f"checkpoint payload undecodable: {exc}") from exc
    if not isinstance(container, dict):
        raise CheckpointCorruptError("checkpoint payload is not a container")
    if container.get("format") != CHECKPOINT_VERSION:
        raise CheckpointVersionError(
            f"checkpoint schema {container.get('format')!r} != v{CHECKPOINT_VERSION}"
        )
    return container


def describe(data: bytes) -> Dict:
    """The container's metadata (everything except the kernel bytes)."""
    container = _read_container(data)
    meta = {key: value for key, value in container.items() if key not in ("kernel", "traces")}
    meta["traces"] = [trace["name"] for trace in container.get("traces", [])]
    meta["kernel_bytes"] = len(container.get("kernel", b""))
    return meta


def content_digest(data: bytes) -> str:
    """The snapshot's content digest (SHA-256 of the kernel bytes)."""
    return _read_container(data)["digest"]


def restore(
    data: bytes,
    traces: Optional[Sequence[Trace]] = None,
    config: Optional[SimulationConfig] = None,
) -> System:
    """Rebuild the paused :class:`System` from checkpoint bytes.

    ``traces`` reuses the caller's trace objects (validated against the
    snapshot's fingerprints) instead of re-parsing the stored wire form.
    ``config`` swaps in the caller's configuration — it must match the
    snapshot's warmup prefix, i.e. differ at most in ``engine`` and
    ``max_cycles`` — so a warmup checkpoint written under one sweep
    point resumes under another.
    """
    container = _read_container(data)
    if traces is None:
        restored = [
            Trace.parse(spec["text"], name=spec["name"], metadata=spec["metadata"])
            for spec in container["traces"]
        ]
    else:
        restored = list(traces)
        if _trace_fingerprints(restored) != container["trace_fingerprints"]:
            raise CheckpointMismatchError("supplied traces do not match the snapshot")
    try:
        system = _load_kernel(container["kernel"], restored)
    except (pickle.UnpicklingError, EOFError, IndexError, AttributeError) as exc:
        raise CheckpointCorruptError(f"checkpoint kernel undecodable: {exc}") from exc
    if not isinstance(system, System):
        raise CheckpointCorruptError("checkpoint kernel is not a System")
    _advance_request_counter(container["request_counter"])
    if config is not None:
        if prefix_key(restored, config) != container["prefix"]:
            raise CheckpointMismatchError(
                "configuration does not share the snapshot's warmup prefix"
            )
        if system.cycle > config.max_cycles:
            raise CheckpointMismatchError(
                f"snapshot cycle {system.cycle} exceeds max_cycles {config.max_cycles}"
            )
        system.config = config
    telemetry.counter("checkpoint.restores")
    telemetry.emit(
        "checkpoint.restored",
        cycle=system.cycle,
        digest=container["digest"],
        engine=system.config.engine,
    )
    return system


# ------------------------------------------------------------------ files


def save(path, system: System, data: Optional[bytes] = None) -> bytes:
    """Atomically write a checkpoint of ``system`` to ``path``.

    Returns the written bytes (``data`` may pass in a snapshot already
    taken, avoiding a second serialisation).
    """
    if data is None:
        data = snapshot(system)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
    os.replace(tmp, path)
    telemetry.counter("checkpoint.saves")
    telemetry.emit(
        "checkpoint.saved", path=str(path), cycle=system.cycle, bytes=len(data)
    )
    return data


def load(
    path,
    traces: Optional[Sequence[Trace]] = None,
    config: Optional[SimulationConfig] = None,
) -> Optional[System]:
    """Load a checkpoint file; ``None`` means resimulate.

    Mirrors :meth:`ResultCache.get <repro.orchestration.cache.ResultCache.get>`:
    a corrupt or truncated file is deleted so the slot resimulates
    cleanly; version/schema mismatches and unreadable files miss without
    deleting (they may belong to another build of the code).
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError:
        return None
    try:
        return restore(data, traces=traces, config=config)
    except CheckpointCorruptError:
        try:
            path.unlink()
        except OSError:
            pass
        telemetry.counter("checkpoint.corrupt")
        return None
    except CheckpointError:
        return None
