"""Buffer-filling policies (Section 5.1).

A *fill policy* decides when a channel controller should generate random
numbers for the random number buffer:

* :class:`DRStrangeFillPolicy` — DR-STRaNGe's policy: during idle periods
  the DRAM idleness predictor decides whether the period is long enough
  to generate a batch; with the low-utilisation extension, periods where
  the read queue holds fewer than ``low_utilization_threshold`` requests
  are also used.  Without a predictor it degenerates to the *simple
  buffering mechanism* of Section 5.1.1 (fill on every idle cycle).
* :class:`GreedyIdleFillPolicy` — the Greedy Idle comparison point of
  Section 7: whenever an idle period reaches the period threshold, eight
  random bits appear in the buffer at **zero cost** (no RNG mode, no
  interference).  It is an idealised upper bound for idle-period-only
  buffering.
* :class:`NoFillPolicy` — never fills (used for the buffer-size "No
  Buffer" ablation point and for scheduler-only studies).
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from .idleness_predictor import IdlenessPredictor
from .rng_buffer import RandomNumberBuffer

if TYPE_CHECKING:  # pragma: no cover
    from ..controller.memory_controller import ChannelController


class NoFillPolicy:
    """A fill policy that never generates random numbers ahead of demand."""

    name = "none"

    def on_idle_cycle(self, controller: "ChannelController", now: int) -> None:
        return None

    def should_start_fill(self, controller: "ChannelController", now: int) -> bool:
        return False

    def batch_generated(self, controller: "ChannelController", bits: int, now: int) -> None:
        return None

    def should_continue_fill(self, controller: "ChannelController", now: int) -> bool:
        return False

    # -- cycle-skipping support (see :mod:`repro.sim.engine`) ----------------------

    def idle_event_cycle(self, controller: "ChannelController", now: int) -> Optional[int]:
        """Earliest idle cycle at which this policy changes state (``None`` = never).

        Called by the event engine when ``controller`` is idle at ``now``
        and will stay idle; returning ``now`` forces a normal tick.
        """
        return None

    def begin_idle_skip(self, controller: "ChannelController"):
        """Snapshot the policy state a deferred idle segment must replay under.

        Called when the controller *opens* a deferred idle segment; the
        returned token is handed back to :meth:`skip_idle_cycles` when the
        segment closes.  The segment's cycles all happened under the state
        current at open time — a shared-buffer change after the open
        forces the segment closed at the engine's next probe, so close-time
        state may already differ from the state every covered tick saw.
        """
        return None

    def skip_idle_cycles(self, controller: "ChannelController", cycles: int, gate=None) -> None:
        """Replicate the effects of ``cycles`` quiet idle ticks in bulk.

        ``gate`` is the token :meth:`begin_idle_skip` returned when the
        segment opened.
        """
        return None

    def serve_window_hazard(self, controller: "ChannelController", now: int) -> bool:
        """Whether this policy could start a fill while ``controller`` serves.

        Consulted by the batched-serve pre-flight for a *busy* controller
        (pending regular work throughout the window).  Only a policy whose
        ``should_start_fill`` can return ``True`` outside idle cycles — the
        low-utilisation extension — ever reports a hazard; this policy never
        fills, so serving windows are always safe.
        """
        return False


class DRStrangeFillPolicy:
    """DR-STRaNGe's predictor-guided buffer-filling policy."""

    name = "dr-strange"

    def __init__(
        self,
        buffer: RandomNumberBuffer,
        predictors: Optional[Dict[int, IdlenessPredictor]] = None,
        low_utilization_threshold: int = 4,
    ) -> None:
        if low_utilization_threshold < 0:
            raise ValueError("low_utilization_threshold must be non-negative")
        self.buffer = buffer
        self.predictors = predictors or {}
        self.low_utilization_threshold = low_utilization_threshold
        # Statistics.
        self.idle_fill_starts = 0
        self.low_utilization_fill_starts = 0

    def predictor_for(self, controller: "ChannelController") -> Optional[IdlenessPredictor]:
        return self.predictors.get(controller.channel_id)

    # -- hooks used by the channel controller --------------------------------------

    def on_idle_cycle(self, controller: "ChannelController", now: int) -> None:
        return None

    def should_start_fill(self, controller: "ChannelController", now: int) -> bool:
        if self.buffer.capacity_bits == 0 or self.buffer.is_full:
            return False

        predictor = self.predictor_for(controller)

        if controller.is_idle(now):
            if predictor is None:
                # Simple buffering mechanism: use every idle cycle.
                self.idle_fill_starts += 1
                return True
            if predictor.predict_and_record(controller.last_accessed_address):
                self.idle_fill_starts += 1
                return True
            return False

        # Low-utilisation extension: a channel whose read queue holds fewer
        # than the threshold is also used, guided by the same predictor.
        if (
            predictor is not None
            and self.low_utilization_threshold > 0
            and 0 < controller.read_queue_occupancy() < self.low_utilization_threshold
            and controller.channel.is_bus_free(now)
        ):
            if predictor.predict(controller.last_accessed_address):
                self.low_utilization_fill_starts += 1
                return True
        return False

    def batch_generated(self, controller: "ChannelController", bits: int, now: int) -> None:
        self.buffer.add_bits(bits)

    def should_continue_fill(self, controller: "ChannelController", now: int) -> bool:
        if self.buffer.is_full:
            return False
        # Generation stops as soon as a new regular request arrives at the
        # channel (Section 5.1); RNG demand requests waiting in the RNG
        # queue also terminate filling so they can be served.
        if controller.read_queue or controller.write_queue:
            return False
        if controller.rng_queue is not None and len(controller.rng_queue) > 0:
            return False
        return True

    # -- cycle-skipping support (see :mod:`repro.sim.engine`) ----------------------

    def idle_event_cycle(self, controller: "ChannelController", now: int) -> Optional[int]:
        """``now`` when a fill would start this idle cycle, else ``None``.

        While the controller stays idle the predictor's inputs (the last
        accessed address and its table) cannot change, so a negative
        prediction stays negative for the whole idle stretch.  Without a
        predictor the simple buffering mechanism fills on every idle
        cycle, which makes every idle cycle an event.
        """
        if self.buffer.capacity_bits == 0 or self.buffer.is_full:
            return None
        predictor = self.predictor_for(controller)
        if predictor is None:
            return now
        if predictor.predict(controller.last_accessed_address):
            return now
        return None

    def begin_idle_skip(self, controller: "ChannelController"):
        """Whether the buffer could accept bits when the segment opened.

        The full/empty state gates every predictor touch in
        :meth:`should_start_fill`; it must be sampled when the deferred
        idle segment *opens*, because a demand take elsewhere can drain
        the buffer at the very cycle the segment closes — the reference
        ticks the segment replaces all saw the open-time state (any
        earlier buffer change invalidates the controller's event bound
        and closes the segment at the engine's next probe).
        """
        return self.buffer.capacity_bits != 0 and not self.buffer.is_full

    def skip_idle_cycles(self, controller: "ChannelController", cycles: int, gate=None) -> None:
        # ``should_start_fill`` would have called ``predict_and_record``
        # once per skipped idle cycle; only the first call of an idle
        # period records a pending prediction and ``predict`` itself is
        # pure, so a single call replicates all of them — under the
        # buffer state of the segment's *open* (``gate``), not of its
        # close.
        if not gate:
            return
        predictor = self.predictor_for(controller)
        if predictor is not None:
            predictor.predict_and_record(controller.last_accessed_address)

    def serve_window_hazard(self, controller: "ChannelController", now: int) -> bool:
        """Whether the low-utilisation extension could fire during a serve window.

        Mirrors :meth:`should_start_fill`'s non-idle branch at ``now``.
        Once the controller issues a request the data bus stays ahead of
        every later serve point (the issue lookahead keeps serve points
        strictly before ``bus_free_at``), so with a positive lookahead the
        only cycle of a serve window at which the bus can be observed free
        is the first one — which is exactly the cycle this is evaluated
        at.  The reference tick at ``now`` would make the same single
        ``predictor.predict`` call (``predict`` is idempotent for a fixed
        table and address), so evaluating the hazard here is bit-identical
        to the per-cycle check it replaces.  A zero lookahead makes every
        serve point bus-free; that configuration conservatively reports a
        standing hazard instead of reasoning about occupancy trajectories.
        """
        if self.buffer.capacity_bits == 0 or self.buffer.is_full:
            return False
        if self.low_utilization_threshold <= 0:
            return False
        predictor = self.predictor_for(controller)
        if predictor is None:
            return False
        if controller.config.issue_lookahead <= 0:
            return True
        occupancy = controller.read_queue_occupancy()
        if not 0 < occupancy < self.low_utilization_threshold:
            return False
        if not controller.channel.is_bus_free(now):
            return False
        return predictor.predict(controller.last_accessed_address)


class GreedyIdleFillPolicy:
    """The idealised Greedy Idle buffer-filling design (Section 7).

    Whenever a channel has been idle for ``period_threshold`` consecutive
    cycles, a batch of random bits is added to the buffer at no cost: the
    channel is never put into RNG mode, so filling causes no interference
    at all.  This is the zero-overhead comparison point the paper uses to
    upper-bound what idle-period-only buffering could achieve.
    """

    name = "greedy-idle"

    def __init__(
        self,
        buffer: RandomNumberBuffer,
        period_threshold: int = 40,
        bits_per_batch: int = 8,
    ) -> None:
        if period_threshold <= 0:
            raise ValueError("period_threshold must be positive")
        if bits_per_batch <= 0:
            raise ValueError("bits_per_batch must be positive")
        self.buffer = buffer
        self.period_threshold = period_threshold
        self.bits_per_batch = bits_per_batch
        self.free_batches = 0

    def on_idle_cycle(self, controller: "ChannelController", now: int) -> None:
        if self.buffer.is_full:
            return
        # One free batch per idle period, granted the moment the period
        # reaches the threshold ("If an idle period reaches the Period
        # Threshold, we assume we fill the buffer with 8 random bits
        # without any overhead", Section 7).
        if controller.idle_streak == self.period_threshold:
            self.buffer.add_bits(self.bits_per_batch)
            self.free_batches += 1

    def should_start_fill(self, controller: "ChannelController", now: int) -> bool:
        return False

    def batch_generated(self, controller: "ChannelController", bits: int, now: int) -> None:
        self.buffer.add_bits(bits)

    def should_continue_fill(self, controller: "ChannelController", now: int) -> bool:
        return False

    # -- cycle-skipping support (see :mod:`repro.sim.engine`) ----------------------

    def idle_event_cycle(self, controller: "ChannelController", now: int) -> Optional[int]:
        """The idle cycle at which the streak reaches the period threshold.

        The free batch is granted the moment ``idle_streak`` *equals* the
        threshold; the tick at cycle ``c`` observes a streak of
        ``idle_streak + (c - now) + 1``.  Once the streak has passed the
        threshold the rest of the idle period has no events.  Buffer
        fullness is deliberately not consulted: it can change without any
        controller-visible event (another channel's fill, a demand take),
        so the threshold crossing is reported as an event either way and
        the regular tick there decides.
        """
        remaining = self.period_threshold - controller.idle_streak - 1
        if remaining < 0:
            return None
        return now + remaining

    def begin_idle_skip(self, controller: "ChannelController"):
        return None

    def skip_idle_cycles(self, controller: "ChannelController", cycles: int, gate=None) -> None:
        return None

    def serve_window_hazard(self, controller: "ChannelController", now: int) -> bool:
        """Greedy Idle only acts on idle cycles; serving windows are safe."""
        return False
