"""Buffer-filling policies (Section 5.1).

A *fill policy* decides when a channel controller should generate random
numbers for the random number buffer:

* :class:`DRStrangeFillPolicy` — DR-STRaNGe's policy: during idle periods
  the DRAM idleness predictor decides whether the period is long enough
  to generate a batch; with the low-utilisation extension, periods where
  the read queue holds fewer than ``low_utilization_threshold`` requests
  are also used.  Without a predictor it degenerates to the *simple
  buffering mechanism* of Section 5.1.1 (fill on every idle cycle).
* :class:`GreedyIdleFillPolicy` — the Greedy Idle comparison point of
  Section 7: whenever an idle period reaches the period threshold, eight
  random bits appear in the buffer at **zero cost** (no RNG mode, no
  interference).  It is an idealised upper bound for idle-period-only
  buffering.
* :class:`NoFillPolicy` — never fills (used for the buffer-size "No
  Buffer" ablation point and for scheduler-only studies).
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from .idleness_predictor import IdlenessPredictor
from .rng_buffer import RandomNumberBuffer

if TYPE_CHECKING:  # pragma: no cover
    from ..controller.memory_controller import ChannelController


class NoFillPolicy:
    """A fill policy that never generates random numbers ahead of demand."""

    name = "none"

    def on_idle_cycle(self, controller: "ChannelController", now: int) -> None:
        return None

    def should_start_fill(self, controller: "ChannelController", now: int) -> bool:
        return False

    def batch_generated(self, controller: "ChannelController", bits: int, now: int) -> None:
        return None

    def should_continue_fill(self, controller: "ChannelController", now: int) -> bool:
        return False


class DRStrangeFillPolicy:
    """DR-STRaNGe's predictor-guided buffer-filling policy."""

    name = "dr-strange"

    def __init__(
        self,
        buffer: RandomNumberBuffer,
        predictors: Optional[Dict[int, IdlenessPredictor]] = None,
        low_utilization_threshold: int = 4,
    ) -> None:
        if low_utilization_threshold < 0:
            raise ValueError("low_utilization_threshold must be non-negative")
        self.buffer = buffer
        self.predictors = predictors or {}
        self.low_utilization_threshold = low_utilization_threshold
        # Statistics.
        self.idle_fill_starts = 0
        self.low_utilization_fill_starts = 0

    def predictor_for(self, controller: "ChannelController") -> Optional[IdlenessPredictor]:
        return self.predictors.get(controller.channel_id)

    # -- hooks used by the channel controller --------------------------------------

    def on_idle_cycle(self, controller: "ChannelController", now: int) -> None:
        return None

    def should_start_fill(self, controller: "ChannelController", now: int) -> bool:
        if self.buffer.capacity_bits == 0 or self.buffer.is_full:
            return False

        predictor = self.predictor_for(controller)

        if controller.is_idle(now):
            if predictor is None:
                # Simple buffering mechanism: use every idle cycle.
                self.idle_fill_starts += 1
                return True
            if predictor.predict_and_record(controller.last_accessed_address):
                self.idle_fill_starts += 1
                return True
            return False

        # Low-utilisation extension: a channel whose read queue holds fewer
        # than the threshold is also used, guided by the same predictor.
        if (
            predictor is not None
            and self.low_utilization_threshold > 0
            and 0 < controller.read_queue_occupancy() < self.low_utilization_threshold
            and controller.channel.is_bus_free(now)
        ):
            if predictor.predict(controller.last_accessed_address):
                self.low_utilization_fill_starts += 1
                return True
        return False

    def batch_generated(self, controller: "ChannelController", bits: int, now: int) -> None:
        self.buffer.add_bits(bits)

    def should_continue_fill(self, controller: "ChannelController", now: int) -> bool:
        if self.buffer.is_full:
            return False
        # Generation stops as soon as a new regular request arrives at the
        # channel (Section 5.1); RNG demand requests waiting in the RNG
        # queue also terminate filling so they can be served.
        if controller.read_queue or controller.write_queue:
            return False
        if controller.rng_queue is not None and len(controller.rng_queue) > 0:
            return False
        return True


class GreedyIdleFillPolicy:
    """The idealised Greedy Idle buffer-filling design (Section 7).

    Whenever a channel has been idle for ``period_threshold`` consecutive
    cycles, a batch of random bits is added to the buffer at no cost: the
    channel is never put into RNG mode, so filling causes no interference
    at all.  This is the zero-overhead comparison point the paper uses to
    upper-bound what idle-period-only buffering could achieve.
    """

    name = "greedy-idle"

    def __init__(
        self,
        buffer: RandomNumberBuffer,
        period_threshold: int = 40,
        bits_per_batch: int = 8,
    ) -> None:
        if period_threshold <= 0:
            raise ValueError("period_threshold must be positive")
        if bits_per_batch <= 0:
            raise ValueError("bits_per_batch must be positive")
        self.buffer = buffer
        self.period_threshold = period_threshold
        self.bits_per_batch = bits_per_batch
        self.free_batches = 0

    def on_idle_cycle(self, controller: "ChannelController", now: int) -> None:
        if self.buffer.is_full:
            return
        # One free batch per idle period, granted the moment the period
        # reaches the threshold ("If an idle period reaches the Period
        # Threshold, we assume we fill the buffer with 8 random bits
        # without any overhead", Section 7).
        if controller.idle_streak == self.period_threshold:
            self.buffer.add_bits(self.bits_per_batch)
            self.free_batches += 1

    def should_start_fill(self, controller: "ChannelController", now: int) -> bool:
        return False

    def batch_generated(self, controller: "ChannelController", bits: int, now: int) -> None:
        self.buffer.add_bits(bits)

    def should_continue_fill(self, controller: "ChannelController", now: int) -> bool:
        return False
