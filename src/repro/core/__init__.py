"""DR-STRaNGe: the paper's contribution (buffer, predictors, RNG-aware scheduler)."""

from .config import DRStrangeConfig
from .fill_policies import DRStrangeFillPolicy, GreedyIdleFillPolicy, NoFillPolicy
from .idleness_predictor import IdlenessPredictor, PredictorStats, SimpleIdlenessPredictor
from .interface import TRNGInterface
from .rl_predictor import QLearningIdlenessPredictor
from .rng_buffer import BufferStats, RandomNumberBuffer
from .rng_scheduler import ApplicationRegistry, RNGAwareQueuePolicy, RNGSchedulerStats
from .rng_subsystem import RNGSubsystem, RNGSubsystemStats

__all__ = [
    "ApplicationRegistry",
    "BufferStats",
    "DRStrangeConfig",
    "DRStrangeFillPolicy",
    "GreedyIdleFillPolicy",
    "IdlenessPredictor",
    "NoFillPolicy",
    "PredictorStats",
    "QLearningIdlenessPredictor",
    "RNGAwareQueuePolicy",
    "RNGSchedulerStats",
    "RNGSubsystem",
    "RNGSubsystemStats",
    "RandomNumberBuffer",
    "SimpleIdlenessPredictor",
    "TRNGInterface",
]
