"""Reinforcement-learning DRAM idleness predictor (Section 5.1.2).

The prediction problem is cast as a contextual bandit solved with tabular
Q-learning: at the start of an idle period the agent observes a state and
chooses between two actions, *generate* (start filling the random number
buffer) and *wait*.  When the idle period ends its true length becomes
known and the agent receives a reward: positive for correct decisions
(generate in a long period, wait in a short one), negative for
mispredictions (false positives cause interference, false negatives waste
RNG opportunities).

Following the paper, the state is the last accessed address's least
significant bits XOR'ed with a history register of the last ``history_bits``
idle periods (1 = long, 0 = short), the learning rate defaults to 0.05,
and — because the next state depends on unknown future memory accesses —
the update omits the next-state term:
``Q(s, a) = (1 - alpha) * Q(s, a) + alpha * r``.
"""

from __future__ import annotations

import numpy as np

from .idleness_predictor import IdlenessPredictor


class QLearningIdlenessPredictor(IdlenessPredictor):
    """Tabular Q-learning idleness predictor."""

    name = "rl"

    ACTION_WAIT = 0
    ACTION_GENERATE = 1

    def __init__(
        self,
        period_threshold: int = 40,
        learning_rate: float = 0.05,
        history_bits: int = 10,
        block_size: int = 64,
        reward_true_positive: float = 1.0,
        reward_true_negative: float = 1.0,
        penalty_false_positive: float = -1.0,
        penalty_false_negative: float = -0.5,
        optimistic_initialization: float = 0.0,
    ) -> None:
        super().__init__(period_threshold)
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if history_bits <= 0 or history_bits > 20:
            raise ValueError("history_bits must be in [1, 20]")
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.learning_rate = learning_rate
        self.history_bits = history_bits
        self.block_size = block_size
        self.reward_true_positive = reward_true_positive
        self.reward_true_negative = reward_true_negative
        self.penalty_false_positive = penalty_false_positive
        self.penalty_false_negative = penalty_false_negative

        self.num_states = 1 << history_bits
        self.q_table = np.full((self.num_states, 2), optimistic_initialization, dtype=np.float64)
        # Bias the generate action slightly so the agent explores RNG
        # opportunities before it has seen rewards.
        self.q_table[:, self.ACTION_GENERATE] += 1e-6
        self.history = 0
        self._last_state: int | None = None
        self._last_action: int | None = None

    # -- state encoding -----------------------------------------------------------

    def _state(self, last_address: int) -> int:
        address_bits = (last_address // self.block_size) & (self.num_states - 1)
        return (address_bits ^ self.history) & (self.num_states - 1)

    # -- prediction ---------------------------------------------------------------

    def predict(self, last_address: int) -> bool:
        state = self._state(last_address)
        action = int(np.argmax(self.q_table[state]))
        self._last_state = state
        self._last_action = action
        return action == self.ACTION_GENERATE

    # -- training -----------------------------------------------------------------

    def _update(self, was_long: bool, last_address: int) -> None:
        state = self._last_state
        action = self._last_action
        if state is None or action is None:
            # The idle period ended without the agent being consulted
            # (e.g. the buffer was already full); only update the history.
            state = self._state(last_address)
            action = int(np.argmax(self.q_table[state]))
        reward = self._reward(action, was_long)
        alpha = self.learning_rate
        self.q_table[state, action] = (1 - alpha) * self.q_table[state, action] + alpha * reward

        self.history = ((self.history << 1) | (1 if was_long else 0)) & (self.num_states - 1)
        self._last_state = None
        self._last_action = None

    def _reward(self, action: int, was_long: bool) -> float:
        if action == self.ACTION_GENERATE:
            return self.reward_true_positive if was_long else self.penalty_false_positive
        return self.penalty_false_negative if was_long else self.reward_true_negative

    # -- cost model ---------------------------------------------------------------

    @property
    def storage_bits(self) -> int:
        """Storage cost: 4-byte Q-values for every (state, action) pair."""
        return self.num_states * 2 * 32
