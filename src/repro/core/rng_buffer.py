"""The random number buffer (Section 5.1).

A small buffer in the memory controller that stores random bits generated
ahead of demand, during idle or lowly utilised DRAM periods.  When the
buffer holds enough bits, an application's random number request is served
with low latency instead of paying the full DRAM TRNG latency.

The buffer tracks bit *counts* (the amount of pre-generated entropy); the
actual bit values come from the TRNG's entropy source when a number is
handed to an application (see :mod:`repro.core.interface`).  Served bits
are discarded, satisfying the security requirement that every random
number is unique and never handed to two requesters (Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BufferStats:
    """Counters of the random number buffer."""

    bits_added: int = 0
    bits_served: int = 0
    bits_dropped: int = 0
    serves: int = 0
    misses: int = 0
    fill_operations: int = 0

    @property
    def total_requests(self) -> int:
        return self.serves + self.misses

    @property
    def serve_rate(self) -> float:
        """Fraction of random number requests served from the buffer."""
        total = self.total_requests
        return self.serves / total if total else 0.0


class RandomNumberBuffer:
    """A bounded store of pre-generated random bits."""

    def __init__(self, entries: int = 16, bits_per_entry: int = 64) -> None:
        if entries < 0:
            raise ValueError("entries must be non-negative")
        if bits_per_entry <= 0:
            raise ValueError("bits_per_entry must be positive")
        self.entries = entries
        self.bits_per_entry = bits_per_entry
        self.capacity_bits = entries * bits_per_entry
        self._available_bits = 0
        self.stats = BufferStats()
        #: Bumped on every occupancy change.  The cycle-skipping engine's
        #: controller-side event-bound cache keys on it: the buffer is the
        #: one piece of state a quiet controller's fill decision depends
        #: on that other components mutate.
        self.version = 0

    # -- capacity -----------------------------------------------------------------

    @property
    def available_bits(self) -> int:
        """Random bits currently stored in the buffer."""
        return self._available_bits

    @property
    def free_bits(self) -> int:
        """Remaining capacity in bits."""
        return self.capacity_bits - self._available_bits

    @property
    def is_full(self) -> bool:
        return self._available_bits >= self.capacity_bits

    @property
    def is_empty(self) -> bool:
        return self._available_bits == 0

    @property
    def occupancy(self) -> float:
        """Fraction of the buffer currently filled."""
        if self.capacity_bits == 0:
            return 0.0
        return self._available_bits / self.capacity_bits

    def has(self, bits: int) -> bool:
        """Whether ``bits`` random bits are available."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return self._available_bits >= bits

    # -- filling ------------------------------------------------------------------

    def add_bits(self, bits: int) -> int:
        """Add up to ``bits`` generated bits; returns how many were stored.

        Bits beyond the capacity are dropped (the fill policies stop
        generating once the buffer is full, so drops only happen when a
        batch slightly overshoots the remaining space).
        """
        if bits < 0:
            raise ValueError("bits must be non-negative")
        stored = min(bits, self.free_bits)
        self._available_bits += stored
        self.version += 1
        self.stats.bits_added += stored
        self.stats.bits_dropped += bits - stored
        if stored:
            self.stats.fill_operations += 1
        return stored

    # -- serving ------------------------------------------------------------------

    def take(self, bits: int) -> bool:
        """Serve ``bits`` random bits from the buffer if available.

        Returns ``True`` on success (the bits are removed and must not be
        reused); ``False`` (and records a miss) if the buffer does not
        hold enough bits.
        """
        if bits <= 0:
            raise ValueError("bits must be positive")
        if self._available_bits >= bits:
            self._available_bits -= bits
            self.version += 1
            self.stats.bits_served += bits
            self.stats.serves += 1
            return True
        self.stats.misses += 1
        return False

    def drain(self) -> int:
        """Remove and return all stored bits (used when re-keying)."""
        bits = self._available_bits
        self._available_bits = 0
        self.version += 1
        return bits

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"RandomNumberBuffer({self._available_bits}/{self.capacity_bits} bits, "
            f"serve_rate={self.stats.serve_rate:.2f})"
        )
