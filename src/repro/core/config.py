"""Configuration of the DR-STRaNGe mechanism (Section 5 / Table 1)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DRStrangeConfig:
    """Design knobs of DR-STRaNGe.

    The defaults match the paper's Table 1 configuration: a 16-entry
    random number buffer, a 256-entry predictor table per channel with a
    period threshold of 40 cycles and a low-utilisation threshold of 4
    queued requests, and a 100-cycle starvation-prevention stall limit.
    """

    #: Random number buffer size in 64-bit entries (0 disables the buffer).
    buffer_entries: int = 16
    #: Width of one buffer entry in bits.
    bits_per_entry: int = 64
    #: Latency (bus cycles) of serving a random number from the buffer.
    buffer_serve_latency: int = 2
    #: Idleness predictor: ``"none"``, ``"simple"`` or ``"rl"``.
    predictor: str = "simple"
    #: Idle periods at least this long (cycles) are considered *long*.
    period_threshold: int = 40
    #: Read-queue occupancy below which a channel counts as lowly
    #: utilised (0 disables low-utilisation filling).
    low_utilization_threshold: int = 4
    #: Entries in the simple predictor's per-channel saturating counter table.
    predictor_table_entries: int = 256
    #: Learning rate of the Q-learning idleness predictor.
    rl_learning_rate: float = 0.05
    #: Bits of idle-period history mixed into the RL predictor's state.
    rl_history_bits: int = 10
    #: Starvation-prevention stall limit of the RNG-aware scheduler (cycles).
    stall_limit: int = 100

    def __post_init__(self) -> None:
        if self.buffer_entries < 0:
            raise ValueError("buffer_entries must be non-negative")
        if self.bits_per_entry <= 0:
            raise ValueError("bits_per_entry must be positive")
        if self.buffer_serve_latency < 0:
            raise ValueError("buffer_serve_latency must be non-negative")
        if self.predictor not in ("none", "simple", "rl"):
            raise ValueError("predictor must be 'none', 'simple' or 'rl'")
        if self.period_threshold <= 0:
            raise ValueError("period_threshold must be positive")
        if self.low_utilization_threshold < 0:
            raise ValueError("low_utilization_threshold must be non-negative")
        if self.predictor_table_entries <= 0:
            raise ValueError("predictor_table_entries must be positive")
        if not 0.0 < self.rl_learning_rate <= 1.0:
            raise ValueError("rl_learning_rate must be in (0, 1]")
        if self.rl_history_bits <= 0:
            raise ValueError("rl_history_bits must be positive")
        if self.stall_limit <= 0:
            raise ValueError("stall_limit must be positive")

    @property
    def buffer_capacity_bits(self) -> int:
        """Total capacity of the random number buffer in bits."""
        return self.buffer_entries * self.bits_per_entry

    @property
    def has_buffer(self) -> bool:
        return self.buffer_entries > 0
