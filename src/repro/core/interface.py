"""The application interface to DR-STRaNGe (Section 5.3).

The paper exposes the DRAM-based TRNG to applications through the
operating system's existing random number interface (Linux's
``getrandom()`` system call), backed by the random number buffer and the
RNG-aware scheduler.  This module provides the analogous library-level
API for users of this reproduction:

* :class:`TRNGInterface.getrandom` returns cryptographically-styled random
  bytes (the simulated entropy source post-processed so the bit stream
  passes the statistical tests in :mod:`repro.trng.quality`),
* :class:`TRNGInterface.random_int` / :class:`TRNGInterface.random_bits`
  return integers or raw bit arrays,
* each call records the latency an application running on the simulated
  system would observe: the buffer-serve latency when the random number
  buffer holds enough bits, the full demand-generation latency otherwise.

The interface enforces the security properties of Section 6: served bits
are removed from the buffer and never handed out twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..trng.base import DRAMTRNGModel
from .rng_buffer import RandomNumberBuffer


@dataclass
class InterfaceCall:
    """Record of one ``getrandom``-style call."""

    bits: int
    served_from_buffer: bool
    latency_cycles: int


@dataclass
class InterfaceStats:
    """Aggregate statistics of the application interface."""

    calls: int = 0
    bits_delivered: int = 0
    buffer_serves: int = 0
    latency_sum: int = 0
    history: List[InterfaceCall] = field(default_factory=list)

    @property
    def average_latency_cycles(self) -> float:
        return self.latency_sum / self.calls if self.calls else 0.0

    @property
    def buffer_serve_rate(self) -> float:
        return self.buffer_serves / self.calls if self.calls else 0.0


class TRNGInterface:
    """Library-level interface to a DRAM-based TRNG with buffering."""

    def __init__(
        self,
        trng: DRAMTRNGModel,
        buffer: Optional[RandomNumberBuffer] = None,
        buffer_serve_latency: int = 2,
        num_channels: int = 4,
        banks_per_channel: int = 8,
        keep_history: bool = False,
    ) -> None:
        if buffer_serve_latency < 0:
            raise ValueError("buffer_serve_latency must be non-negative")
        if num_channels <= 0 or banks_per_channel <= 0:
            raise ValueError("num_channels and banks_per_channel must be positive")
        self.trng = trng
        self.buffer = buffer if buffer is not None else RandomNumberBuffer(entries=16)
        self.buffer_serve_latency = buffer_serve_latency
        self.num_channels = num_channels
        self.banks_per_channel = banks_per_channel
        self.keep_history = keep_history
        self.stats = InterfaceStats()

    # -- buffer management ----------------------------------------------------------

    def prefill_buffer(self, bits: Optional[int] = None) -> int:
        """Fill the buffer (fully, or with ``bits`` bits) ahead of demand.

        In the full system simulation this happens opportunistically
        during idle DRAM periods; stand-alone users of the interface call
        this explicitly (e.g. at application start-up).
        """
        target = self.buffer.free_bits if bits is None else min(bits, self.buffer.free_bits)
        return self.buffer.add_bits(target)

    # -- random number access ---------------------------------------------------------

    def random_bits(self, count: int) -> np.ndarray:
        """Return ``count`` random bits as a numpy array of 0/1 values."""
        if count <= 0:
            raise ValueError("count must be positive")
        served_from_buffer = self.buffer.take(count)
        if served_from_buffer:
            latency = self.buffer_serve_latency
        else:
            latency = self.trng.demand_latency_cycles(
                count, self.num_channels, self.banks_per_channel
            )
        bits = self.trng.generate_bits(count)
        self._record(count, served_from_buffer, latency)
        return bits

    def random_int(self, bits: int = 64) -> int:
        """Return a random unsigned integer of ``bits`` bits."""
        bit_array = self.random_bits(bits)
        value = 0
        for bit in bit_array:
            value = (value << 1) | int(bit)
        return value

    def getrandom(self, num_bytes: int) -> bytes:
        """``getrandom()``-style call: return ``num_bytes`` random bytes."""
        if num_bytes <= 0:
            raise ValueError("num_bytes must be positive")
        bits = self.random_bits(num_bytes * 8)
        return np.packbits(bits).tobytes()

    def random_uniform(self) -> float:
        """Return a uniform float in [0, 1) built from 53 random bits."""
        return self.random_int(53) / float(1 << 53)

    # -- bookkeeping ------------------------------------------------------------------

    def _record(self, bits: int, served_from_buffer: bool, latency: int) -> None:
        stats = self.stats
        stats.calls += 1
        stats.bits_delivered += bits
        stats.latency_sum += latency
        if served_from_buffer:
            stats.buffer_serves += 1
        if self.keep_history:
            stats.history.append(InterfaceCall(bits, served_from_buffer, latency))
