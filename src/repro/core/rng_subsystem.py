"""Application-level RNG request handling.

The :class:`RNGSubsystem` sits between the cores and the per-channel
memory controllers.  When an application requests a random number it

1. marks the application as an RNG application (Section 5.2.1),
2. tries to serve the request from the random number buffer with a small
   fixed latency (Section 5.1), and otherwise
3. splits the request into one per-channel RNG request — the memory
   controller uses all channels in parallel to minimise RNG latency
   (Section 3) — enqueues them (into the dedicated RNG queues for
   RNG-aware designs, or into the regular read queues for the
   RNG-oblivious baseline), and completes the application request when
   every per-channel share has been generated.

The subsystem also owns the delayed-completion machinery for buffer
serves and retries enqueues that bounce off full queues.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..controller.memory_controller import ChannelController
from ..controller.request import Request, RequestType
from .rng_buffer import RandomNumberBuffer
from .rng_scheduler import ApplicationRegistry


@dataclass
class RNGSubsystemStats:
    """Counters of application-level RNG request handling."""

    requests: int = 0
    buffer_serves: int = 0
    demand_generations: int = 0
    bits_requested: int = 0
    latency_sum: int = 0

    @property
    def buffer_serve_rate(self) -> float:
        return self.buffer_serves / self.requests if self.requests else 0.0

    @property
    def average_latency(self) -> float:
        return self.latency_sum / self.requests if self.requests else 0.0


class _PendingGeneration:
    """Book-keeping for one in-flight demand generation."""

    __slots__ = ("core_id", "callback", "outstanding", "start_cycle")

    def __init__(self, core_id: int, callback: Callable[[int], None], outstanding: int, start_cycle: int):
        self.core_id = core_id
        self.callback = callback
        self.outstanding = outstanding
        self.start_cycle = start_cycle


class _BufferServeCompletion:
    """Deferred completion of a buffer-served RNG request.

    A class (not a closure) so the deferred-completion heap stays
    serialisable by :mod:`repro.sim.checkpoint`.
    """

    __slots__ = ("subsystem", "callback", "start_cycle")

    def __init__(self, subsystem: "RNGSubsystem", callback: Callable[[int], None], start_cycle: int):
        self.subsystem = subsystem
        self.callback = callback
        self.start_cycle = start_cycle

    def __call__(self, cycle: int) -> None:
        self.subsystem.stats.latency_sum += cycle - self.start_cycle
        self.callback(cycle)


class _ShareCompletion:
    """Per-channel share callback of one in-flight demand generation.

    Every share of a generation carries a callback referencing the same
    :class:`_PendingGeneration`; identity of that shared object is what
    completes the application request exactly once.  A class (not a
    closure) so outstanding RNG requests stay serialisable by
    :mod:`repro.sim.checkpoint` (pickle's memo preserves the sharing).
    """

    __slots__ = ("subsystem", "pending")

    def __init__(self, subsystem: "RNGSubsystem", pending: _PendingGeneration) -> None:
        self.subsystem = subsystem
        self.pending = pending

    def __call__(self, request: Request) -> None:
        pending = self.pending
        subsystem = self.subsystem
        pending.outstanding -= 1
        if pending.outstanding == 0:
            completion = (
                request.completion_cycle if request.completion_cycle is not None else subsystem.now
            )
            subsystem.stats.latency_sum += completion - pending.start_cycle
            pending.callback(completion)


class RNGSubsystem:
    """Routes application random number requests to the memory system."""

    def __init__(
        self,
        controllers: Sequence[ChannelController],
        registry: ApplicationRegistry,
        buffer: Optional[RandomNumberBuffer] = None,
        buffer_serve_latency: int = 2,
    ) -> None:
        if not controllers:
            raise ValueError("the RNG subsystem needs at least one channel controller")
        if buffer_serve_latency < 0:
            raise ValueError("buffer_serve_latency must be non-negative")
        self.controllers = list(controllers)
        self.registry = registry
        self.buffer = buffer
        self.buffer_serve_latency = buffer_serve_latency
        self.stats = RNGSubsystemStats()

        self.now = 0
        self._deferred: List[tuple[int, int, Callable[[int], None]]] = []
        self._deferred_counter = itertools.count()
        self._retry_queue: List[tuple[ChannelController, Request]] = []

    # -- time ----------------------------------------------------------------------

    def tick(self, now: int) -> None:
        """Advance the subsystem: fire deferred completions, retry enqueues."""
        self.now = now
        while self._deferred and self._deferred[0][0] <= now:
            cycle, _, callback = heapq.heappop(self._deferred)
            callback(cycle)
        if self._retry_queue:
            remaining: List[tuple[ChannelController, Request]] = []
            for controller, request in self._retry_queue:
                if not controller.enqueue(request):
                    remaining.append((controller, request))
            self._retry_queue = remaining

    def _defer(self, cycle: int, callback: Callable[[int], None]) -> None:
        heapq.heappush(self._deferred, (cycle, next(self._deferred_counter), callback))

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Lower bound on the next cycle at which :meth:`tick` changes state.

        Deferred completions are a heap, so the head is the earliest
        event.  A non-empty retry queue re-attempts enqueues every cycle
        (each failed push mutates queue statistics and consumes nothing),
        so it forces normal ticking until it drains.
        """
        if self._retry_queue:
            return now
        if self._deferred:
            head = self._deferred[0][0]
            return now if head <= now else head
        return None

    def skip_cycles(self, now: int, target: int) -> None:
        """Apply the quiet ticks for cycles ``[now, target)`` (clock only)."""
        self.now = target - 1

    # -- application interface -------------------------------------------------------

    def request_random(self, bits: int, core_id: int, callback: Callable[[int], None]) -> None:
        """Handle an application's request for ``bits`` random bits.

        ``callback(completion_cycle)`` is invoked when the bits are ready.
        """
        if bits <= 0:
            raise ValueError("bits must be positive")
        self.registry.mark_rng_application(core_id)
        self.stats.requests += 1
        self.stats.bits_requested += bits
        start_cycle = self.now

        if self.buffer is not None and self.buffer.take(bits):
            self.stats.buffer_serves += 1
            completion = start_cycle + self.buffer_serve_latency
            self._defer(completion, _BufferServeCompletion(self, callback, start_cycle))
            return

        self.stats.demand_generations += 1
        self._generate_on_demand(bits, core_id, callback, start_cycle)

    # -- demand generation -------------------------------------------------------------

    def _generate_on_demand(
        self, bits: int, core_id: int, callback: Callable[[int], None], start_cycle: int
    ) -> None:
        num_channels = len(self.controllers)
        share = max(1, math.ceil(bits / num_channels))
        pending = _PendingGeneration(core_id, callback, num_channels, start_cycle)

        for controller in self.controllers:
            request = Request(
                type=RequestType.RNG,
                core_id=core_id,
                rng_bits=share,
                arrival_cycle=self.now,
                priority=self.registry.priority(core_id),
                callback=_ShareCompletion(self, pending),
            )
            if not controller.enqueue(request):
                self._retry_queue.append((controller, request))

    # -- convenience -----------------------------------------------------------------

    @property
    def buffer_serve_rate(self) -> float:
        return self.stats.buffer_serve_rate
