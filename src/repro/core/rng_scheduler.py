"""The RNG-aware memory request scheduler (Section 5.2).

DR-STRaNGe keeps RNG requests in a separate per-channel RNG queue and
decides each scheduling step whether to serve the RNG queue or the
regular read queue, based on the OS-assigned priorities of the running
applications:

* **RNG prioritised** — if an RNG application with a pending RNG request
  has higher priority than every non-RNG application with a pending
  regular request, the RNG queue is chosen until it drains.
* **Non-RNG prioritised** — otherwise the regular read queue is chosen,
  except when its oldest request belongs to an RNG application and
  arrived *after* the oldest RNG request (serving the older RNG request
  first prevents starving the RNG application behind its own younger
  regular requests).
* **Equal priorities** — RNG requests are preferred, which minimises RNG
  interference by batching RNG work (Section 8.5 shows this does not hurt
  non-RNG applications).

A starvation-prevention counter tracks how long the deprioritised queue
has been stalled by priority-based decisions; when it reaches
``stall_limit`` the deprioritised queue is served once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple, TYPE_CHECKING

from ..controller.queues import RequestQueue
from ..controller.request import Request

if TYPE_CHECKING:  # pragma: no cover
    from ..controller.memory_controller import ChannelController


class ApplicationRegistry:
    """Shared record of application priorities and RNG-application status.

    The operating system assigns each application (core) a priority
    level; DR-STRaNGe additionally marks an application as an *RNG
    application* the first time it requests a random number
    (Section 5.2.1).  All channel controllers share one registry.
    """

    def __init__(self, priorities: Optional[Dict[int, int]] = None) -> None:
        self._priorities: Dict[int, int] = dict(priorities or {})
        self._rng_applications: Set[int] = set()

    def set_priority(self, core_id: int, priority: int) -> None:
        self._priorities[core_id] = priority

    def priority(self, core_id: int) -> int:
        return self._priorities.get(core_id, 0)

    def mark_rng_application(self, core_id: int) -> None:
        self._rng_applications.add(core_id)

    def is_rng_application(self, core_id: int) -> bool:
        return core_id in self._rng_applications

    @property
    def rng_applications(self) -> Set[int]:
        return set(self._rng_applications)


@dataclass
class RNGSchedulerStats:
    """Decision counters of the RNG-aware scheduler."""

    rng_queue_choices: int = 0
    regular_queue_choices: int = 0
    priority_inversions_prevented: int = 0
    starvation_interventions: int = 0

    @property
    def total_choices(self) -> int:
        return self.rng_queue_choices + self.regular_queue_choices


class RNGAwareQueuePolicy:
    """Per-channel queue-selection policy implementing the RNG-aware rules."""

    name = "rng-aware"

    def __init__(self, registry: ApplicationRegistry, stall_limit: int = 100) -> None:
        if stall_limit <= 0:
            raise ValueError("stall_limit must be positive")
        self.registry = registry
        self.stall_limit = stall_limit
        self.stats = RNGSchedulerStats()
        self._deprioritized: Optional[str] = None
        self._deprioritized_since: int = 0

    # -- queue selection ----------------------------------------------------------

    def select(
        self, controller: "ChannelController", now: int
    ) -> Optional[Tuple[RequestQueue, Request]]:
        read_queue = controller.read_queue
        rng_queue = controller.rng_queue

        has_rng = rng_queue is not None and len(rng_queue) > 0
        has_regular = len(read_queue) > 0

        if not has_rng and not has_regular:
            return None
        if not has_rng:
            return self._choose_regular(controller, read_queue, now, deprioritized=None, now_cycle=now)
        if not has_regular:
            return self._choose_rng(rng_queue, deprioritized=None, now_cycle=now)

        choice, deprioritized = self._priority_decision(controller, read_queue, rng_queue)

        # Starvation prevention: the stall-time counter measures how long
        # the deprioritised queue has been stalled by priority-based
        # decisions; once it reaches ``stall_limit`` cycles the scheduler
        # serves one request from the deprioritised queue (Section 5.2.1).
        if deprioritized is not None:
            if deprioritized != self._deprioritized:
                self._deprioritized = deprioritized
                self._deprioritized_since = now
            elif now - self._deprioritized_since >= self.stall_limit:
                self.stats.starvation_interventions += 1
                choice = deprioritized
                deprioritized = None

        if choice == "rng":
            return self._choose_rng(rng_queue, deprioritized, now_cycle=now)
        return self._choose_regular(controller, read_queue, now, deprioritized, now_cycle=now)

    def _priority_decision(
        self,
        controller: "ChannelController",
        read_queue: RequestQueue,
        rng_queue: RequestQueue,
    ) -> Tuple[str, Optional[str]]:
        registry = self.registry
        rng_priority = max(registry.priority(request.core_id) for request in rng_queue)
        non_rng_requests = [
            request
            for request in read_queue
            if not registry.is_rng_application(request.core_id)
        ]
        if non_rng_requests:
            regular_priority = max(registry.priority(r.core_id) for r in non_rng_requests)
        else:
            regular_priority = max(registry.priority(r.core_id) for r in read_queue)

        if rng_priority > regular_priority:
            return "rng", "regular"
        if regular_priority > rng_priority:
            oldest_regular = read_queue.oldest()
            oldest_rng = rng_queue.oldest()
            if (
                oldest_regular is not None
                and oldest_rng is not None
                and registry.is_rng_application(oldest_regular.core_id)
                and oldest_regular.arrival_cycle > oldest_rng.arrival_cycle
            ):
                # The RNG application's own regular request would otherwise
                # overtake its older RNG request.
                self.stats.priority_inversions_prevented += 1
                return "rng", None
            return "regular", "rng"
        # Equal priorities: pending row-buffer hits are served first (they
        # are nearly free and keep DRAM throughput high, as in FR-FCFS);
        # otherwise requests are ordered first-come-first-serve across the
        # two queues with ties broken towards the RNG queue, so a burst of
        # RNG requests is served back-to-back (batching avoids repeated
        # timing-parameter switches) without overtaking regular reads that
        # arrived before it.  Either way the decision counts towards
        # starvation prevention, so neither queue can be stalled for more
        # than ``stall_limit`` cycles.
        if self._has_row_hit(controller, read_queue):
            return "regular", None
        oldest_regular = read_queue.oldest()
        oldest_rng = rng_queue.oldest()
        if (
            oldest_regular is not None
            and oldest_rng is not None
            and oldest_regular.arrival_cycle < oldest_rng.arrival_cycle
        ):
            return "regular", "rng"
        return "rng", "regular"

    @staticmethod
    def _has_row_hit(controller: "ChannelController", read_queue: RequestQueue) -> bool:
        open_rows = controller.channel.open_rows
        rows = read_queue._rows
        for index, bank in enumerate(read_queue._banks):
            if bank == -2:  # SLOT_UNDECODED: direct queue use (tests).
                bank = read_queue.repair_slot(index, controller)
            if bank >= 0 and open_rows[bank] == rows[index]:
                return True
        return False

    def _choose_rng(
        self, rng_queue: RequestQueue, deprioritized: Optional[str], now_cycle: int
    ) -> Tuple[RequestQueue, Request]:
        self.stats.rng_queue_choices += 1
        self._note_service(served="rng", deprioritized=deprioritized, now=now_cycle)
        return rng_queue, rng_queue.oldest()

    def _choose_regular(
        self,
        controller: "ChannelController",
        read_queue: RequestQueue,
        now: int,
        deprioritized: Optional[str],
        now_cycle: int,
    ) -> Optional[Tuple[RequestQueue, Request]]:
        request = controller.scheduler.select(read_queue, controller, now)
        if request is None:
            return None
        self.stats.regular_queue_choices += 1
        self._note_service(served="regular", deprioritized=deprioritized, now=now_cycle)
        return read_queue, request

    def _note_service(self, served: str, deprioritized: Optional[str], now: int) -> None:
        # Serving from the previously deprioritised queue resets the
        # stall-time counter (Section 5.2.1).
        if self._deprioritized is not None and served == self._deprioritized:
            self._deprioritized = None
        if deprioritized != self._deprioritized:
            self._deprioritized = deprioritized
            self._deprioritized_since = now

    # -- bookkeeping hooks --------------------------------------------------------

    def notify_rng_application(self, core_id: int) -> None:
        """Mark ``core_id`` as an RNG application (first RNG request seen)."""
        self.registry.mark_rng_application(core_id)

    def reset(self) -> None:
        self._deprioritized = None
        self._deprioritized_since = 0
