"""DRAM idleness predictors (Section 5.1.2).

The buffering mechanism must decide, at the start of an idle (or lowly
utilised) DRAM period, whether the period will be long enough to generate
a batch of random bits without delaying regular requests.  Two predictors
are provided:

* :class:`SimpleIdlenessPredictor` — the paper's lightweight design: a
  per-channel table of 2-bit saturating counters indexed by a hash of the
  last accessed memory address.  An idle period is predicted *long* when
  the counter is 2 or larger; the counter is incremented when the
  observed period was at least ``period_threshold`` cycles and
  decremented otherwise.
* :class:`QLearningIdlenessPredictor` (in :mod:`repro.core.rl_predictor`)
  — the reinforcement-learning alternative evaluated in Section 8.6.

Both share the :class:`IdlenessPredictor` interface and the accuracy
accounting used for Figure 14: a prediction made at the start of an idle
period is scored against the period's observed length when it ends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class PredictorStats:
    """Prediction-quality counters (Figure 14)."""

    true_positives: int = 0   # predicted long, was long
    false_positives: int = 0  # predicted long, was short
    true_negatives: int = 0   # predicted short, was short
    false_negatives: int = 0  # predicted short, was long

    @property
    def predictions(self) -> int:
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )

    @property
    def accuracy(self) -> float:
        """Fraction of idle periods whose length class was predicted correctly."""
        total = self.predictions
        if not total:
            return 0.0
        return (self.true_positives + self.true_negatives) / total

    @property
    def false_positive_rate(self) -> float:
        denominator = self.false_positives + self.true_negatives
        return self.false_positives / denominator if denominator else 0.0

    @property
    def false_negative_rate(self) -> float:
        denominator = self.false_negatives + self.true_positives
        return self.false_negatives / denominator if denominator else 0.0


class IdlenessPredictor:
    """Interface shared by the DRAM idleness predictors."""

    name = "abstract"

    def __init__(self, period_threshold: int = 40) -> None:
        if period_threshold <= 0:
            raise ValueError("period_threshold must be positive")
        self.period_threshold = period_threshold
        self.stats = PredictorStats()
        self._pending_prediction: Optional[bool] = None

    # -- prediction ---------------------------------------------------------------

    def predict(self, last_address: int) -> bool:
        """Predict whether the idle period starting now will be long."""
        raise NotImplementedError

    def predict_and_record(self, last_address: int) -> bool:
        """Predict and remember the prediction for accuracy scoring."""
        prediction = self.predict(last_address)
        if self._pending_prediction is None:
            self._pending_prediction = prediction
        return prediction

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle at which the predictor can change state on its own.

        Predictors are purely reactive: :meth:`predict` is a pure function
        of the table, and state only changes inside the observation hooks
        (:meth:`observe_idle_period`, :meth:`predict_and_record`) that the
        controller fires on request arrivals and idle-period boundaries.
        A cycle-skipping engine may therefore always jump over them.
        """
        return None

    # -- training -----------------------------------------------------------------

    def observe_idle_period(self, length: int, last_address: int) -> None:
        """Train on a finished idle period of ``length`` cycles."""
        was_long = length >= self.period_threshold
        self._score(was_long)
        self._update(was_long, last_address)

    def _score(self, was_long: bool) -> None:
        prediction = self._pending_prediction
        self._pending_prediction = None
        if prediction is None:
            return
        if prediction and was_long:
            self.stats.true_positives += 1
        elif prediction and not was_long:
            self.stats.false_positives += 1
        elif not prediction and not was_long:
            self.stats.true_negatives += 1
        else:
            self.stats.false_negatives += 1

    def _update(self, was_long: bool, last_address: int) -> None:
        raise NotImplementedError

    @property
    def accuracy(self) -> float:
        return self.stats.accuracy


class SimpleIdlenessPredictor(IdlenessPredictor):
    """The paper's lightweight last-address-indexed idleness predictor.

    Per channel it keeps a ``table_entries``-entry table of 2-bit
    saturating counters.  The table is indexed with a hash of the last
    accessed memory address (block granularity).  A counter value of 2 or
    3 predicts a *long* idle period; the counter saturates at 0 and 3.
    """

    name = "simple"

    #: 2-bit saturating counter bounds and the "predict long" threshold.
    COUNTER_MAX = 3
    PREDICT_LONG_THRESHOLD = 2

    def __init__(
        self,
        period_threshold: int = 40,
        table_entries: int = 256,
        block_size: int = 64,
        initial_counter: int = 2,
    ) -> None:
        super().__init__(period_threshold)
        if table_entries <= 0:
            raise ValueError("table_entries must be positive")
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if not 0 <= initial_counter <= self.COUNTER_MAX:
            raise ValueError("initial_counter must be a valid 2-bit counter value")
        self.table_entries = table_entries
        self.block_size = block_size
        self.table = [initial_counter] * table_entries

    def _index(self, address: int) -> int:
        return (address // self.block_size) % self.table_entries

    def predict(self, last_address: int) -> bool:
        return self.table[self._index(last_address)] >= self.PREDICT_LONG_THRESHOLD

    def _update(self, was_long: bool, last_address: int) -> None:
        index = self._index(last_address)
        counter = self.table[index]
        if was_long:
            counter = min(self.COUNTER_MAX, counter + 1)
        else:
            counter = max(0, counter - 1)
        self.table[index] = counter

    @property
    def storage_bits(self) -> int:
        """Storage cost of the predictor table (2 bits per entry)."""
        return 2 * self.table_entries
