"""DRAM bank state machine.

Each bank tracks its currently open row and the earliest cycle at which it
can accept a new access.  The memory controller uses
:meth:`Bank.access_category` to classify an access as a row-buffer hit,
a miss to a closed bank or a row conflict, and :meth:`Bank.access` to
update the bank state and obtain the data-ready time of the access.

The model is request-level rather than command-level: instead of issuing
individual ACTIVATE / READ / PRECHARGE commands, a whole access is applied
atomically with the latency implied by the access category.  This keeps
the simulator fast while preserving the row-buffer locality and bank-level
parallelism behaviour that the paper's scheduling study depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .timing import DRAMTiming


class AccessCategory(Enum):
    """Classification of an access relative to the bank's row buffer."""

    ROW_HIT = "row_hit"
    ROW_CLOSED = "row_closed"
    ROW_CONFLICT = "row_conflict"


@dataclass(slots=True)
class BankStats:
    """Per-bank counters used by the energy model and experiments."""

    activations: int = 0
    precharges: int = 0
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_closed: int = 0
    row_conflicts: int = 0

    def merge(self, other: "BankStats") -> None:
        """Accumulate ``other`` into this stats object."""
        self.activations += other.activations
        self.precharges += other.precharges
        self.reads += other.reads
        self.writes += other.writes
        self.row_hits += other.row_hits
        self.row_closed += other.row_closed
        self.row_conflicts += other.row_conflicts


class Bank:
    """A single DRAM bank with an open-row policy."""

    def __init__(
        self, bank_id: int, timing: DRAMTiming, open_row_mirror: list | None = None
    ) -> None:
        self.bank_id = bank_id
        self.timing = timing
        self.open_row: int | None = None
        self.ready_at: int = 0
        self.stats = BankStats()
        #: The owning channel's flat open-row list (``Channel.open_rows``),
        #: shared by every bank of the channel.  Every open-row mutation —
        #: whether through this bank's own methods or the channel's
        #: inlined access path — must land in it, because the schedulers'
        #: row-hit scans read the mirror instead of ``open_row``.
        self._open_row_mirror = open_row_mirror

    # -- queries ------------------------------------------------------------------

    def access_category(self, row: int) -> AccessCategory:
        """Classify an access to ``row`` against the current bank state."""
        if self.open_row is None:
            return AccessCategory.ROW_CLOSED
        if self.open_row == row:
            return AccessCategory.ROW_HIT
        return AccessCategory.ROW_CONFLICT

    def is_ready(self, now: int) -> bool:
        """Whether the bank can start a new access at cycle ``now``."""
        return now >= self.ready_at

    def earliest_ready_cycle(self, now: int) -> int:
        """Earliest cycle (not before ``now``) a new access can start."""
        return max(now, self.ready_at)

    def preparation_latency(self, row: int) -> int:
        """Cycles of row preparation (precharge + activate) for an access."""
        category = self.access_category(row)
        timing = self.timing
        if category is AccessCategory.ROW_HIT:
            return 0
        if category is AccessCategory.ROW_CLOSED:
            return timing.tRCD
        return timing.tRP + timing.tRCD

    # -- state changes ------------------------------------------------------------

    def access(self, row: int, now: int, is_write: bool = False) -> tuple[int, AccessCategory]:
        """Perform an access to ``row`` starting no earlier than ``now``.

        Returns the cycle at which the column access (READ/WRITE command)
        can be issued, i.e. after any required precharge/activate, together
        with the access category.  The caller is responsible for adding CAS
        latency and burst time, and for calling :meth:`complete_access`
        with the final bank-busy time.
        """
        stats = self.stats
        timing = self.timing
        start = now if now >= self.ready_at else self.ready_at
        open_row = self.open_row
        # Classify once and apply the category's preparation latency and
        # counters inline (access_category + preparation_latency would
        # classify twice on this per-access path).
        if open_row == row:
            category = AccessCategory.ROW_HIT
            column_ready = start
            stats.row_hits += 1
        elif open_row is None:
            category = AccessCategory.ROW_CLOSED
            column_ready = start + timing.tRCD
            stats.row_closed += 1
            stats.activations += 1
        else:
            category = AccessCategory.ROW_CONFLICT
            column_ready = start + timing.tRP + timing.tRCD
            stats.row_conflicts += 1
            stats.precharges += 1
            stats.activations += 1

        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1

        self.open_row = row
        if self._open_row_mirror is not None:
            self._open_row_mirror[self.bank_id] = row
        return column_ready, category

    def complete_access(self, busy_until: int) -> None:
        """Record that the bank stays busy until ``busy_until``."""
        if busy_until > self.ready_at:
            self.ready_at = busy_until

    def precharge(self, now: int) -> None:
        """Explicitly close the open row (used when entering RNG mode)."""
        if self.open_row is not None:
            self.stats.precharges += 1
            self.open_row = None
            if self._open_row_mirror is not None:
                self._open_row_mirror[self.bank_id] = None
            self.ready_at = max(self.ready_at, now + self.timing.tRP)

    def reset(self) -> None:
        """Reset dynamic state (open row and readiness), keeping stats."""
        self.open_row = None
        if self._open_row_mirror is not None:
            self._open_row_mirror[self.bank_id] = None
        self.ready_at = 0
