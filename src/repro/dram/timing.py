"""DRAM timing parameters.

The simulator operates at DRAM *bus* cycle granularity.  All timing
parameters in :class:`DRAMTiming` are therefore expressed in bus cycles of
the configured data rate (e.g. 1.25 ns per cycle for DDR3-1600, whose bus
runs at 800 MHz).

Only the parameters that matter for the request-level model used by the
memory controller are included: row activation (tRCD), precharge (tRP),
CAS latency (tCL / tCWL), burst length on the data bus (tBL), the minimum
row-open time (tRAS), the write recovery time (tWR) and the refresh
parameters (tRFC / tREFI).  The controller uses them to compute
row-hit / row-miss / row-conflict service latencies and to serialise data
transfers on the channel bus.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DRAMTiming:
    """Timing parameters of a DRAM device, in bus cycles.

    Attributes
    ----------
    name:
        Human readable name of the speed bin (e.g. ``"DDR3-1600"``).
    tck_ns:
        Duration of one bus cycle in nanoseconds.
    tRCD:
        ACTIVATE to READ/WRITE delay.
    tRP:
        PRECHARGE to ACTIVATE delay.
    tCL:
        READ command to first data (CAS latency).
    tCWL:
        WRITE command to first data.
    tBL:
        Burst length on the data bus (cycles the bus is occupied per access).
    tRAS:
        Minimum time a row must remain open after ACTIVATE.
    tWR:
        Write recovery time before a PRECHARGE may follow a WRITE.
    tRFC:
        Refresh cycle time (duration of one refresh operation).
    tREFI:
        Average refresh interval.
    """

    name: str = "DDR3-1600"
    tck_ns: float = 1.25
    tRCD: int = 11
    tRP: int = 11
    tCL: int = 11
    tCWL: int = 8
    tBL: int = 4
    tRAS: int = 28
    tWR: int = 12
    tRFC: int = 208
    tREFI: int = 6240

    @property
    def bus_frequency_mhz(self) -> float:
        """Bus frequency in MHz implied by :attr:`tck_ns`."""
        return 1000.0 / self.tck_ns

    @property
    def row_hit_latency(self) -> int:
        """Latency of a read that hits in the row buffer (CAS + burst)."""
        return self.tCL + self.tBL

    @property
    def row_closed_latency(self) -> int:
        """Latency of a read to a precharged (closed) bank."""
        return self.tRCD + self.tCL + self.tBL

    @property
    def row_conflict_latency(self) -> int:
        """Latency of a read that conflicts with an open row."""
        return self.tRP + self.tRCD + self.tCL + self.tBL

    def ns_to_cycles(self, nanoseconds: float) -> int:
        """Convert a duration in nanoseconds to (rounded up) bus cycles."""
        cycles = nanoseconds / self.tck_ns
        whole = int(cycles)
        return whole if cycles == whole else whole + 1

    def cycles_to_ns(self, cycles: int) -> float:
        """Convert a number of bus cycles to nanoseconds."""
        return cycles * self.tck_ns


def ddr3_1600() -> DRAMTiming:
    """Return the DDR3-1600 timing preset used by the paper (Table 1)."""
    return DRAMTiming()


def ddr3_1066() -> DRAMTiming:
    """Return a slower DDR3-1066 preset (useful for sensitivity studies)."""
    return DRAMTiming(
        name="DDR3-1066",
        tck_ns=1.875,
        tRCD=7,
        tRP=7,
        tCL=7,
        tCWL=6,
        tBL=4,
        tRAS=20,
        tWR=8,
        tRFC=139,
        tREFI=4160,
    )


def ddr4_2400() -> DRAMTiming:
    """Return a DDR4-2400 preset (useful for sensitivity studies)."""
    return DRAMTiming(
        name="DDR4-2400",
        tck_ns=0.833,
        tRCD=16,
        tRP=16,
        tCL=16,
        tCWL=12,
        tBL=4,
        tRAS=39,
        tWR=18,
        tRFC=420,
        tREFI=9363,
    )


_PRESETS = {
    "DDR3-1600": ddr3_1600,
    "DDR3-1066": ddr3_1066,
    "DDR4-2400": ddr4_2400,
}


def timing_preset(name: str) -> DRAMTiming:
    """Look up a timing preset by name.

    Raises
    ------
    KeyError
        If ``name`` is not a known preset.
    """
    try:
        return _PRESETS[name]()
    except KeyError:
        known = ", ".join(sorted(_PRESETS))
        raise KeyError(f"unknown DRAM timing preset {name!r}; known presets: {known}")


@dataclass(frozen=True)
class DRAMOrganization:
    """Physical organisation of the simulated DRAM main memory.

    The defaults mirror Table 1 of the paper: 4 channels, 1 rank per
    channel, 8 banks per rank and 64K rows per bank.
    """

    channels: int = 4
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    rows_per_bank: int = 65536
    columns_per_row: int = 128
    bytes_per_column: int = 64

    def __post_init__(self) -> None:
        for field_name in (
            "channels",
            "ranks_per_channel",
            "banks_per_rank",
            "rows_per_bank",
            "columns_per_row",
            "bytes_per_column",
        ):
            value = getattr(self, field_name)
            if value <= 0:
                raise ValueError(f"{field_name} must be positive, got {value}")

    @property
    def banks_per_channel(self) -> int:
        """Total number of banks addressable behind one channel."""
        return self.ranks_per_channel * self.banks_per_rank

    @property
    def total_banks(self) -> int:
        """Total number of banks in the memory system."""
        return self.channels * self.banks_per_channel

    @property
    def row_size_bytes(self) -> int:
        """Size of one DRAM row in bytes."""
        return self.columns_per_row * self.bytes_per_column

    @property
    def capacity_bytes(self) -> int:
        """Total capacity of the memory system in bytes."""
        return self.total_banks * self.rows_per_bank * self.row_size_bytes
