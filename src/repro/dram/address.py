"""Physical address decomposition.

The memory controller needs to know which channel, bank, row and column a
physical address maps to.  The mapping used here interleaves consecutive
cache blocks across channels and banks (``Row | Bank | Channel | Column``
from most to least significant), which is the common high-parallelism
mapping also used by Ramulator's default configuration.  The mapping is a
bijection between physical addresses (at cache-block granularity) and
``(channel, rank, bank, row, column)`` tuples, which the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .timing import DRAMOrganization


@dataclass(frozen=True)
class DecodedAddress:
    """A physical address decomposed into DRAM coordinates."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int
    #: Flat bank index within the owning channel, precomputed by
    #: :meth:`AddressMapping.decode` so the schedulers' row-hit scans (the
    #: hottest per-request work in dense simulations) read one attribute
    #: instead of redoing the rank/bank arithmetic.  Excluded from
    #: equality so hand-built instances compare as before; on those it is
    #: ``None``, which fails loudly (``TypeError`` on indexing) if such an
    #: instance ever reaches a scheduler scan — only decoded addresses do.
    flat_bank: int | None = field(default=None, compare=False)

    def bank_id(self, organization: DRAMOrganization) -> int:
        """Flat bank index within the owning channel."""
        if self.flat_bank is not None:
            return self.flat_bank
        return self.rank * organization.banks_per_rank + self.bank


class AddressMapping:
    """Maps physical addresses to DRAM coordinates and back.

    The address layout (most significant to least significant) is::

        row | rank | bank | column | channel | block offset

    so that consecutive cache blocks of a streaming access pattern spread
    across channels first (channel interleaving, as in Ramulator's default
    RoBaRaCoCh mapping), while accesses within one row of one channel stay
    in the same bank (row-buffer locality).
    """

    def __init__(self, organization: DRAMOrganization | None = None) -> None:
        self.organization = organization or DRAMOrganization()
        org = self.organization
        self._block_bits = (org.bytes_per_column - 1).bit_length()
        self._column_bits = (org.columns_per_row - 1).bit_length()
        self._channel_bits = (org.channels - 1).bit_length() if org.channels > 1 else 0
        self._bank_bits = (org.banks_per_rank - 1).bit_length() if org.banks_per_rank > 1 else 0
        self._rank_bits = (
            (org.ranks_per_channel - 1).bit_length() if org.ranks_per_channel > 1 else 0
        )
        self._row_bits = (org.rows_per_bank - 1).bit_length()

    # -- decoding -----------------------------------------------------------------

    def decode(self, address: int) -> DecodedAddress:
        """Decompose a byte address into DRAM coordinates."""
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        org = self.organization
        bits = address >> self._block_bits
        channel = bits % org.channels
        bits //= org.channels
        column = bits % org.columns_per_row
        bits //= org.columns_per_row
        bank = bits % org.banks_per_rank
        bits //= org.banks_per_rank
        rank = bits % org.ranks_per_channel
        bits //= org.ranks_per_channel
        row = bits % org.rows_per_bank
        return DecodedAddress(
            channel=channel,
            rank=rank,
            bank=bank,
            row=row,
            column=column,
            flat_bank=rank * org.banks_per_rank + bank,
        )

    def channel_of(self, address: int) -> int:
        """Return only the channel index of ``address`` (fast path)."""
        return (address >> self._block_bits) % self.organization.channels

    # -- encoding -----------------------------------------------------------------

    def encode(
        self,
        channel: int,
        bank: int,
        row: int,
        column: int,
        rank: int = 0,
    ) -> int:
        """Compose DRAM coordinates into a byte address.

        The returned address is aligned to a cache block.
        """
        org = self.organization
        self._check_range("channel", channel, org.channels)
        self._check_range("rank", rank, org.ranks_per_channel)
        self._check_range("bank", bank, org.banks_per_rank)
        self._check_range("row", row, org.rows_per_bank)
        self._check_range("column", column, org.columns_per_row)
        bits = row
        bits = bits * org.ranks_per_channel + rank
        bits = bits * org.banks_per_rank + bank
        bits = bits * org.columns_per_row + column
        bits = bits * org.channels + channel
        return bits << self._block_bits

    @staticmethod
    def _check_range(name: str, value: int, limit: int) -> None:
        if not 0 <= value < limit:
            raise ValueError(f"{name} must be in [0, {limit}), got {value}")

    # -- metadata -----------------------------------------------------------------

    @property
    def block_size(self) -> int:
        """Cache block size in bytes (granularity of one memory request)."""
        return self.organization.bytes_per_column

    def block_index(self, address: int) -> int:
        """Return the cache-block index of ``address``."""
        return address >> self._block_bits
