"""Top-level DRAM device model: the set of channels behind the controller."""

from __future__ import annotations

from .address import AddressMapping, DecodedAddress
from .channel import Channel, ChannelStats
from .timing import DRAMOrganization, DRAMTiming


class DRAMSystem:
    """All DRAM channels of the simulated main memory.

    The memory controller owns one :class:`DRAMSystem` and uses it to
    translate addresses and to reach the per-channel device models.
    """

    def __init__(
        self,
        timing: DRAMTiming | None = None,
        organization: DRAMOrganization | None = None,
    ) -> None:
        self.timing = timing or DRAMTiming()
        self.organization = organization or DRAMOrganization()
        self.mapping = AddressMapping(self.organization)
        self.channels = [
            Channel(channel_id, self.timing, self.organization)
            for channel_id in range(self.organization.channels)
        ]
        #: Current bus cycle, maintained by the simulation engine.  The
        #: channel controllers read it when external work arrives while
        #: their per-cycle bookkeeping is deferred (see
        #: :meth:`repro.controller.memory_controller.ChannelController.catch_up`).
        self.now = 0

    @property
    def num_channels(self) -> int:
        return len(self.channels)

    def decode(self, address: int) -> DecodedAddress:
        """Decompose a physical address into DRAM coordinates."""
        return self.mapping.decode(address)

    def channel_of(self, address: int) -> Channel:
        """Return the channel device that owns ``address``."""
        return self.channels[self.mapping.channel_of(address)]

    def total_stats(self) -> ChannelStats:
        """Aggregate channel statistics across the whole memory system."""
        total = ChannelStats()
        for channel in self.channels:
            stats = channel.stats
            total.read_accesses += stats.read_accesses
            total.write_accesses += stats.write_accesses
            total.row_hits += stats.row_hits
            total.row_closed += stats.row_closed
            total.row_conflicts += stats.row_conflicts
            total.busy_cycles += stats.busy_cycles
            total.rng_cycles += stats.rng_cycles
            total.rng_operations += stats.rng_operations
            total.rng_bits_generated += stats.rng_bits_generated
        return total
