"""DRAM device substrate: timings, address mapping, banks and channels."""

from .address import AddressMapping, DecodedAddress
from .bank import AccessCategory, Bank, BankStats
from .channel import Channel, ChannelStats
from .dram_system import DRAMSystem
from .timing import (
    DRAMOrganization,
    DRAMTiming,
    ddr3_1066,
    ddr3_1600,
    ddr4_2400,
    timing_preset,
)

__all__ = [
    "AccessCategory",
    "AddressMapping",
    "Bank",
    "BankStats",
    "Channel",
    "ChannelStats",
    "DecodedAddress",
    "DRAMOrganization",
    "DRAMSystem",
    "DRAMTiming",
    "ddr3_1066",
    "ddr3_1600",
    "ddr4_2400",
    "timing_preset",
]
