"""DRAM channel device model.

A channel groups the banks reachable through one memory channel and owns
the shared data bus.  The memory controller issues accesses through
:meth:`Channel.service_access`, which combines the bank state machine with
data-bus serialisation: row preparation of different banks overlaps, while
data transfers serialise on the bus (one burst of ``tBL`` cycles each).

Random number generation occupies the whole channel: all banks are used in
parallel with violated timing parameters, so no regular access can proceed
concurrently.  :meth:`Channel.occupy_for_rng` models this by marking every
bank and the bus busy until the end of the RNG operation and closing all
row buffers (the reserved RNG rows replace whatever was open).
"""

from __future__ import annotations

from dataclasses import dataclass

from .bank import AccessCategory, Bank, BankStats
from .timing import DRAMOrganization, DRAMTiming


@dataclass(slots=True)
class ChannelStats:
    """Aggregate per-channel counters."""

    read_accesses: int = 0
    write_accesses: int = 0
    row_hits: int = 0
    row_closed: int = 0
    row_conflicts: int = 0
    busy_cycles: int = 0
    rng_cycles: int = 0
    rng_operations: int = 0
    rng_bits_generated: int = 0

    @property
    def total_accesses(self) -> int:
        return self.read_accesses + self.write_accesses

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_closed + self.row_conflicts
        return self.row_hits / total if total else 0.0


def channel_service_access(
    self,
    bank_id: int,
    row: int,
    now: int,
    is_write: bool = False,
) -> tuple[int, AccessCategory]:
    """Service one column access and return its data completion cycle.

    The completion cycle is when the last beat of the data burst leaves
    (read) or arrives at (write) the channel.  Bank preparation of
    different banks may overlap; bursts serialise on the data bus.

    A module-level codegen unit (``service_access =
    channel_service_access`` on :class:`Channel`):
    :mod:`repro.sim.codegen` renders it with the DDR timing parameters
    folded to literals.
    """
    banks = self.banks
    if not 0 <= bank_id < len(banks):
        raise ValueError(f"bank_id {bank_id} out of range for channel {self.channel_id}")
    bank = banks[bank_id]
    timing = self.timing
    stats = self.stats
    bank_stats = bank.stats

    # The bank state machine of :meth:`Bank.access` is applied inline
    # here (classification, preparation latency, counters, open-row
    # update, busy-until) — this per-access path is the hottest DRAM
    # code in dense simulations and the method/enum indirections cost
    # more than the logic.  Keep the two in sync.
    ready = bank.ready_at
    start = now if now >= ready else ready
    open_row = bank.open_row
    if open_row == row:
        category = AccessCategory.ROW_HIT
        column_ready = start
        bank_stats.row_hits += 1
        stats.row_hits += 1
    elif open_row is None:
        category = AccessCategory.ROW_CLOSED
        column_ready = start + timing.tRCD
        bank_stats.row_closed += 1
        bank_stats.activations += 1
        stats.row_closed += 1
        bank.open_row = row
        self.open_rows[bank_id] = row
    else:
        category = AccessCategory.ROW_CONFLICT
        column_ready = start + timing.tRP + timing.tRCD
        bank_stats.row_conflicts += 1
        bank_stats.precharges += 1
        bank_stats.activations += 1
        stats.row_conflicts += 1
        bank.open_row = row
        self.open_rows[bank_id] = row

    cas_latency = timing.tCWL if is_write else timing.tCL
    data_start = column_ready + cas_latency
    bus_free_at = self.bus_free_at
    if data_start < bus_free_at:
        data_start = bus_free_at
    data_end = data_start + timing.tBL

    # The bank remains busy until the burst completes (plus write
    # recovery for writes), which also enforces a minimal tRAS-like
    # occupancy for back-to-back accesses to the same bank.
    bank_busy_until = data_end + (timing.tWR if is_write else 0)
    if bank_busy_until > bank.ready_at:
        bank.ready_at = bank_busy_until
    self.bus_free_at = data_end

    if is_write:
        stats.write_accesses += 1
        bank_stats.writes += 1
    else:
        stats.read_accesses += 1
        bank_stats.reads += 1
    stats.busy_cycles += data_end - max(now, min(column_ready, data_start))

    return data_end, category


class Channel:
    """One DRAM channel: a set of banks sharing a data bus."""

    def __init__(
        self,
        channel_id: int,
        timing: DRAMTiming | None = None,
        organization: DRAMOrganization | None = None,
    ) -> None:
        self.channel_id = channel_id
        self.timing = timing or DRAMTiming()
        self.organization = organization or DRAMOrganization()
        #: Flat mirror of every bank's currently open row.  The
        #: schedulers' row-hit scans index this list directly — one list
        #: load + int compare per queued request — instead of chasing
        #: ``banks[i].open_row`` attribute chains.  The list identity is
        #: permanent: each bank holds a reference and updates its slot on
        #: every open-row mutation (as does the channel's inlined access
        #: path), so no code path can desynchronise the mirror.
        self.open_rows: list = [None] * self.organization.banks_per_channel
        self.banks = [
            Bank(bank_id, self.timing, open_row_mirror=self.open_rows)
            for bank_id in range(self.organization.banks_per_channel)
        ]
        self.bus_free_at: int = 0
        self.stats = ChannelStats()

    # -- regular accesses ---------------------------------------------------------

    # The column-access state machine: the module-level codegen unit
    # (see its docstring for the contract).
    service_access = channel_service_access

    # -- RNG occupancy ------------------------------------------------------------

    def occupy_for_rng(self, now: int, duration: int, bits: int) -> int:
        """Occupy the whole channel for an RNG operation.

        Returns the cycle at which the channel becomes available again.
        All row buffers are closed because RNG accesses target the reserved
        RNG rows with violated timing parameters.
        """
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        end = max(now, self.bus_free_at) + duration
        for index, bank in enumerate(self.banks):
            bank.open_row = None
            self.open_rows[index] = None
            bank.complete_access(end)
        self.bus_free_at = end
        self.stats.rng_cycles += duration
        self.stats.rng_operations += 1
        self.stats.rng_bits_generated += bits
        return end

    # -- queries ------------------------------------------------------------------

    def open_row(self, bank_id: int) -> int | None:
        """Currently open row of ``bank_id`` (``None`` if precharged)."""
        return self.banks[bank_id].open_row

    def is_row_hit(self, bank_id: int, row: int) -> bool:
        """Whether an access to ``(bank_id, row)`` would hit the row buffer."""
        return self.banks[bank_id].open_row == row

    def is_bus_free(self, now: int) -> bool:
        """Whether the data bus is free at cycle ``now``."""
        return now >= self.bus_free_at

    def earliest_free_cycle(self, now: int) -> int:
        """Earliest cycle (not before ``now``) the data bus is free.

        The bus is the channel's binding resource: bank preparation can
        overlap, so :attr:`bus_free_at` (together with the per-bank
        :meth:`~repro.dram.bank.Bank.earliest_ready_cycle`) is the
        earliest-ready bound the cycle-skipping engine consumes.
        """
        return max(now, self.bus_free_at)

    def min_read_completion_distance(self, backend_latency: int) -> int:
        """Lower bound on cycles between issuing a read and its completion.

        A read issued at cycle ``t`` returns data no earlier than
        ``t + tCL + tBL`` (the column access cannot start before ``t``,
        CAS latency and the burst follow) and reaches the core
        ``backend_latency`` cycles later.  The batched-serve fast path
        uses this floor to cap serve windows: any read issued *inside* a
        window of at most this length completes *after* it, so the window
        never has to replay a completion it could not foresee.
        """
        return self.timing.tCL + self.timing.tBL + backend_latency

    def bank_stats(self) -> BankStats:
        """Aggregate bank counters across all banks of this channel."""
        total = BankStats()
        for bank in self.banks:
            total.merge(bank.stats)
        return total

    def reset_dynamic_state(self) -> None:
        """Reset row buffers and readiness without clearing statistics."""
        for bank in self.banks:
            bank.reset()  # each bank clears its open_rows slot
        self.bus_free_at = 0
