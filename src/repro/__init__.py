"""DR-STRaNGe reproduction: an end-to-end system design for DRAM-based TRNGs.

This package reproduces, in pure Python, the system described in
"DR-STRaNGe: End-to-End System Design for DRAM-based True Random Number
Generators" (HPCA 2022): a cycle-level DRAM + memory-controller + core
simulator (the substrate), the DRAM-based TRNG mechanism models
(D-RaNGe, QUAC-TRNG), and the DR-STRaNGe design itself — a random number
buffer filled during predicted-idle DRAM periods, DRAM idleness
predictors, and an RNG-aware memory request scheduler.

Quickstart::

    from repro import drstrange_config, baseline_config, run_workload
    from repro.workloads import dual_core_mixes

    mix = dual_core_mixes()[0]                      # one non-RNG app + 5 Gb/s RNG app
    base = run_workload(mix, baseline_config(), instructions=10_000)
    ours = run_workload(mix, drstrange_config(), instructions=10_000)
    print(base.non_rng_slowdown, "->", ours.non_rng_slowdown)

See the ``examples/`` directory and EXPERIMENTS.md for full experiments.
"""

from . import controller, core, cpu, dram, energy, experiments, metrics, sched, sim, trng, workloads
from .core import (
    DRStrangeConfig,
    QLearningIdlenessPredictor,
    RandomNumberBuffer,
    RNGAwareQueuePolicy,
    SimpleIdlenessPredictor,
    TRNGInterface,
)
from .sim import (
    DESIGN_DRSTRANGE,
    DESIGN_GREEDY_IDLE,
    DESIGN_RNG_OBLIVIOUS,
    SimulationConfig,
    System,
    WorkloadEvaluation,
    baseline_config,
    compare_designs,
    drstrange_config,
    greedy_config,
    run_workload,
    simulate,
)
from .trng import DRaNGe, EntropySource, ParametricTRNG, QUACTRNG

__version__ = "1.0.0"

__all__ = [
    "DESIGN_DRSTRANGE",
    "DESIGN_GREEDY_IDLE",
    "DESIGN_RNG_OBLIVIOUS",
    "DRaNGe",
    "DRStrangeConfig",
    "EntropySource",
    "ParametricTRNG",
    "QLearningIdlenessPredictor",
    "QUACTRNG",
    "RNGAwareQueuePolicy",
    "RandomNumberBuffer",
    "SimpleIdlenessPredictor",
    "SimulationConfig",
    "System",
    "TRNGInterface",
    "WorkloadEvaluation",
    "baseline_config",
    "compare_designs",
    "controller",
    "core",
    "cpu",
    "dram",
    "drstrange_config",
    "energy",
    "experiments",
    "greedy_config",
    "metrics",
    "run_workload",
    "sched",
    "sim",
    "simulate",
    "trng",
    "workloads",
    "__version__",
]
