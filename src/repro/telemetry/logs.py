"""One `logging` setup for every CLI entry point.

The worker and coordinator used to print ad-hoc diagnostics straight to
stderr, each with its own prefix convention.  Everything now flows
through the standard :mod:`logging` tree under the ``repro`` root
logger: a worker logs as ``repro.worker.<id>``, the coordinator as
``repro.coordinator``, sweeps as ``repro.sweep`` — so every line carries
a timestamp, the component (and worker id) and a level, and
``--verbose``/``--quiet`` tune the whole process at once.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

#: Every repro logger hangs off this root.
ROOT = "repro"

_FORMAT = "%(asctime)s [%(name)s] %(levelname)s %(message)s"
_DATE_FORMAT = "%Y-%m-%d %H:%M:%S"


def verbosity_level(verbose: int = 0, quiet: int = 0) -> int:
    """Map counted ``--verbose``/``--quiet`` flags to a logging level."""
    if quiet >= 2:
        return logging.CRITICAL
    if quiet:
        return logging.WARNING
    if verbose >= 2:
        return logging.DEBUG
    if verbose:
        return logging.INFO
    # Default: progress-worthy lines only.
    return logging.INFO


class _ReproHandler(logging.StreamHandler):
    """The one ``repro.*`` handler, resolving its target lazily: an
    explicitly installed stream is used while it stays open; anything
    else — no stream installed, or a pinned stream that has since been
    closed (a swapped/captured stderr, a daemonised process) — falls
    back to the *current* ``sys.stderr``.  A dead stream thus degrades
    to live stderr instead of raising on every later log line."""

    _repro_handler = True

    def __init__(self, stream=None):
        logging.Handler.__init__(self)
        self._pinned = stream

    @property
    def stream(self):
        pinned = self._pinned
        if pinned is not None and not getattr(pinned, "closed", False):
            return pinned
        return sys.stderr

    def setStream(self, stream):
        self._pinned = stream


def configure(verbose: int = 0, quiet: int = 0, stream=None) -> logging.Logger:
    """Install (or retune) the single stderr handler for ``repro.*``.

    Idempotent: repeated calls — the sweep CLI configuring, then
    spawning in-process workers that configure again — adjust the
    existing handler instead of stacking duplicates.
    """
    root = logging.getLogger(ROOT)
    root.setLevel(verbosity_level(verbose, quiet))
    handler = next(
        (h for h in root.handlers if getattr(h, "_repro_handler", False)),
        None,
    )
    if handler is None:
        handler = _ReproHandler(stream)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATE_FORMAT))
        root.addHandler(handler)
        root.propagate = False
    elif stream is not None:
        handler.setStream(stream)
    return root


def get_logger(component: str, worker_id: Optional[str] = None) -> logging.Logger:
    """The logger for one component, e.g. ``repro.worker.w3`` —
    the worker id lands in ``%(name)s`` and therefore in every line."""
    name = f"{ROOT}.{component}"
    if worker_id:
        name = f"{name}.{worker_id}"
    return logging.getLogger(name)
