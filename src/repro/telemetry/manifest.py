"""Run manifests: one persisted summary per orchestrated sweep.

Every sweep that uses a persistent result cache writes a *run manifest*
— a small JSON document recording what ran (experiments, executor,
engine, argv), where (git revision, hostname), how long it took, the
orchestration stats (planned/executed/reused), cache accounting and the
merged telemetry snapshot — into ``<cache_dir>/runs/<run_id>.json``,
next to the content-addressed entries the run produced.

Manifests accumulate: rerunning the nightly sweep, a benchmark session
or a hand-driven figure leaves one file each, so BENCH-style performance
trajectories (points/sec, cache hit rate, per-figure wall time across
commits) fall out of ``repro runs`` without any extra infrastructure.

Like the result cache, writes are atomic and the format is plain JSON,
so manifests survive concurrent runs sharing one cache directory and
stay greppable/jq-able forever.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Optional

from .metrics import snapshot as process_snapshot

#: Subdirectory of the cache holding manifests.  Lives outside the
#: ``??/`` entry fan-out, so the store's entry globs never see it.
MANIFEST_DIR = "runs"

#: Bumped on incompatible manifest layout changes.
MANIFEST_SCHEMA = 1


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit hash, or ``None`` outside a checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    revision = completed.stdout.strip()
    return revision if completed.returncode == 0 and revision else None


def config_digest(experiments, kwargs: Optional[Dict] = None) -> str:
    """Stable digest of what the run was asked to do (not of the results)."""
    payload = json.dumps(
        {"experiments": list(experiments), "kwargs": kwargs or {}},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _runs_dir(cache_dir) -> Path:
    return Path(cache_dir) / MANIFEST_DIR


def new_run_id(experiments, kwargs: Optional[Dict] = None, started_at: Optional[float] = None) -> str:
    """A fresh run id: UTC stamp + config digest prefix + pid.

    Generated *before* the sweep starts (not at manifest-write time) so
    the same id threads through the event journal, cache entry
    provenance and the manifest — the causal key ``repro trace export``
    joins on.
    """
    started_at = time.time() if started_at is None else started_at
    digest = config_digest(list(experiments), kwargs)
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(started_at))
    # Microseconds keep back-to-back identical runs in one process (a
    # cold run and its warm replay in the same second) distinct.
    micros = int(round((started_at % 1.0) * 1e6)) % 1_000_000
    return f"{stamp}.{micros:06d}-{digest[:6]}-{os.getpid()}"


def write_manifest(
    cache_dir,
    *,
    experiments,
    started_at: float,
    finished_at: Optional[float] = None,
    argv: Optional[List[str]] = None,
    kwargs: Optional[Dict] = None,
    executor: Optional[str] = None,
    engine: Optional[str] = None,
    stats: Optional[Dict] = None,
    cache: Optional[Dict] = None,
    metrics: Optional[Dict] = None,
    workers: Optional[Dict[str, Dict]] = None,
    run_id: Optional[str] = None,
    points: Optional[Dict[str, Dict]] = None,
) -> Path:
    """Persist one run's summary; returns the manifest path.

    ``started_at``/``finished_at`` are wall-clock epoch seconds;
    ``metrics`` defaults to the process registry's current snapshot;
    ``run_id`` defaults to a fresh :func:`new_run_id` (pass the id the
    sweep already stamped into its journal/cache entries so they join);
    ``points`` is the per-point provenance map (``key -> {"state":
    "simulated"|"replayed", "run": origin-run-id, "figure": ...}``).
    """
    finished_at = time.time() if finished_at is None else finished_at
    experiments = list(experiments)
    digest = config_digest(experiments, kwargs)
    if run_id is None:
        run_id = new_run_id(experiments, kwargs, started_at)
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "run_id": run_id,
        "started_at": started_at,
        "finished_at": finished_at,
        "duration_seconds": max(0.0, finished_at - started_at),
        "hostname": socket.gethostname(),
        "git_rev": git_revision(),
        "config_digest": digest,
        "experiments": experiments,
        "kwargs": {str(key): value for key, value in (kwargs or {}).items()},
        "argv": list(argv) if argv is not None else None,
        "executor": executor,
        "engine": engine,
        "stats": dict(stats) if stats else {},
        "cache": dict(cache) if cache else {},
        "metrics": metrics if metrics is not None else process_snapshot(),
        "workers": {name: snap for name, snap in (workers or {}).items()},
        "points": {str(key): dict(value) for key, value in (points or {}).items()},
    }
    runs = _runs_dir(cache_dir)
    runs.mkdir(parents=True, exist_ok=True)
    path = runs / f"{run_id}.json"
    # Atomic like the result store: temp file + replace, so a concurrent
    # `repro runs` can never read a torn manifest.
    tmp = path.with_suffix(".json.tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True, default=str)
    os.replace(tmp, path)
    return path


def load_manifest(cache_dir, run_id: str) -> Optional[Dict]:
    """One manifest by id (or id prefix, if unambiguous); ``None`` if absent."""
    runs = _runs_dir(cache_dir)
    candidates = sorted(runs.glob(f"{run_id}*.json")) if runs.is_dir() else []
    exact = runs / f"{run_id}.json"
    if exact.is_file():
        candidates = [exact]
    if len(candidates) != 1:
        return None
    try:
        with candidates[0].open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def list_manifests(cache_dir) -> List[Dict]:
    """Every readable manifest under ``cache_dir``, oldest first.

    Unreadable/torn files are skipped (never raised): inspection of a
    shared cache directory must not fail because one old run was killed
    mid-write on a non-atomic filesystem.
    """
    runs = _runs_dir(cache_dir)
    if not runs.is_dir():
        return []
    manifests = []
    for path in sorted(runs.glob("*.json")):
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            continue
        if isinstance(payload, dict) and payload.get("run_id"):
            manifests.append(payload)
    manifests.sort(key=lambda manifest: (manifest.get("started_at") or 0, manifest["run_id"]))
    return manifests


def summarize_manifest(manifest: Dict) -> str:
    """One human line per run, for ``repro runs`` listings."""
    stats = manifest.get("stats") or {}
    duration = manifest.get("duration_seconds")
    executed = stats.get("executed", 0)
    rate = ""
    if duration and executed:
        rate = f", {executed / duration:.2f} points/s"
    experiments = ",".join(manifest.get("experiments") or []) or "?"
    return (
        f"{manifest.get('run_id', '?'):<32} "
        f"{time.strftime('%Y-%m-%d %H:%M:%S', time.localtime(manifest.get('started_at') or 0))}  "
        f"{duration if duration is None else format(duration, '7.1f')}s  "
        f"planned {stats.get('planned', 0)}, executed {executed}, "
        f"reused {stats.get('reused', 0)}{rate}  [{experiments}]"
    )
