"""Causal, structured events: the trace layer's in-process backbone.

An **event** is a small JSON-compatible dict describing one state
transition somewhere in the stack — a point leased, a commit landed, a
tenant blacklisted, a job finalised.  Every event carries:

* ``seq`` — a per-bus monotonically increasing sequence number, stamped
  under the bus lock so observers (journals, watch subscribers) always
  see one total order per bus,
* ``ts`` — wall-clock epoch seconds (observational only; nothing in the
  simulator reads it back),
* ``kind`` — a dotted transition name (``point.commit``, ``job.state``,
  ``tenant.blacklist``, …),
* free-form fields naming the causal ids involved (``run``, ``job``,
  ``point``, ``worker``, ``tenant``, ``figure``).

An :class:`EventBus` fans each event out to any number of subscriber
queues (the streaming ``watch`` protocol drains one queue per watching
connection) and to an optional append-only journal (see
:mod:`.trace`).  Dispatch happens inside the bus lock, so two events
emitted concurrently are delivered to every subscriber in the same
``seq`` order — the delta-ordering guarantee the watch tests pin.

Everything here is observe-only by construction: the simulator never
subscribes, events never feed scheduling decisions, and an emit on a
disabled bus is a single attribute check.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional

#: Ring-buffer depth for late subscribers (`watch --from-seq` catch-up).
DEFAULT_BUFFER = 4096


class EventBus:
    """Thread-safe fan-out of structured events.

    One bus per event domain: the sweep orchestrator uses the process
    bus (:func:`bus`), while each coordinator/service instance owns a
    private bus so tests and co-located daemons never cross-talk.
    """

    def __init__(self, buffer: int = DEFAULT_BUFFER, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._seq = 0
        self._recent: deque = deque(maxlen=buffer)
        self._subscribers: List["queue.Queue"] = []
        self._sinks: List[Callable[[Dict], None]] = []

    # ----------------------------------------------------------------- emit

    def emit(self, kind: str, **fields) -> Optional[Dict]:
        """Stamp and dispatch one event; returns it (``None`` when off).

        The event dict is shared by reference with every observer, so
        treat it as frozen after emit.
        """
        if not self.enabled:
            return None
        with self._lock:
            self._seq += 1
            event = {"seq": self._seq, "ts": time.time(), "kind": kind}
            event.update(fields)
            self._recent.append(event)
            for sink in self._sinks:
                try:
                    sink(event)
                except Exception:
                    # A broken journal must never take down the emitter.
                    pass
            for subscriber in self._subscribers:
                try:
                    subscriber.put_nowait(event)
                except queue.Full:
                    pass
        return event

    # ------------------------------------------------------------ observers

    def subscribe(self, maxsize: int = 0, from_seq: int = 0) -> "queue.Queue":
        """A fresh queue receiving every event from here on.

        ``from_seq`` replays buffered events with ``seq > from_seq``
        into the queue first (still under the lock, so replay and live
        delivery cannot interleave out of order).
        """
        subscriber: "queue.Queue" = queue.Queue(maxsize=maxsize)
        with self._lock:
            if from_seq is not None:
                for event in self._recent:
                    if event["seq"] > from_seq:
                        subscriber.put_nowait(event)
            self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: "queue.Queue") -> None:
        with self._lock:
            try:
                self._subscribers.remove(subscriber)
            except ValueError:
                pass

    def add_sink(self, sink: Callable[[Dict], None]) -> None:
        """Attach a synchronous sink (e.g. a journal's write method)."""
        with self._lock:
            self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[Dict], None]) -> None:
        with self._lock:
            try:
                self._sinks.remove(sink)
            except ValueError:
                pass

    # -------------------------------------------------------------- queries

    @property
    def seq(self) -> int:
        with self._lock:
            return self._seq

    def recent(self, from_seq: int = 0) -> List[Dict]:
        """Buffered events with ``seq > from_seq`` (oldest first)."""
        with self._lock:
            return [event for event in self._recent if event["seq"] > from_seq]


#: The process-wide bus local sweeps emit into (scoped by
#: :func:`isolated_bus` in tests).
_BUS = EventBus()


def bus() -> EventBus:
    """The process-wide event bus currently installed."""
    return _BUS


def emit(kind: str, **fields) -> Optional[Dict]:
    """Emit onto the process bus (the common call site form)."""
    return _BUS.emit(kind, **fields)


class isolated_bus:
    """Context manager installing a fresh process bus (tests)."""

    def __init__(self, enabled: bool = True) -> None:
        self._fresh = EventBus(enabled=enabled)
        self._previous: Optional[EventBus] = None

    def __enter__(self) -> EventBus:
        global _BUS
        self._previous = _BUS
        _BUS = self._fresh
        return self._fresh

    def __exit__(self, *exc) -> None:
        global _BUS
        _BUS = self._previous
