"""Persisted event traces: journals, Chrome-trace export, profiles.

The :mod:`.events` bus is in-process and ephemeral; this module is its
durable half:

* :class:`TraceJournal` — an append-only JSON-lines file under
  ``<cache-dir>/traces/``, one event per line, attached to a bus as a
  sink.  Writes are best-effort (a full disk disables the journal, it
  never takes down the run) and flushed per event so ``tail -f`` and
  crash-time forensics both work.
* :func:`read_journal` — the tolerant reader (torn trailing lines from
  a killed process are skipped, never raised).
* :func:`export_chrome_trace` — folds a journal's events into the
  Chrome trace-event format (the ``{"traceEvents": [...]}`` JSON that
  Perfetto / ``chrome://tracing`` load directly): workers and figures
  become "processes", paired start/end events become duration slices,
  everything else becomes instants.
* :func:`validate_chrome_trace` — the schema check CI's ``trace-smoke``
  job runs over an exported file.
* :func:`format_profile` — renders the ``engine.profile.*`` histogram
  counters a ``--profile-engine`` run folds into its manifest (the
  ``repro trace profile`` view).

Everything is stdlib-only, and nothing here is on any hot path: journals
see events at per-point/per-lease granularity, never per cycle.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, List, Optional

#: Subdirectory of the cache holding event journals.  Like ``runs/``,
#: it lives outside the ``??/`` entry fan-out so store globs skip it.
TRACES_DIR = "traces"

#: Kinds that end a span, mapped to the kind that opened it.  A span is
#: keyed by its causal id (see :data:`_SPAN_ID_FIELD`), so concurrent
#: spans of the same kind pair correctly.
_SPAN_END_TO_START = {
    "point.done": "point.start",
    "point.fail": "point.start",
    "phase.end": "phase.start",
    "point.commit": "lease.grant",
    "point.requeue": "lease.grant",
    "lease.expire": "lease.grant",
}

#: Which event field identifies the span for each start kind.
_SPAN_ID_FIELD = {
    "point.start": "point",
    "phase.start": "phase",
    "lease.grant": "point",
}


def traces_dir(cache_dir) -> Path:
    return Path(cache_dir) / TRACES_DIR


class TraceJournal:
    """Append-only JSON-lines event journal (a bus sink).

    Best-effort by design: the first ``OSError`` (disk full, directory
    vanished) closes the journal and silently drops later events — a
    broken observability layer must never fail a simulation run.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle = None
        self._dead = False

    def write(self, event: Dict) -> None:
        with self._lock:
            if self._dead:
                return
            try:
                if self._handle is None:
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                    self._handle = self.path.open("a", encoding="utf-8")
                self._handle.write(json.dumps(event, separators=(",", ":"), default=str))
                self._handle.write("\n")
                self._handle.flush()
            except OSError:
                self._dead = True
                try:
                    if self._handle is not None:
                        self._handle.close()
                except OSError:
                    pass
                self._handle = None

    def close(self) -> None:
        with self._lock:
            self._dead = True
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None


def read_journal(path) -> List[Dict]:
    """Every well-formed event in a journal, in file order.

    Torn or garbage lines (a process killed mid-write) are skipped, so
    replay after a crash sees everything that was durably recorded.
    """
    events: List[Dict] = []
    try:
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(event, dict) and event.get("kind"):
                    events.append(event)
    except OSError:
        return []
    return events


def list_journals(cache_dir) -> List[Path]:
    """Every journal file under the cache's ``traces/``, sorted by name."""
    root = traces_dir(cache_dir)
    if not root.is_dir():
        return []
    return sorted(root.glob("*.jsonl"))


# ------------------------------------------------------------- chrome export


def _track_name(event: Dict) -> str:
    """The Perfetto "process" an event belongs to: worker, else tenant,
    else figure, else the run itself."""
    for field in ("worker", "tenant", "figure"):
        value = event.get(field)
        if value:
            return f"{field}:{value}"
    return "run"


def _slice_name(start: Dict) -> str:
    kind = start.get("kind")
    if kind == "phase.start":
        return str(start.get("phase", "phase"))
    point = str(start.get("point", ""))
    figure = start.get("figure")
    short = point[:12] if point else "?"
    if kind == "lease.grant":
        return f"lease {short}"
    return f"{figure} {short}" if figure else short


def export_chrome_trace(events: List[Dict]) -> Dict:
    """Fold journal events into a Chrome trace-event JSON document.

    Start/end kind pairs (``point.start``/``point.done``,
    ``lease.grant``/``point.commit``, ``phase.start``/``phase.end``)
    become ``"X"`` complete slices; every other event — and any start
    left unpaired at the end of the journal — becomes an ``"i"``
    instant, so nothing recorded is dropped from the visualisation.
    """
    trace_events: List[Dict] = []
    pids: Dict[str, int] = {}
    lanes: Dict[int, List[bool]] = {}
    open_spans: Dict[tuple, Dict] = {}

    def _pid(track: str) -> int:
        pid = pids.get(track)
        if pid is None:
            pid = len(pids) + 1
            pids[track] = pid
            lanes[pid] = []
            trace_events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "name": "process_name",
                    "args": {"name": track},
                }
            )
        return pid

    def _claim_lane(pid: int) -> int:
        busy = lanes[pid]
        for index, taken in enumerate(busy):
            if not taken:
                busy[index] = True
                return index + 1
        busy.append(True)
        return len(busy)

    def _micros(ts) -> float:
        try:
            return float(ts) * 1e6
        except (TypeError, ValueError):
            return 0.0

    for event in events:
        kind = event.get("kind", "")
        if kind in _SPAN_ID_FIELD:
            span_id = event.get(_SPAN_ID_FIELD[kind])
            pid = _pid(_track_name(event))
            open_spans[(kind, span_id)] = {
                "event": event,
                "pid": pid,
                "tid": _claim_lane(pid),
            }
            continue
        start_kind = _SPAN_END_TO_START.get(kind)
        if start_kind is not None:
            span_id = event.get(_SPAN_ID_FIELD[start_kind])
            span = open_spans.pop((start_kind, span_id), None)
            if span is not None:
                start = span["event"]
                begin = _micros(start.get("ts"))
                end = _micros(event.get("ts"))
                args = {k: v for k, v in start.items() if k not in ("seq", "ts")}
                args["end_kind"] = kind
                trace_events.append(
                    {
                        "ph": "X",
                        "pid": span["pid"],
                        "tid": span["tid"],
                        "ts": begin,
                        "dur": max(0.0, end - begin),
                        "name": _slice_name(start),
                        "args": args,
                    }
                )
                lanes[span["pid"]][span["tid"] - 1] = False
                continue
        # Plain instant (including ends whose start was never journaled).
        pid = _pid(_track_name(event))
        trace_events.append(
            {
                "ph": "i",
                "s": "p",
                "pid": pid,
                "tid": 0,
                "ts": _micros(event.get("ts")),
                "name": kind or "event",
                "args": {k: v for k, v in event.items() if k not in ("seq", "ts")},
            }
        )

    # Unpaired starts (run still in flight / journal truncated).
    for span in open_spans.values():
        start = span["event"]
        trace_events.append(
            {
                "ph": "i",
                "s": "p",
                "pid": span["pid"],
                "tid": span["tid"],
                "ts": _micros(start.get("ts")),
                "name": f"{_slice_name(start)} (unfinished)",
                "args": {k: v for k, v in start.items() if k not in ("seq", "ts")},
            }
        )
        lanes[span["pid"]][span["tid"] - 1] = False

    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


#: Phase kinds Perfetto accepts that the exporter can emit.
_VALID_PHASES = {"X", "i", "M", "B", "E"}


def validate_chrome_trace(payload) -> List[str]:
    """Problems making ``payload`` unloadable as a Chrome trace; empty
    when sound.  CI's ``trace-smoke`` job fails a run on any problem."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{where}: bad ph {phase!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing name")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: missing {field}")
        if phase in ("X", "i", "B", "E"):
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"{where}: missing ts")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append(f"{where}: bad dur {duration!r}")
    return problems


# ------------------------------------------------------------------ profiles

#: Prefix every engine profile counter shares (see
#: :class:`repro.sim.engine.EngineProfile`).
PROFILE_PREFIX = "engine.profile."


def profile_counters(counters: Dict[str, int]) -> Dict[str, int]:
    """The ``engine.profile.*`` subset of a counters dict, unprefixed."""
    return {
        name[len(PROFILE_PREFIX):]: value
        for name, value in (counters or {}).items()
        if name.startswith(PROFILE_PREFIX) and isinstance(value, (int, float))
    }


def _histogram_lines(title: str, buckets: Dict[str, int], unit: str) -> List[str]:
    total = sum(buckets.values())
    if not total:
        return []
    lines = [f"{title} ({total} samples)"]
    peak = max(buckets.values())

    def _bucket_sort(item):
        label = item[0]
        digits = label.rstrip("+")
        return (0, int(digits)) if digits.isdigit() else (1, label)

    for label, count in sorted(buckets.items(), key=_bucket_sort):
        bar = "#" * max(1, round(24 * count / peak))
        share = count / total
        lines.append(f"  {label:>8} {unit:<7} {count:>10} ({share:5.1%}) {bar}")
    return lines


def format_profile(counters: Dict[str, int]) -> str:
    """Render a manifest's engine-profile counters for the terminal.

    Returns an explanatory notice when the run was not profiled (the
    counters only exist under ``--profile-engine``).
    """
    profile = profile_counters(counters)
    if not profile:
        return (
            "no engine profile in this run "
            "(re-run with --profile-engine to record one)"
        )
    histograms: Dict[str, Dict[str, int]] = {}
    scalars: Dict[str, int] = {}
    for name, value in profile.items():
        head, _, bucket = name.rpartition(".")
        if head in ("serve_window_len", "skip_len", "window_break"):
            histograms.setdefault(head, {})[bucket] = int(value)
        else:
            scalars[name] = int(value)
    lines: List[str] = []
    lines += _histogram_lines(
        "serve-window length", histograms.get("serve_window_len", {}), "cycles"
    )
    lines += _histogram_lines("skip length", histograms.get("skip_len", {}), "cycles")
    breaks = histograms.get("window_break", {})
    if breaks:
        total = sum(breaks.values())
        lines.append(f"window breaks ({total} windows)")
        for cause, count in sorted(breaks.items(), key=lambda item: -item[1]):
            lines.append(f"  {cause:<12} {count:>10} ({count / total:5.1%})")
    if scalars:
        lines.append("dispatch")
        for name in sorted(scalars):
            lines.append(f"  {name:<24} {scalars[name]:>12}")
    return "\n".join(lines)


def load_profile(manifest: Dict) -> Optional[Dict[str, int]]:
    """A manifest's merged counters dict, or ``None`` when absent."""
    metrics = manifest.get("metrics")
    if not isinstance(metrics, dict):
        return None
    counters = metrics.get("counters")
    return counters if isinstance(counters, dict) else None
