"""Process-local metrics: counters, gauges and timers with snapshot/merge.

The whole repository observes itself through one tiny model:

* a **counter** is a monotonically growing integer (``cache.hits``,
  ``sim.cycles``),
* a **gauge** is a last-written scalar whose merge takes the maximum
  (``worker.queue_depth`` style values, where "the worst seen anywhere"
  is the useful aggregate),
* a **timer** is a duration distribution folded to ``count / total /
  min / max`` (``sim.run_seconds``, ``executor.point_seconds``).

Every process owns one default :class:`MetricsRegistry`; components
record into it through the module-level helpers (:func:`counter`,
:func:`gauge`, :func:`observe`).  A registry is *observational only*: it
never feeds back into simulation state, scheduling decisions or cache
keys, so enabling or disabling telemetry cannot change a single result
bit (the equivalence and fuzz suites run with it enabled).

Aggregation across processes and machines goes through **snapshots** —
plain JSON-compatible dicts produced by :meth:`MetricsRegistry.snapshot`
and combined with :func:`merge_snapshots`.  The merge is commutative and
associative (counters add, timers fold, gauges take the max), so a fleet
of per-worker registries folds to the same totals regardless of arrival
order: deterministic aggregation without any cross-process locking.

Everything is standard library only.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

#: Version of the snapshot layout, carried inside every snapshot so wire
#: peers and manifest readers can detect a layout they do not speak.
SNAPSHOT_SCHEMA = 1


class MetricsRegistry:
    """A named bag of counters, gauges and timers.

    Thread-safe: coordinator connection threads, worker heartbeats and
    pool callbacks all record into the same process registry.  The lock
    is only ever held for a few dict operations, and recording happens
    at per-simulation / per-point granularity — never per cycle — so the
    registry stays invisible on the simulation hot path.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, Dict[str, float]] = {}
        #: Total mutating operations ever applied.  The observe-only
        #: benchmark uses this to *prove* telemetry does O(1) work per
        #: simulation instead of trusting a noisy wall-clock comparison.
        self.op_count = 0

    # --------------------------------------------------------------- recording

    def counter(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name`` (created at zero)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value
            self.op_count += 1

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins locally)."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value
            self.op_count += 1

    def observe(self, name: str, seconds: float) -> None:
        """Fold one duration into the timer ``name``."""
        if not self.enabled:
            return
        with self._lock:
            timer = self._timers.get(name)
            if timer is None:
                self._timers[name] = {
                    "count": 1,
                    "total": seconds,
                    "min": seconds,
                    "max": seconds,
                }
            else:
                timer["count"] += 1
                timer["total"] += seconds
                if seconds < timer["min"]:
                    timer["min"] = seconds
                if seconds > timer["max"]:
                    timer["max"] = seconds
            self.op_count += 1

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into the timer ``name``."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # --------------------------------------------------------------- snapshots

    def snapshot(self) -> Dict:
        """A point-in-time, JSON-compatible copy of every metric."""
        with self._lock:
            return {
                "schema": SNAPSHOT_SCHEMA,
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {name: dict(timer) for name, timer in self._timers.items()},
            }

    def merge_snapshot(self, snapshot: Optional[Dict]) -> None:
        """Fold another registry's snapshot into this one (see
        :func:`merge_snapshots` for the per-kind rules)."""
        if snapshot is None or not self.enabled:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snapshot.get("gauges", {}).items():
                current = self._gauges.get(name)
                if current is None or value > current:
                    self._gauges[name] = value
            for name, timer in snapshot.get("timers", {}).items():
                mine = self._timers.get(name)
                if mine is None:
                    self._timers[name] = dict(timer)
                else:
                    mine["count"] += timer["count"]
                    mine["total"] += timer["total"]
                    mine["min"] = min(mine["min"], timer["min"])
                    mine["max"] = max(mine["max"], timer["max"])
            self.op_count += 1

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()
            self.op_count = 0


def merge_snapshots(*snapshots: Optional[Dict]) -> Dict:
    """Fold any number of snapshots into one.

    Counters add, timers fold (count/total add, min/max extremise),
    gauges take the maximum — every rule is commutative and associative,
    so per-process registries aggregate deterministically no matter the
    order workers report in.  ``None`` entries are skipped.
    """
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged.snapshot()


# ------------------------------------------------------------------- process registry

#: The process-wide default registry every component records into.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry currently installed."""
    return _REGISTRY


def counter(name: str, value: int = 1) -> None:
    _REGISTRY.counter(name, value)


def gauge(name: str, value: float) -> None:
    _REGISTRY.gauge(name, value)


def observe(name: str, seconds: float) -> None:
    _REGISTRY.observe(name, seconds)


def snapshot() -> Dict:
    return _REGISTRY.snapshot()


def merge_into_process(other: Optional[Dict]) -> None:
    """Fold a remote snapshot (e.g. a worker's) into the process registry."""
    _REGISTRY.merge_snapshot(other)


def set_enabled(enabled: bool) -> bool:
    """Turn process-wide telemetry on/off; returns the previous state."""
    previous = _REGISTRY.enabled
    _REGISTRY.enabled = enabled
    return previous


def enabled() -> bool:
    return _REGISTRY.enabled


@contextmanager
def disabled() -> Iterator[None]:
    """Scope with process-wide telemetry off (restored on exit)."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


@contextmanager
def isolated(enabled: bool = True) -> Iterator[MetricsRegistry]:
    """Install a fresh process registry for the scope (tests, benchmarks).

    Everything recorded inside the scope lands in (and only in) the
    yielded registry; the previous registry — and whatever it already
    held — is restored untouched on exit.
    """
    global _REGISTRY
    previous = _REGISTRY
    fresh = MetricsRegistry(enabled=enabled)
    _REGISTRY = fresh
    try:
        yield fresh
    finally:
        _REGISTRY = previous


# ------------------------------------------------------------------- figure scope

#: Thread-local figure label for per-figure attribution of engine
#: profile counters (set by executors/workers around each point).
_FIGURE_SCOPE = threading.local()


@contextmanager
def figure_scope(name: Optional[str]) -> Iterator[None]:
    """Attribute simulations in this scope to the figure ``name``.

    Only the ``engine.profile.*`` counters are mirrored per figure
    (as ``figure.<name>.engine.profile.*``): everything else already
    has cheaper per-figure attribution paths (the cache stores figure
    labels in entry payloads), and mirroring all counters would double
    the registry for no reader.
    """
    previous = getattr(_FIGURE_SCOPE, "name", None)
    _FIGURE_SCOPE.name = name
    try:
        yield
    finally:
        _FIGURE_SCOPE.name = previous


def current_figure() -> Optional[str]:
    return getattr(_FIGURE_SCOPE, "name", None)


# ------------------------------------------------------------------- profiling

#: Process-wide opt-in for engine phase profiling (``--profile-engine``).
#: Separate from ``enabled`` because profiling adds per-window/per-skip
#: bookkeeping inside the engines — cheap, but not free like the
#: per-simulation counters — so it must never be on by default.
_PROFILING = False


def set_profiling(enabled: bool) -> bool:
    """Turn engine phase profiling on/off; returns the previous state."""
    global _PROFILING
    previous = _PROFILING
    _PROFILING = enabled
    return previous


def profiling() -> bool:
    return _PROFILING


@contextmanager
def profiled(enabled: bool = True) -> Iterator[None]:
    """Scope with engine profiling forced on/off (restored on exit)."""
    previous = set_profiling(enabled)
    try:
        yield
    finally:
        set_profiling(previous)


# ------------------------------------------------------------------- domain hooks


def record_simulation(engine_name: str, cycles: int, seconds: float, engine_metrics: Dict) -> None:
    """Fold one completed simulation into the process registry.

    Called once per :meth:`repro.sim.system.System.run` — O(1) work per
    *simulation*, nothing per cycle — with the engine's own
    instrumentation (serve windows, window cycles) exported as
    first-class counters.
    """
    reg = _REGISTRY
    if not reg.enabled:
        return
    reg.counter("sim.runs")
    reg.counter(f"sim.runs.{engine_name}")
    reg.counter("sim.cycles", cycles)
    reg.observe("sim.run_seconds", seconds)
    figure = current_figure()
    for name, value in engine_metrics.items():
        if value:
            reg.counter(name, value)
            if figure and name.startswith("engine.profile."):
                reg.counter(f"figure.{figure}.{name}", value)
