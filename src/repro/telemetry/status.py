"""Client side of the live status surface (``repro status``).

A running coordinator answers ``{"type": "status"}`` with a structured
payload: fleet progress, per-worker liveness and lease state, cache hit
rate and per-figure completion/ETA.  This module fetches that payload
over the ordinary JSON-lines protocol, validates its shape (CI smoke
tests fail a run on malformed metrics), and renders it for a terminal.

The fetch is a plain one-shot request/response on a fresh connection:
the coordinator treats a status client like any other peer, so polling
never interferes with lease accounting or worker heartbeats.
"""

from __future__ import annotations

import math
import socket
import time
from typing import Dict, List, Optional, Tuple

from ..distributed.protocol import (
    PROTOCOL_VERSION,
    encode_message,
    read_message,
)

#: Top-level fields a well-formed status payload must carry.  CI's smoke
#: job treats any absence as a hard failure.
REQUIRED_FIELDS = (
    "type",
    "protocol",
    "points",
    "pending",
    "completed",
    "failed",
    "leases",
    "workers",
    "elapsed_seconds",
    "points_per_second",
    "cache",
    "figures",
    "metrics",
)


def fetch_status(address: Tuple[str, int], timeout: float = 5.0) -> Dict:
    """One status payload from the coordinator at ``address``.

    Raises ``OSError`` if the coordinator is unreachable and
    ``ValueError`` if it answers with something other than a status
    payload (e.g. a pre-telemetry coordinator that does not speak the
    message kind).
    """
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.sendall(encode_message({"type": "status", "protocol": PROTOCOL_VERSION}))
        reader = sock.makefile("rb")
        try:
            reply = read_message(reader)
        finally:
            reader.close()
    if reply is None:
        raise ValueError("coordinator closed the connection without a status reply")
    if reply.get("type") != "status":
        detail = reply.get("error") or reply.get("type")
        raise ValueError(f"coordinator does not support status queries ({detail!r})")
    return reply


def validate_status(payload: Dict) -> List[str]:
    """Names of malformed/missing fields; empty when the payload is sound."""
    problems = [field for field in REQUIRED_FIELDS if field not in payload]
    for field in ("points", "pending", "completed", "failed"):
        value = payload.get(field)
        if field not in problems and not isinstance(value, int):
            problems.append(field)
    if "workers" not in problems and not isinstance(payload.get("workers"), dict):
        problems.append("workers")
    if "figures" not in problems and not isinstance(payload.get("figures"), dict):
        problems.append("figures")
    metrics = payload.get("metrics")
    if "metrics" not in problems:
        if not isinstance(metrics, dict) or not isinstance(metrics.get("counters"), dict):
            problems.append("metrics")
    # Service-only fields: validated when present, never required — a
    # plain coordinator (or an older service) simply omits them.
    if "jobs" in payload and not isinstance(payload.get("jobs"), dict):
        problems.append("jobs")
    if "scheduler" in payload and not isinstance(payload.get("scheduler"), dict):
        problems.append("scheduler")
    return problems


def _format_eta(seconds: Optional[float]) -> str:
    # A figure whose first point lands from cache reports a 0s elapsed
    # window, which turns the remaining/rate division into inf (or a
    # negative value once clocks skew): render `--`, never nonsense.
    if seconds is None or not isinstance(seconds, (int, float)):
        return "--"
    if not math.isfinite(seconds) or seconds < 0:
        return "--"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


#: Event fields rendered (in this order) by :func:`format_event`.
_EVENT_FIELDS = ("job", "state", "worker", "tenant", "figure", "phase", "run", "reason")


def format_event(event: Dict) -> str:
    """One `repro watch` line for a pushed event dict."""
    ts = event.get("ts")
    if isinstance(ts, (int, float)) and math.isfinite(ts):
        stamp = time.strftime("%H:%M:%S", time.localtime(ts))
    else:
        stamp = "--:--:--"
    kind = str(event.get("kind", "?"))
    parts = []
    point = event.get("point")
    if isinstance(point, str) and point:
        # Cache keys are long hex digests; a short prefix identifies the
        # point just as well on one screen.
        parts.append(f"point={point[:12]}")
    for name in _EVENT_FIELDS:
        value = event.get(name)
        if value not in (None, "", [], {}):
            parts.append(f"{name}={value}")
    seq = event.get("seq")
    prefix = f"{stamp} #{seq:<6}" if isinstance(seq, int) else f"{stamp}        "
    return f"{prefix} {kind:<18} {' '.join(parts)}".rstrip()


def format_status(payload: Dict, *, now: Optional[float] = None) -> str:
    """Render a status payload as the multi-line `repro status` view."""
    now = time.time() if now is None else now
    lines = []
    points = payload.get("points", 0)
    completed = payload.get("completed", 0)
    rate = payload.get("points_per_second") or 0.0
    lines.append(
        f"points   {completed}/{points} done, {payload.get('pending', 0)} pending, "
        f"{payload.get('failed', 0)} failed, {payload.get('leases', 0)} leased "
        f"({rate:.2f} points/s, up {_format_eta(payload.get('elapsed_seconds'))})"
    )

    cache = payload.get("cache") or {}
    hits = cache.get("hits", 0)
    misses = cache.get("misses", 0)
    total = hits + misses
    ratio = f"{hits / total:.0%}" if total else "n/a"
    lines.append(f"cache    {hits} hits / {misses} misses (hit rate {ratio})")

    figures = payload.get("figures") or {}
    for name in sorted(figures):
        figure = figures[name]
        done = figure.get("completed", 0)
        figure_points = figure.get("points", 0)
        eta = _format_eta(figure.get("eta_seconds"))
        lines.append(f"figure   {name:<10} {done}/{figure_points} done, eta {eta}")

    workers = payload.get("workers") or {}
    if not workers:
        lines.append("workers  (none connected yet)")
    for name in sorted(workers):
        worker = workers[name]
        age = worker.get("last_seen_seconds")
        seen = "never" if age is None else f"{age:.1f}s ago"
        lines.append(
            f"worker   {name:<20} leases {worker.get('leases', 0)}, "
            f"completed {worker.get('completed', 0)}, last seen {seen}"
        )

    # Jobs table: only services report one (a plain coordinator has no
    # notion of jobs, so the field is simply absent).
    jobs = payload.get("jobs")
    if isinstance(jobs, dict):
        if not jobs:
            lines.append("jobs     (none submitted yet)")
        for job_id in sorted(jobs):
            job = jobs[job_id]
            state = job.get("state", "?")
            label = ",".join(job.get("experiments") or []) or "?"
            lines.append(
                f"job      {job_id:<10} {state:<10} {job.get('priority', '?'):<11} "
                f"{job.get('completed', 0)}/{job.get('points', 0)} points, "
                f"reused {job.get('reused', 0)}  [{label}]  "
                f"tenant {job.get('tenant', '?')}"
            )
        scheduler = payload.get("scheduler")
        if isinstance(scheduler, dict):
            blacklisted = sum(
                1 for tenant in (scheduler.get("jobs") or {}).values()
                if isinstance(tenant, dict) and tenant.get("blacklisted")
            )
            lines.append(
                f"fairness quantum {scheduler.get('service_quantum', '?')}, "
                f"clearing every {scheduler.get('clearing_interval', '?')}s "
                f"({scheduler.get('clear_events', 0)} clearings, "
                f"{blacklisted} currently blacklisted)"
            )

    counters = (payload.get("metrics") or {}).get("counters") or {}

    def _counter(name: str) -> int:
        # Coordinator and service use prefixed counter names; show
        # whichever peer answered.
        return counters.get(f"coordinator.{name}", 0) + counters.get(f"service.{name}", 0)

    lines.append(
        f"leases   {_counter('lease_grants')} granted, "
        f"{_counter('lease_expired')} expired, {_counter('retries')} retried"
    )

    # Generated-source cache traffic, present whenever some tenant or
    # worker selected the compiled engine (the counters travel in the
    # worker metric snapshots merged into the payload).
    if any(name.startswith("codegen.") for name in counters):
        lines.append(
            f"codegen  {counters.get('codegen.emits', 0)} emitted, "
            f"{counters.get('codegen.disk_hits', 0)} disk hits, "
            f"{counters.get('codegen.memory_hits', 0)} memory hits, "
            f"{counters.get('codegen.corrupt', 0)} corrupt"
        )
    return "\n".join(lines)
