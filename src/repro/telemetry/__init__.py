"""Observability for the reproduction: metrics, traces, status, logs.

Six small pieces, all standard library:

* :mod:`.metrics` — process-local counters/gauges/timers with a
  deterministic snapshot-and-merge model (observe-only; never feeds
  back into simulation state or cache keys),
* :mod:`.events` — the causal event bus: sequenced, structured
  transition events fanned out to watch subscribers and journals,
* :mod:`.trace` — persisted event journals under ``<cache-dir>/traces/``
  plus the Chrome trace-event exporter and engine-profile renderer,
* :mod:`.manifest` — one persisted run manifest per sweep, written next
  to the content-addressed cache,
* :mod:`.status` — client + validation for the coordinator's live
  ``status`` payload (the ``repro status`` view),
* :mod:`.logs` — the shared ``logging`` setup behind
  ``--verbose``/``--quiet``.
"""

from .events import EventBus, bus, emit, isolated_bus
from .metrics import (
    SNAPSHOT_SCHEMA,
    MetricsRegistry,
    counter,
    current_figure,
    disabled,
    enabled,
    figure_scope,
    gauge,
    isolated,
    merge_into_process,
    merge_snapshots,
    observe,
    profiled,
    profiling,
    record_simulation,
    registry,
    set_enabled,
    set_profiling,
    snapshot,
)
from .trace import (
    TraceJournal,
    export_chrome_trace,
    format_profile,
    read_journal,
    traces_dir,
    validate_chrome_trace,
)

__all__ = [
    "SNAPSHOT_SCHEMA",
    "EventBus",
    "MetricsRegistry",
    "TraceJournal",
    "bus",
    "counter",
    "current_figure",
    "disabled",
    "emit",
    "enabled",
    "export_chrome_trace",
    "figure_scope",
    "format_profile",
    "gauge",
    "isolated",
    "isolated_bus",
    "merge_into_process",
    "merge_snapshots",
    "observe",
    "profiled",
    "profiling",
    "read_journal",
    "record_simulation",
    "registry",
    "set_enabled",
    "set_profiling",
    "snapshot",
    "traces_dir",
    "validate_chrome_trace",
]
