"""Observability for the reproduction: metrics, manifests, status, logs.

Four small pieces, all standard library:

* :mod:`.metrics` — process-local counters/gauges/timers with a
  deterministic snapshot-and-merge model (observe-only; never feeds
  back into simulation state or cache keys),
* :mod:`.manifest` — one persisted run manifest per sweep, written next
  to the content-addressed cache,
* :mod:`.status` — client + validation for the coordinator's live
  ``status`` payload (the ``repro status`` view),
* :mod:`.logs` — the shared ``logging`` setup behind
  ``--verbose``/``--quiet``.
"""

from .metrics import (
    SNAPSHOT_SCHEMA,
    MetricsRegistry,
    counter,
    disabled,
    enabled,
    gauge,
    isolated,
    merge_into_process,
    merge_snapshots,
    observe,
    record_simulation,
    registry,
    set_enabled,
    snapshot,
)

__all__ = [
    "SNAPSHOT_SCHEMA",
    "MetricsRegistry",
    "counter",
    "disabled",
    "enabled",
    "gauge",
    "isolated",
    "merge_into_process",
    "merge_snapshots",
    "observe",
    "record_simulation",
    "registry",
    "set_enabled",
    "snapshot",
]
