"""Rendering and export of orchestrated experiment results.

The per-figure modules already know how to render their own tables
(``format_table``); this module stitches those tables into a sweep
report, adds orchestration bookkeeping (points simulated vs. reused
from cache), and exports the raw data dicts as JSON for downstream
tooling (plotting, regression tracking, dashboards).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, Optional

from .sweep import SweepStats, resolve_experiment


def format_experiment(label: str, data: Dict) -> str:
    """Render one experiment's table using its own formatter."""
    module = resolve_experiment(label)
    return module.format_table(data)


def format_sweep(results: Dict[str, Dict], stats: Optional[SweepStats] = None) -> str:
    """Render a multi-experiment sweep as one report."""
    sections = []
    for label, data in results.items():
        sections.append(f"=== {label} ===")
        sections.append(format_experiment(label, data))
        sections.append("")
    if stats is not None:
        sections.append(format_stats(stats))
    return "\n".join(sections).rstrip("\n")


def format_stats(stats: SweepStats) -> str:
    """One-line orchestration summary."""
    line = (
        f"[orchestration] simulation points: {stats.planned} "
        f"(executed {stats.executed}, cache-reused {stats.reused})"
    )
    elapsed = getattr(stats, "elapsed", 0.0)
    if elapsed > 0:
        line += f" in {elapsed:.1f}s"
        if stats.executed:
            line += f" ({stats.executed / elapsed:.2f} points/s)"
    return line


def _json_default(value):
    """Fallback encoder for the rare non-JSON value inside a data dict."""
    if isinstance(value, (set, frozenset, tuple)):
        return sorted(value) if isinstance(value, (set, frozenset)) else list(value)
    return str(value)


def canonical_data(results):
    """Round-trip ``results`` through JSON encoding, as the wire would.

    Byte-identity between local runs and service-fetched results hinges
    on this: ``sort_keys`` orders *int* dict keys numerically but their
    post-wire *string* forms lexicographically, so both paths must
    stringify keys the same way before the sorted dump.  A local export
    and one decoded from the daemon then serialise identically.
    """
    return json.loads(json.dumps(results, default=_json_default))


def dump_json(results, destination: str | Path) -> None:
    """Write the raw experiment data dicts as JSON (``-`` for stdout).

    Accepts the legacy plain dict or any mapping (a
    :class:`~repro.orchestration.request.SweepResult`); the payload is
    canonicalised (see :func:`canonical_data`) so exports are
    byte-identical whether results were computed locally or fetched
    from a sweep service.
    """
    results = canonical_data(dict(results))
    text = json.dumps(results, indent=2, sort_keys=True)
    if str(destination) == "-":
        sys.stdout.write(text + "\n")
        return
    path = Path(destination)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text + "\n", encoding="utf-8")
