"""Rendering and export of orchestrated experiment results.

The per-figure modules already know how to render their own tables
(``format_table``); this module stitches those tables into a sweep
report, adds orchestration bookkeeping (points simulated vs. reused
from cache), and exports the raw data dicts as JSON for downstream
tooling (plotting, regression tracking, dashboards).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, Optional

from .sweep import SweepStats, resolve_experiment


def format_experiment(label: str, data: Dict) -> str:
    """Render one experiment's table using its own formatter."""
    module = resolve_experiment(label)
    return module.format_table(data)


def format_sweep(results: Dict[str, Dict], stats: Optional[SweepStats] = None) -> str:
    """Render a multi-experiment sweep as one report."""
    sections = []
    for label, data in results.items():
        sections.append(f"=== {label} ===")
        sections.append(format_experiment(label, data))
        sections.append("")
    if stats is not None:
        sections.append(format_stats(stats))
    return "\n".join(sections).rstrip("\n")


def format_stats(stats: SweepStats) -> str:
    """One-line orchestration summary."""
    line = (
        f"[orchestration] simulation points: {stats.planned} "
        f"(executed {stats.executed}, cache-reused {stats.reused})"
    )
    elapsed = getattr(stats, "elapsed", 0.0)
    if elapsed > 0:
        line += f" in {elapsed:.1f}s"
        if stats.executed:
            line += f" ({stats.executed / elapsed:.2f} points/s)"
    return line


def _json_default(value):
    """Fallback encoder for the rare non-JSON value inside a data dict."""
    if isinstance(value, (set, frozenset, tuple)):
        return sorted(value) if isinstance(value, (set, frozenset)) else list(value)
    return str(value)


def dump_json(results: Dict[str, Dict], destination: str | Path) -> None:
    """Write the raw experiment data dicts as JSON (``-`` for stdout)."""
    text = json.dumps(results, indent=2, sort_keys=True, default=_json_default)
    if str(destination) == "-":
        sys.stdout.write(text + "\n")
        return
    path = Path(destination)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text + "\n", encoding="utf-8")
