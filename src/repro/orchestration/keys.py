"""Stable content-addressed keys for simulation points.

A *simulation point* is fully determined by the traces it executes and
the :class:`~repro.sim.config.SimulationConfig` it executes them under;
everything else (metrics, tables, figures) is derived arithmetic.  The
key of a point is the SHA-256 digest of a canonical JSON encoding of

* a schema version (bumped whenever the meaning of cached results
  changes, which invalidates every old cache entry at once),
* every field of the simulation configuration (including the nested
  controller/core/DRAM/DR-STRaNGe dataclasses), and
* the full content of every trace (name, metadata and the complete
  entry list — not just the generator parameters), so a change anywhere
  in trace generation changes the key.

Python's built-in ``hash`` is unsuitable because it is salted per
process; these keys must be stable across processes, CLI invocations
and machines.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, Sequence

from ..cpu.trace import Trace
from ..sim.config import SimulationConfig

#: Bump to invalidate all previously cached results (e.g. after a change
#: to the simulator that alters results without changing configs/traces).
SCHEMA_VERSION = 1


def canonical_json(payload) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def config_fingerprint(config: SimulationConfig) -> Dict:
    """Every *result-affecting* configuration field as a plain JSON dict.

    The simulation engine (``"event"`` vs ``"tick"``) is excluded: both
    engines produce bit-identical results (enforced by the equivalence
    test suite), so results cached under one engine stay valid — and are
    shared — under the other.
    """
    fields = dataclasses.asdict(config)
    fields.pop("engine", None)
    return fields


def trace_fingerprint(trace: Trace) -> Dict:
    """Content digest of one trace (name, metadata, full entry list)."""
    hasher = hashlib.sha256()
    for entry in trace.entries:
        hasher.update(
            b"%d,%d,%d,%d;"
            % (
                entry.bubbles,
                -1 if entry.address is None else entry.address,
                -1 if entry.write_address is None else entry.write_address,
                entry.rng_bits,
            )
        )
    return {
        "name": trace.name,
        "metadata": {str(k): trace.metadata[k] for k in sorted(trace.metadata, key=str)},
        "entries": hasher.hexdigest(),
        "num_entries": len(trace.entries),
    }


def point_key(traces: Sequence[Trace], config: SimulationConfig) -> str:
    """Content-addressed key of one simulation point."""
    payload = {
        "schema": SCHEMA_VERSION,
        "config": config_fingerprint(config),
        "traces": [trace_fingerprint(trace) for trace in traces],
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
