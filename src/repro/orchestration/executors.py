"""Pluggable execution backends for the orchestrator's execute phase.

:func:`~repro.orchestration.sweep.execute_units` delegates the actual
simulation of pending points to an :class:`Executor`.  All executors
share one contract: every unit handed to ``execute`` ends up committed
to the result store (content-addressed, so completion order and even
duplicate commits are irrelevant), and the replay phase then produces
output bit-identical to a serial run.

Built-ins:

* :class:`SerialExecutor` — one point after another, in-process.
* :class:`ProcessPoolExecutor` — a local ``multiprocessing`` pool (the
  historical ``--jobs N`` behaviour, and still the default).
* :class:`~repro.distributed.DistributedExecutor` (in
  :mod:`repro.distributed`) — shards points across worker processes on
  any machines via the coordinator/worker protocol.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Sequence, Tuple

from ..cpu.trace import Trace
from ..sim.config import SimulationConfig
from ..sim.system import System


class Executor:
    """Simulates a batch of pending units into a result store."""

    #: CLI / reporting name of the executor.
    name = "base"

    def execute(self, units: Sequence, store) -> int:
        """Simulate every unit and commit each result to ``store``.

        Returns the number of points simulated.  Implementations may
        reorder and parallelise freely; the store is content-addressed.
        """
        raise NotImplementedError


class SerialExecutor(Executor):
    """In-process, one point at a time (useful as a reference and for tests)."""

    name = "serial"

    def execute(self, units: Sequence, store) -> int:
        for unit in units:
            store.put(unit.key, System(unit.traces, unit.config).run())
        return len(units)


def _execute_unit(payload: Tuple[str, List[Trace], SimulationConfig]):
    """Pool worker: simulate one point (must stay module-level for pickling)."""
    key, traces, config = payload
    return key, System(traces, config).run()


class ProcessPoolExecutor(Executor):
    """A local ``multiprocessing`` pool of ``jobs`` worker processes."""

    name = "process"

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = max(1, int(jobs))

    def execute(self, units: Sequence, store) -> int:
        units = list(units)
        if self.jobs > 1 and len(units) > 1:
            payloads = [(unit.key, unit.traces, unit.config) for unit in units]
            processes = min(self.jobs, len(units))
            with multiprocessing.get_context().Pool(processes=processes) as pool:
                for key, result in pool.imap_unordered(_execute_unit, payloads):
                    store.put(key, result)
        else:
            for unit in units:
                store.put(unit.key, System(unit.traces, unit.config).run())
        return len(units)


def default_executor(jobs: int) -> Executor:
    """The executor ``--jobs N`` historically implied."""
    return ProcessPoolExecutor(jobs) if jobs > 1 else SerialExecutor()
