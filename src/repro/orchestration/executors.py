"""Pluggable execution backends for the orchestrator's execute phase.

:func:`~repro.orchestration.sweep.execute_units` delegates the actual
simulation of pending points to an :class:`Executor`.  All executors
share one contract: every unit handed to ``execute`` ends up committed
to the result store (content-addressed, so completion order and even
duplicate commits are irrelevant), and the replay phase then produces
output bit-identical to a serial run.

Built-ins:

* :class:`SerialExecutor` — one point after another, in-process.
* :class:`ProcessPoolExecutor` — a local ``multiprocessing`` pool (the
  historical ``--jobs N`` behaviour, and still the default).
* :class:`~repro.distributed.DistributedExecutor` (in
  :mod:`repro.distributed`) — shards points across worker processes on
  any machines via the coordinator/worker protocol.
"""

from __future__ import annotations

import inspect
import multiprocessing
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..cpu.trace import Trace
from ..sim.config import SimulationConfig
from ..sim.runner import simulate_direct
from ..sim.system import System

#: Memo of which store types accept a ``figure`` keyword on ``put``
#: (see :func:`store_put`), keyed by store class.
_FIGURE_AWARE: Dict[type, bool] = {}


def store_put(store, key: str, result, figure: Optional[str] = None) -> None:
    """Commit one result, passing the figure label only to stores that
    take it.

    Stores are a duck-typed surface (the persistent cache, the in-memory
    store, test doubles with a bare two-argument ``put``), so the figure
    attribution added for ``repro cache`` breakdowns must degrade to a
    plain ``put`` instead of breaking older stores.
    """
    if figure is not None:
        cls = type(store)
        aware = _FIGURE_AWARE.get(cls)
        if aware is None:
            try:
                parameters = inspect.signature(store.put).parameters
                aware = "figure" in parameters or any(
                    parameter.kind is inspect.Parameter.VAR_KEYWORD
                    for parameter in parameters.values()
                )
            except (TypeError, ValueError):
                aware = False
            _FIGURE_AWARE[cls] = aware
        if aware:
            store.put(key, result, figure=figure)
            return
    store.put(key, result)


class Executor:
    """Simulates a batch of pending units into a result store."""

    #: CLI / reporting name of the executor.
    name = "base"

    def execute(self, units: Sequence, store) -> int:
        """Simulate every unit and commit each result to ``store``.

        Returns the number of points simulated.  Implementations may
        reorder and parallelise freely; the store is content-addressed.
        """
        raise NotImplementedError


class SerialExecutor(Executor):
    """In-process, one point at a time (useful as a reference and for tests)."""

    name = "serial"

    def execute(self, units: Sequence, store) -> int:
        executed = 0
        for unit in units:
            figure = getattr(unit, "figure", None)
            telemetry.counter("executor.points_started")
            telemetry.emit("point.start", point=unit.key, figure=figure)
            start = perf_counter()
            with telemetry.figure_scope(figure):
                result = simulate_direct(unit.traces, unit.config)
            seconds = perf_counter() - start
            telemetry.observe("executor.point_seconds", seconds)
            store_put(store, unit.key, result, figure)
            telemetry.counter("executor.points_finished")
            telemetry.emit("point.done", point=unit.key, figure=figure, seconds=seconds)
            executed += 1
        return executed


def _execute_unit(payload: Tuple[str, List[Trace], SimulationConfig, Optional[str]]):
    """Pool worker: simulate one point (must stay module-level for pickling).

    Returns the point's wall time and the child's own metrics snapshot
    alongside the result, so the parent can fold per-point timings *and*
    the engine counters the simulation recorded into its registry (pool
    workers' process registries die with the pool — without the
    snapshot, pool runs would lose engine/profile attribution entirely).
    """
    key, traces, config, figure = payload
    start = perf_counter()
    with telemetry.isolated(enabled=True) as registry:
        with telemetry.figure_scope(figure):
            result = System(traces, config).run()
        child_snapshot = registry.snapshot()
    return key, result, perf_counter() - start, child_snapshot


class ProcessPoolExecutor(Executor):
    """A local ``multiprocessing`` pool of ``jobs`` worker processes."""

    name = "process"

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = max(1, int(jobs))

    def execute(self, units: Sequence, store) -> int:
        units = list(units)
        if self.jobs > 1 and len(units) > 1:
            figures = {unit.key: getattr(unit, "figure", None) for unit in units}
            payloads = [
                (unit.key, unit.traces, unit.config, figures[unit.key]) for unit in units
            ]
            processes = min(self.jobs, len(units))
            telemetry.counter("executor.points_started", len(units))
            for unit in units:
                telemetry.emit("point.start", point=unit.key, figure=figures[unit.key])
            with multiprocessing.get_context().Pool(processes=processes) as pool:
                for key, result, seconds, child_snapshot in pool.imap_unordered(
                    _execute_unit, payloads
                ):
                    telemetry.observe("executor.point_seconds", seconds)
                    telemetry.merge_into_process(child_snapshot)
                    store_put(store, key, result, figures.get(key))
                    telemetry.counter("executor.points_finished")
                    telemetry.emit(
                        "point.done", point=key, figure=figures.get(key), seconds=seconds
                    )
        else:
            return SerialExecutor().execute(units, store)
        return len(units)


def default_executor(jobs: int) -> Executor:
    """The executor ``--jobs N`` historically implied."""
    return ProcessPoolExecutor(jobs) if jobs > 1 else SerialExecutor()
