"""Persistent, content-addressed result cache.

Simulation results are stored one JSON file per simulation point under
``<cache_dir>/<key[:2]>/<key>.json`` (a git-object-style fan-out so no
single directory grows unboundedly).  Keys come from
:mod:`repro.orchestration.keys`; values are complete
:class:`~repro.sim.results.SimulationResult` records.

JSON round-trips Python floats exactly (``json`` serialises the shortest
repr that parses back to the same IEEE-754 double), so a result read
back from the cache is bit-identical to the freshly simulated one —
the property the serial-vs-parallel equivalence guarantee rests on.

Writes are atomic (temp file + ``os.replace``) so concurrent CLI
invocations sharing one cache directory can never observe a torn entry.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple

from .. import telemetry
from ..telemetry.manifest import MANIFEST_DIR
from ..cpu.trace import Trace
from ..energy.drampower import EnergyBreakdown
from ..sim import checkpoint as checkpoint_format
from ..sim.config import SimulationConfig
from ..sim.results import ChannelResult, CoreResult, SimulationResult
from ..sim.runner import AloneRunCache
from .keys import SCHEMA_VERSION, point_key

# ----------------------------------------------------------------- serialisation


def result_to_dict(result: SimulationResult) -> Dict:
    """Serialise a :class:`SimulationResult` to JSON-compatible data."""
    return {
        "design": result.design,
        "total_cycles": result.total_cycles,
        "cores": [dataclasses.asdict(core) for core in result.cores],
        "channels": [dataclasses.asdict(channel) for channel in result.channels],
        "buffer_serve_rate": result.buffer_serve_rate,
        "buffer_serves": result.buffer_serves,
        "rng_requests": result.rng_requests,
        "predictor_accuracy": result.predictor_accuracy,
        "predictor_predictions": result.predictor_predictions,
        "energy": dataclasses.asdict(result.energy),
        "memory_busy_cycles": result.memory_busy_cycles,
        "scheduler_stats": dict(result.scheduler_stats),
    }


def result_from_dict(payload: Dict) -> SimulationResult:
    """Reconstruct a :class:`SimulationResult` from :func:`result_to_dict`."""
    return SimulationResult(
        design=payload["design"],
        total_cycles=payload["total_cycles"],
        cores=[CoreResult(**core) for core in payload["cores"]],
        channels=[ChannelResult(**channel) for channel in payload["channels"]],
        buffer_serve_rate=payload["buffer_serve_rate"],
        buffer_serves=payload["buffer_serves"],
        rng_requests=payload["rng_requests"],
        predictor_accuracy=payload["predictor_accuracy"],
        predictor_predictions=payload["predictor_predictions"],
        energy=EnergyBreakdown(**payload["energy"]),
        memory_busy_cycles=payload["memory_busy_cycles"],
        scheduler_stats=dict(payload["scheduler_stats"]),
    )


def _atomic_write_json(path: Path, payload: Dict, **dump_kwargs) -> None:
    """Write ``payload`` as JSON via temp file + ``os.replace`` so no
    concurrent reader (or interrupted writer) can observe a torn file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, **dump_kwargs)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------- disk store


class ResultCache:
    """Content-addressed on-disk store of simulation results.

    A small in-memory memo layer sits in front of the disk so a result
    is deserialised at most once per process.
    """

    def __init__(self, cache_dir: str | os.PathLike) -> None:
        self.cache_dir = Path(cache_dir)
        self.hits = 0
        self.misses = 0
        self._memo: Dict[str, SimulationResult] = {}
        #: Run id stamped into entries written while set (see
        #: :meth:`put`); the orchestrator scopes it around a sweep so
        #: every entry records which run produced it.
        self.run_context: Optional[str] = None

    def _path(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key}.json"

    def _entry_snapshot(self) -> list[Path]:
        """A point-in-time, deduplicated listing of the on-disk entries.

        ``glob`` evaluates lazily: iterating it while the same run (or a
        concurrent worker) writes new entries can pick up files created
        after the listing started — and, on directory mutation, yield a
        path more than once — so counting directly off the iterator
        double-counts entries written during the run being reported on.
        Materialising the listing first makes every reader operate on one
        consistent snapshot.
        """
        if not self.cache_dir.is_dir():
            return []
        return sorted(set(self.cache_dir.glob("??/*.json")))

    def contains(self, key: str) -> bool:
        return key in self._memo or self._path(key).is_file()

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for ``key``, or ``None`` on a miss."""
        memoized = self._memo.get(key)
        if memoized is not None:
            self.hits += 1
            telemetry.counter("cache.hits")
            return memoized
        path = self._path(key)
        # A *corrupt* entry (a worker killed mid-write on a non-atomic
        # filesystem, torn restore from a CI cache, hand edit) is a miss —
        # and the bad file is deleted so it cannot shadow the recomputed
        # entry or trip every later reader.  Two neighbouring cases stay
        # non-destructive misses: transient read errors (EMFILE, EIO, …)
        # say nothing about the content, and a schema-version mismatch is
        # a valid record from another code revision (the recompute
        # overwrites it under the same key anyway).
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("schema") != SCHEMA_VERSION:
                self.misses += 1
                telemetry.counter("cache.misses")
                return None
            result = result_from_dict(payload["result"])
        except OSError:
            self.misses += 1
            telemetry.counter("cache.misses")
            return None
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError, ValueError):
            self.misses += 1
            telemetry.counter("cache.misses")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self._memo[key] = result
        self.hits += 1
        telemetry.counter("cache.hits")
        return result

    def put(self, key: str, result: SimulationResult, figure: Optional[str] = None) -> None:
        """Store ``result`` under ``key`` (atomic, last writer wins).

        ``figure`` is a purely informational label recorded *inside* the
        entry payload — it attributes the entry to the experiment that
        first produced it for ``repro cache`` breakdowns, without ever
        entering the content key (cross-figure dedup and key stability
        are preserved; an entry shared by several figures keeps its first
        writer's label).
        """
        self._memo[key] = result
        payload = {"schema": SCHEMA_VERSION, "key": key, "result": result_to_dict(result)}
        if figure is not None:
            payload["figure"] = figure
        if self.run_context is not None:
            payload["run"] = self.run_context
        path = self._path(key)
        _atomic_write_json(path, payload)
        telemetry.counter("cache.puts")
        try:
            telemetry.counter("cache.put_bytes", path.stat().st_size)
        except OSError:
            pass

    def __len__(self) -> int:
        return len(self._entry_snapshot())

    def clear(self) -> None:
        """Remove every cached entry (leaves the directory in place).

        Run manifests under ``runs/`` are pruned too: a manifest
        describes a run whose entries this clear just deleted, so
        leaving them would have ``repro runs`` list runs that can no
        longer be replayed from this cache.
        """
        self._memo.clear()
        self.hits = 0
        self.misses = 0
        if self.cache_dir.is_dir():
            for entry in self._entry_snapshot():
                try:
                    entry.unlink()
                except OSError:
                    pass
            try:
                (self.cache_dir / self.LAST_RUN_FILE).unlink()
            except OSError:
                pass
            manifest_dir = self.cache_dir / MANIFEST_DIR
            if manifest_dir.is_dir():
                for manifest in sorted(manifest_dir.glob("*.json*")):
                    try:
                        manifest.unlink()
                    except OSError:
                        pass

    # ------------------------------------------------------------- statistics

    #: Root-level bookkeeping file (outside the ``??/`` fan-out, so it is
    #: never mistaken for an entry by ``__len__``/``clear``'s globs).
    LAST_RUN_FILE = "last-run.json"

    def stats(self) -> Dict:
        """Store-wide statistics plus this process's hit/miss counters.

        Counts are taken from one snapshot of the entry listing at read
        time (see :meth:`_entry_snapshot`), so entries written during the
        run being reported on are counted at most once.
        """
        entries = 0
        total_bytes = 0
        for entry in self._entry_snapshot():
            try:
                total_bytes += entry.stat().st_size
            except OSError:
                continue
            entries += 1
        return {
            "entries": entries,
            "total_bytes": total_bytes,
            "hits": self.hits,
            "misses": self.misses,
        }

    #: Label under which entries with no recorded figure are reported.
    UNATTRIBUTED = "(unattributed)"

    def stats_by_figure(self) -> Dict[str, Dict]:
        """Entry counts/bytes broken down by the figure label each entry
        recorded at write time (see :meth:`put`).

        Entries written before figure attribution existed — or shared
        alone-run entries written outside any figure — fall under
        :data:`UNATTRIBUTED`.  Unreadable entries are skipped: this is a
        reporting surface, not a validity check.
        """
        breakdown: Dict[str, Dict] = {}
        for entry in self._entry_snapshot():
            try:
                size = entry.stat().st_size
                with entry.open("r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                continue
            figure = payload.get("figure") if isinstance(payload, dict) else None
            label = figure if isinstance(figure, str) and figure else self.UNATTRIBUTED
            bucket = breakdown.setdefault(label, {"entries": 0, "total_bytes": 0})
            bucket["entries"] += 1
            bucket["total_bytes"] += size
        return breakdown

    def entry_meta(self, key: str) -> Dict:
        """Informational metadata of one entry: its ``figure`` and the
        ``run`` that wrote it (empty for missing/unreadable entries or
        entries predating either annotation).  Never deserialises the
        result — this is the provenance lookup, not a read path."""
        try:
            with self._path(key).open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return {}
        if not isinstance(payload, dict):
            return {}
        meta = {}
        for name in ("figure", "run"):
            value = payload.get(name)
            if isinstance(value, str):
                meta[name] = value
        return meta

    def record_last_run(self, extra: Optional[Dict] = None) -> None:
        """Persist this process's hit/miss counters (plus ``extra`` fields)
        so ``repro cache`` can report on the most recent run."""
        payload = {"hits": self.hits, "misses": self.misses}
        if extra:
            payload.update(extra)
        _atomic_write_json(self.cache_dir / self.LAST_RUN_FILE, payload, indent=2, sort_keys=True)

    def last_run(self) -> Optional[Dict]:
        """Counters recorded by the most recent run, if any."""
        try:
            with (self.cache_dir / self.LAST_RUN_FILE).open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        return payload if isinstance(payload, dict) else None


# ----------------------------------------------------------------- checkpoints

#: Subdirectory of a result-cache directory holding warmup checkpoints.
CHECKPOINT_DIR = "checkpoints"


class CheckpointStore:
    """Content-addressed store of warmup-prefix checkpoints.

    Layout mirrors :class:`ResultCache`'s fan-out, one directory per
    prefix: ``<dir>/<key[:2]>/<key>/<cycle>.ckpt`` where the key is
    :func:`repro.sim.checkpoint.prefix_key` — the configuration minus
    ``engine``/``max_cycles`` plus the trace fingerprints — so sweep
    points sharing a warmup resume from the same snapshots.  Each
    ``put`` keeps only the latest cycle per prefix (a resumed run never
    wants an older one, and pruning bounds disk growth).

    Load failures follow :meth:`ResultCache.get`: corrupt files are
    deleted by the format layer and the caller resimulates; version or
    fingerprint mismatches miss non-destructively.
    """

    SUFFIX = ".ckpt"

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    def _prefix_dir(self, key: str) -> Path:
        return self.directory / key[:2] / key

    def put(self, traces, config, system) -> Path:
        """Snapshot ``system`` under its warmup prefix; prune older cycles."""
        key = checkpoint_format.prefix_key(traces, config)
        prefix_dir = self._prefix_dir(key)
        path = prefix_dir / f"{system.cycle:016d}{self.SUFFIX}"
        checkpoint_format.save(path, system)
        telemetry.counter("checkpoint_store.puts")
        for sibling in prefix_dir.glob(f"*{self.SUFFIX}"):
            if sibling.name < path.name:
                try:
                    sibling.unlink()
                except OSError:
                    pass
        return path

    def resume(self, traces, config):
        """The restored :class:`~repro.sim.system.System` closest to the
        end of the run for this (traces, config-prefix), or ``None``.

        Only checkpoints at a cycle ``<= config.max_cycles`` are eligible
        (state at cycle ``C`` matches a straight run under any limit
        ``>= C``; past the limit it describes a run this config would
        never reach)."""
        key = checkpoint_format.prefix_key(traces, config)
        prefix_dir = self._prefix_dir(key)
        if not prefix_dir.is_dir():
            self.misses += 1
            telemetry.counter("checkpoint_store.misses")
            return None
        for path in sorted(prefix_dir.glob(f"*{self.SUFFIX}"), reverse=True):
            try:
                cycle = int(path.stem)
            except ValueError:
                continue
            if cycle > config.max_cycles:
                continue
            system = checkpoint_format.load(path, traces=traces, config=config)
            if system is not None:
                self.hits += 1
                telemetry.counter("checkpoint_store.hits")
                return system
        self.misses += 1
        telemetry.counter("checkpoint_store.misses")
        return None

    def entries(self) -> list[Dict]:
        """One record per stored checkpoint (for ``repro checkpoint list``)."""
        records: list[Dict] = []
        if not self.directory.is_dir():
            return records
        for path in sorted(self.directory.glob(f"??/*/*{self.SUFFIX}")):
            try:
                size = path.stat().st_size
            except OSError:
                continue
            try:
                cycle = int(path.stem)
            except ValueError:
                cycle = -1
            records.append(
                {"key": path.parent.name, "cycle": cycle, "bytes": size, "path": str(path)}
            )
        return records

    def clear(self) -> None:
        """Remove every stored checkpoint (leaves the directory in place)."""
        self.hits = 0
        self.misses = 0
        for record in self.entries():
            try:
                os.unlink(record["path"])
            except OSError:
                pass

    def stats(self) -> Dict:
        entries = self.entries()
        return {
            "entries": len(entries),
            "total_bytes": sum(record["bytes"] for record in entries),
            "hits": self.hits,
            "misses": self.misses,
        }


# ----------------------------------------------------------------- alone runs


class PersistentAloneRunCache(AloneRunCache):
    """An alone-run cache backed by a persistent :class:`ResultCache`.

    Alone runs are design-independent (always the RNG-oblivious
    single-core baseline), so they are the highest-value entries to keep
    across processes: every figure, benchmark session and CLI invocation
    re-uses them.
    """

    def __init__(self, store: ResultCache) -> None:
        super().__init__()
        self.store = store

    def _load(self, trace: Trace, alone_config: SimulationConfig) -> Optional[Tuple[CoreResult, SimulationResult]]:
        result = self.store.get(point_key([trace], alone_config))
        if result is None:
            return None
        return result.cores[0], result

    def _persist(self, trace: Trace, alone_config: SimulationConfig, result: SimulationResult) -> None:
        self.store.put(point_key([trace], alone_config), result)
