"""Parallel experiment orchestration with a persistent result cache.

Public surface:

* :func:`~repro.orchestration.sweep.run_experiment` /
  :func:`~repro.orchestration.sweep.sweep_experiments` — run figures
  through the plan → execute (multiprocessing) → replay pipeline with
  results served from a content-addressed store.  Parallel output is
  bit-identical to a serial run by construction.
* :class:`~repro.orchestration.cache.ResultCache` — the persistent
  content-addressed store (one JSON file per simulation point).
* :class:`~repro.orchestration.cache.PersistentAloneRunCache` — a
  drop-in :class:`~repro.sim.runner.AloneRunCache` that survives across
  processes, CLI invocations and benchmark sessions.
* :func:`~repro.orchestration.keys.point_key` — the stable content hash
  of one ``(traces, config)`` simulation point.
"""

from .cache import PersistentAloneRunCache, ResultCache, result_from_dict, result_to_dict
from .executors import Executor, ProcessPoolExecutor, SerialExecutor, default_executor
from .keys import SCHEMA_VERSION, point_key
from .report import dump_json, format_experiment, format_stats, format_sweep
from .sweep import (
    CacheServingBackend,
    InMemoryResultStore,
    PlanningBackend,
    SimulationUnit,
    SweepStats,
    execute_units,
    filter_run_kwargs,
    installed_backend,
    open_store,
    persistent_alone_cache,
    plan_experiment,
    resolve_experiment,
    run_experiment,
    supported_run_kwargs,
    sweep_experiments,
)

__all__ = [
    "CacheServingBackend",
    "Executor",
    "InMemoryResultStore",
    "PersistentAloneRunCache",
    "PlanningBackend",
    "ProcessPoolExecutor",
    "ResultCache",
    "SCHEMA_VERSION",
    "SerialExecutor",
    "SimulationUnit",
    "SweepStats",
    "default_executor",
    "dump_json",
    "execute_units",
    "filter_run_kwargs",
    "format_experiment",
    "format_stats",
    "format_sweep",
    "installed_backend",
    "open_store",
    "persistent_alone_cache",
    "plan_experiment",
    "point_key",
    "resolve_experiment",
    "result_from_dict",
    "result_to_dict",
    "run_experiment",
    "supported_run_kwargs",
    "sweep_experiments",
]
