"""Parallel experiment orchestration with a persistent result cache.

Public surface:

* :class:`~repro.orchestration.request.SweepRequest` /
  :class:`~repro.orchestration.request.SweepResult` — the public sweep
  API: one frozen, validated request object that travels unchanged
  through :func:`sweep_experiments`, the service protocol and run
  manifests, and the mapping-of-data-dicts result it produces.
* :func:`~repro.orchestration.sweep.run_experiment` /
  :func:`~repro.orchestration.sweep.sweep_experiments` — run figures
  through the plan → execute (multiprocessing) → replay pipeline with
  results served from a content-addressed store.  Parallel output is
  bit-identical to a serial run by construction.
* :func:`~repro.orchestration.request.parse_target` — parser for the
  ``--target {local,process[:N],HOST:PORT}`` execution spec shared by
  every CLI verb.
* :class:`~repro.orchestration.cache.ResultCache` — the persistent
  content-addressed store (one JSON file per simulation point).
* :class:`~repro.orchestration.cache.PersistentAloneRunCache` — a
  drop-in :class:`~repro.sim.runner.AloneRunCache` that survives across
  processes, CLI invocations and benchmark sessions.
* :func:`~repro.orchestration.keys.point_key` — the stable content hash
  of one ``(traces, config)`` simulation point.
"""

from .cache import PersistentAloneRunCache, ResultCache, result_from_dict, result_to_dict
from .executors import Executor, ProcessPoolExecutor, SerialExecutor, default_executor
from .keys import SCHEMA_VERSION, point_key
from .report import canonical_data, dump_json, format_experiment, format_stats, format_sweep
from .request import (
    PRIORITIES,
    ExecutionTarget,
    SweepRequest,
    SweepResult,
    SweepStats,
    parse_target,
)
from .sweep import (
    CacheServingBackend,
    InMemoryResultStore,
    PlanningBackend,
    SimulationUnit,
    execute_units,
    filter_run_kwargs,
    installed_backend,
    open_store,
    persistent_alone_cache,
    plan_experiment,
    resolve_experiment,
    run_experiment,
    supported_run_kwargs,
    sweep_experiments,
)

__all__ = [
    "CacheServingBackend",
    "ExecutionTarget",
    "Executor",
    "InMemoryResultStore",
    "PRIORITIES",
    "PersistentAloneRunCache",
    "PlanningBackend",
    "ProcessPoolExecutor",
    "ResultCache",
    "SCHEMA_VERSION",
    "SerialExecutor",
    "SimulationUnit",
    "SweepRequest",
    "SweepResult",
    "SweepStats",
    "canonical_data",
    "default_executor",
    "dump_json",
    "execute_units",
    "filter_run_kwargs",
    "format_experiment",
    "format_stats",
    "format_sweep",
    "installed_backend",
    "open_store",
    "parse_target",
    "persistent_alone_cache",
    "plan_experiment",
    "point_key",
    "resolve_experiment",
    "result_from_dict",
    "result_to_dict",
    "run_experiment",
    "supported_run_kwargs",
    "sweep_experiments",
]
