"""The public sweep API: one frozen request object as the single currency.

Historically every layer threaded its own ad-hoc kwargs (``jobs=``,
``engine=``, ``full=``, ``instructions=`` …) from the CLI through
``sweep_experiments`` down to executors and manifests.  A submit/poll
service cannot tolerate that: the request must be a *value* — hashable,
serialisable, validated once at the edge — that travels unchanged
through :func:`~repro.orchestration.sweep.sweep_experiments`, the
daemon protocol, and run manifests.

* :class:`SweepRequest` — frozen, normalised description of a sweep
  (which figures, at what scale, on which engine, with what service
  priority).
* :class:`SweepResult` — the figure-label → data-dict mapping plus the
  request and orchestration stats that produced it.  It *is* a
  ``Mapping``, so existing code that iterates the old plain dict keeps
  working.
* :func:`parse_target` — the one parser for the ``--target`` execution
  spec (``local``, ``process[:N]``, ``HOST:PORT``) shared by every CLI
  verb.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from ..sim.config import ENGINES

#: Service priorities, ordered best-first.  ``interactive`` jobs are
#: favoured by the tenant scheduler; ``batch`` jobs (the 43-app
#: ``--full`` sweeps) yield under contention.
PRIORITIES = ("interactive", "batch")


def _normalize_experiments(experiments) -> Tuple[str, ...]:
    if isinstance(experiments, str):
        experiments = (experiments,)
    try:
        normalized = tuple(str(item).strip().lower() for item in experiments)
    except TypeError:
        raise TypeError(
            f"experiments must be a string or an iterable of strings, got {experiments!r}"
        ) from None
    if not normalized or any(not item for item in normalized):
        raise ValueError("experiments must name at least one non-empty experiment")
    return normalized


@dataclass(frozen=True)
class SweepRequest:
    """Everything needed to run (or submit) one sweep, as a frozen value.

    ``experiments`` accepts a single id or any iterable of ids and is
    normalised to a lowercase tuple; ``instructions``/``full`` scale the
    roster exactly like the CLI flags of the same names; ``engine``
    forces every simulation of the sweep onto one engine (results are
    engine-independent, so this never changes cache keys); ``priority``
    and ``tags`` only matter to the service scheduler and manifests.
    """

    experiments: Tuple[str, ...]
    instructions: Optional[int] = None
    full: bool = False
    engine: Optional[str] = None
    priority: str = "interactive"
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "experiments", _normalize_experiments(self.experiments))
        if self.instructions is not None:
            instructions = int(self.instructions)
            if instructions <= 0:
                raise ValueError(f"instructions must be positive, got {instructions}")
            object.__setattr__(self, "instructions", instructions)
        object.__setattr__(self, "full", bool(self.full))
        if self.engine is not None and self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.priority not in PRIORITIES:
            raise ValueError(f"priority must be one of {PRIORITIES}, got {self.priority!r}")
        object.__setattr__(self, "tags", tuple(str(tag) for tag in self.tags))

    def run_kwargs(self) -> Dict:
        """The experiment-module kwargs this request implies.

        Only set fields appear, so experiments keep their own defaults
        (and :func:`~repro.orchestration.sweep.filter_run_kwargs` drops
        whatever a given figure does not accept).
        """
        kwargs: Dict = {}
        if self.instructions is not None:
            kwargs["instructions"] = self.instructions
        if self.full:
            kwargs["full"] = True
        return kwargs

    def to_wire(self) -> Dict:
        """JSON-safe payload for the submit protocol and manifests."""
        payload: Dict = {"experiments": list(self.experiments)}
        if self.instructions is not None:
            payload["instructions"] = self.instructions
        if self.full:
            payload["full"] = True
        if self.engine is not None:
            payload["engine"] = self.engine
        if self.priority != "interactive":
            payload["priority"] = self.priority
        if self.tags:
            payload["tags"] = list(self.tags)
        return payload

    @classmethod
    def from_wire(cls, payload: Mapping) -> "SweepRequest":
        """Tolerant decode: unknown keys are ignored, missing keys default.

        Version tolerance mirrors the protocol's welcome negotiation — a
        newer client may send fields this daemon does not know, and an
        older client may omit fields this daemon added.
        """
        if not isinstance(payload, Mapping):
            raise TypeError(f"request payload must be a mapping, got {type(payload).__name__}")
        return cls(
            experiments=tuple(payload.get("experiments", ())),
            instructions=payload.get("instructions"),
            full=bool(payload.get("full", False)),
            engine=payload.get("engine"),
            priority=payload.get("priority", "interactive"),
            tags=tuple(payload.get("tags", ())),
        )


@dataclass
class SweepStats:
    """Bookkeeping of one orchestrated run (for reporting)."""

    planned: int = 0
    executed: int = 0
    reused: int = 0
    #: Wall time of the whole sweep (plan + execute + replay), seconds.
    elapsed: float = 0.0
    #: Causal id of this run (shared by its manifest, journal and the
    #: cache entries it wrote).
    run_id: Optional[str] = None
    #: Per-point provenance: key → ``{"state": "simulated"|"replayed",
    #: "figure": ..., "run": <originating run id>}``.  ``simulated``
    #: means this run executed the point; ``replayed`` means the store
    #: already held it (``run`` then names the run that wrote it, when
    #: the entry recorded one).
    points: Dict[str, Dict] = field(default_factory=dict)


@dataclass
class SweepResult(Mapping):
    """Outcome of one sweep: data dicts plus the request and stats.

    Behaves as a read-only mapping of figure label → data dict so code
    written against the legacy ``sweep_experiments`` return type (a
    plain dict) works unchanged on the new return type.
    """

    request: SweepRequest
    data: Dict[str, Dict] = field(default_factory=dict)
    stats: SweepStats = field(default_factory=SweepStats)

    def __getitem__(self, label: str) -> Dict:
        return self.data[label]

    def __iter__(self) -> Iterator[str]:
        return iter(self.data)

    def __len__(self) -> int:
        return len(self.data)


@dataclass(frozen=True)
class ExecutionTarget:
    """Parsed ``--target`` spec: where a sweep's points should execute."""

    kind: str  # "local" | "process" | "service"
    jobs: int = 1
    address: Optional[Tuple[str, int]] = None

    def describe(self) -> str:
        if self.kind == "local":
            return "local"
        if self.kind == "process":
            return f"process:{self.jobs}"
        host, port = self.address  # type: ignore[misc]
        return f"{host}:{port}"


def parse_target(text: str) -> ExecutionTarget:
    """Parse an execution target spec.

    * ``local`` — serial, in this process.
    * ``process`` or ``process:N`` — local process pool (N defaults to
      the machine's CPU count, resolved by the executor).
    * ``HOST:PORT`` — submit to a running sweep service.
    """
    spec = str(text).strip()
    lowered = spec.lower()
    if lowered == "local":
        return ExecutionTarget(kind="local", jobs=1)
    if lowered == "process" or lowered.startswith("process:"):
        _, _, count = lowered.partition(":")
        if not count:
            return ExecutionTarget(kind="process", jobs=0)
        try:
            jobs = int(count)
        except ValueError:
            raise ValueError(f"invalid process count in target {text!r}") from None
        if jobs < 1:
            raise ValueError(f"process count must be >= 1 in target {text!r}")
        return ExecutionTarget(kind="process", jobs=jobs)
    host, sep, port_text = spec.rpartition(":")
    if sep and host:
        try:
            port = int(port_text)
        except ValueError:
            port = None
        if port is not None and 0 < port < 65536:
            return ExecutionTarget(kind="service", address=(host, port))
    raise ValueError(
        f"invalid target {text!r}: expected 'local', 'process[:N]' or 'HOST:PORT'"
    )
