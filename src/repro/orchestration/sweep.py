"""Parallel experiment orchestration.

An experiment (one paper figure/section) is a pure function of a set of
*simulation points* — independent ``(traces, config)`` pairs — plus
deterministic arithmetic that merges their results into tables.  The
orchestrator exploits that structure in three phases:

1. **Plan.**  Run the experiment once with a :class:`PlanningBackend`
   installed: every simulation the experiment would execute is recorded
   (keyed by content hash) and answered with a cheap structurally-valid
   stub.  Experiments' control flow never depends on simulated values
   (sweeps are static), so planning enumerates exactly the points the
   real run needs, at trace-generation cost only.
2. **Execute.**  Simulate the points that are not already in the result
   store on a ``multiprocessing`` pool.  Workers are pure: one point in,
   one :class:`~repro.sim.results.SimulationResult` out.  Completion
   order does not matter because results land in a content-addressed
   store.
3. **Replay.**  Run the experiment again with a
   :class:`CacheServingBackend` installed, so every simulation is a
   cache hit.  Because the replay *is* the serial code path, merging is
   deterministic and the output is bit-identical to a serial run.

With ``jobs=1`` the plan phase is skipped and the experiment simply runs
through the cache-serving backend, populating the store as it goes.
"""

from __future__ import annotations

import inspect
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Union

from .. import telemetry
from ..cpu.trace import Trace
from ..energy.drampower import EnergyBreakdown
from ..sim import runner as sim_runner
from ..sim.config import SimulationConfig
from ..sim.results import ChannelResult, CoreResult, SimulationResult
from ..sim.runner import AloneRunCache
from ..telemetry.manifest import new_run_id
from ..telemetry.trace import TraceJournal, traces_dir
from .cache import PersistentAloneRunCache, ResultCache
from .executors import Executor, default_executor, store_put
from .keys import point_key
from .request import SweepRequest, SweepResult, SweepStats


@dataclass
class SimulationUnit:
    """One independent simulation point of an experiment.

    ``figure`` is the label of the experiment that planned the point —
    informational only (cache breakdowns, per-figure progress); it never
    enters the content key, so a point shared by several figures keeps
    the first planner's label.
    """

    key: str
    traces: List[Trace]
    config: SimulationConfig
    figure: Optional[str] = None


class InMemoryResultStore:
    """Ephemeral result store with the :class:`ResultCache` interface."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self._data: Dict[str, SimulationResult] = {}

    def contains(self, key: str) -> bool:
        return key in self._data

    def get(self, key: str) -> Optional[SimulationResult]:
        result = self._data.get(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult, figure: Optional[str] = None) -> None:
        self._data[key] = result

    def __len__(self) -> int:
        return len(self._data)


# ----------------------------------------------------------------- backends


def stub_result(traces: Sequence[Trace], config: SimulationConfig) -> SimulationResult:
    """A structurally valid placeholder result used during planning.

    Stub values are chosen so downstream arithmetic (slowdown ratios,
    averages, percentiles) stays well-defined; the numbers themselves are
    discarded with the whole planning pass.
    """
    cores = [
        CoreResult(
            core_id=core_id,
            name=trace.name,
            is_rng=trace.rng_requests > 0,
            instructions=trace.total_instructions,
            cycles=max(1, trace.total_instructions),
            memory_stall_cycles=0,
            rng_stall_cycles=0,
            reads=trace.memory_reads,
            writes=trace.memory_writes,
            rng_requests=trace.rng_requests,
            average_read_latency=1.0,
            average_rng_latency=1.0,
        )
        for core_id, trace in enumerate(traces)
    ]
    channels = [
        ChannelResult(
            channel_id=channel_id,
            busy_cycles=1,
            idle_cycles=1,
            rng_mode_cycles=0,
            served_reads=0,
            served_writes=0,
            served_rng_demand=0,
            rng_fill_batches=0,
            rng_fill_bits=0,
            mode_switches=0,
            idle_periods=[1],
        )
        for channel_id in range(config.organization.channels)
    ]
    energy = EnergyBreakdown(
        activation_nj=0.0, read_nj=0.0, write_nj=0.0, rng_nj=0.0, background_nj=1.0
    )
    return SimulationResult(
        design=config.design,
        total_cycles=1,
        cores=cores,
        channels=channels,
        buffer_serve_rate=0.0,
        buffer_serves=0,
        rng_requests=0,
        predictor_accuracy=0.5,
        predictor_predictions=1,
        energy=energy,
        memory_busy_cycles=1,
        scheduler_stats={},
    )


class PlanningBackend:
    """Records every simulation point instead of executing it.

    ``label`` tags every recorded unit with the experiment being planned
    (see :attr:`SimulationUnit.figure`).
    """

    #: Stub results must never be cached by :class:`AloneRunCache` etc.
    provides_real_results = False

    def __init__(self, label: Optional[str] = None) -> None:
        self.units: Dict[str, SimulationUnit] = {}
        self.label = label

    def __call__(self, traces: Sequence[Trace], config: SimulationConfig) -> SimulationResult:
        traces = list(traces)
        key = point_key(traces, config)
        if key not in self.units:
            self.units[key] = SimulationUnit(
                key=key, traces=traces, config=config, figure=self.label
            )
        return stub_result(traces, config)


class CacheServingBackend:
    """Serves simulations from a result store, computing (and storing) misses.

    ``figure`` (mutable between replays) attributes entries computed
    during the replay itself — jobs=1 runs never go through an executor,
    so this is where their figure labels come from.
    """

    provides_real_results = True

    def __init__(self, store) -> None:
        self.store = store
        self.served = 0
        self.computed = 0
        self.figure: Optional[str] = None
        #: Per-key provenance of this replay: ``"simulated"`` when the
        #: backend computed the point, ``"replayed"`` on a store hit.  A
        #: key served after being computed keeps ``simulated`` — what the
        #: point cost this run is what provenance records.
        self.points: Dict[str, str] = {}
        self.figures: Dict[str, Optional[str]] = {}

    def __call__(self, traces: Sequence[Trace], config: SimulationConfig) -> SimulationResult:
        traces = list(traces)
        key = point_key(traces, config)
        result = self.store.get(key)
        if result is None:
            telemetry.emit("point.start", point=key, figure=self.figure)
            result = sim_runner.simulate_direct(traces, config)
            store_put(self.store, key, result, self.figure)
            self.computed += 1
            self.points[key] = "simulated"
            self.figures[key] = self.figure
            telemetry.emit("point.done", point=key, figure=self.figure)
        else:
            self.served += 1
            if key not in self.points:
                self.points[key] = "replayed"
                self.figures[key] = self.figure
        return result


@contextmanager
def installed_backend(backend):
    """Temporarily route :func:`repro.sim.runner.simulate_traces` to ``backend``.

    Thin wrapper over :func:`repro.sim.runner.simulation_backend` (the
    scoped installer both the orchestrator and the CLI use) kept under
    its historical name.
    """
    with sim_runner.simulation_backend(backend) as installed:
        yield installed


# ----------------------------------------------------------------- experiments


def resolve_experiment(experiment):
    """Accept an experiment id (``"fig6"``), a module basename
    (``"fig06_dualcore_performance"``, the label :func:`sweep_experiments`
    assigns when given a module) or an experiment module, and return the
    module."""
    if isinstance(experiment, str):
        from ..experiments import EXPERIMENTS

        key = experiment.lower()
        if key in EXPERIMENTS:
            return EXPERIMENTS[key]
        for module in EXPERIMENTS.values():
            if module.__name__.rsplit(".", 1)[-1] == key:
                return module
        raise KeyError(
            f"unknown experiment {experiment!r}; known: {', '.join(sorted(EXPERIMENTS))}"
        )
    return experiment


def supported_run_kwargs(module) -> frozenset:
    """Names of the keyword arguments ``module.run`` accepts."""
    return frozenset(inspect.signature(module.run).parameters)


def filter_run_kwargs(module, kwargs: Dict) -> Dict:
    """Drop the entries of ``kwargs`` that ``module.run`` does not accept."""
    supported = supported_run_kwargs(module)
    return {name: value for name, value in kwargs.items() if name in supported}


def plan_experiment(experiment, label: Optional[str] = None, **kwargs) -> List[SimulationUnit]:
    """Enumerate the simulation points ``experiment`` needs, without simulating.

    ``label`` tags the recorded units with the planning experiment (see
    :attr:`SimulationUnit.figure`); it defaults to the experiment id when
    one was given as a string.
    """
    module = resolve_experiment(experiment)
    if label is None and isinstance(experiment, str):
        label = experiment
    call_kwargs = filter_run_kwargs(module, kwargs)
    # A fresh alone-run cache forces every alone run to reach the backend
    # (a shared cache would hide points it already holds in memory).
    call_kwargs["cache"] = AloneRunCache()
    backend = PlanningBackend(label=label)
    with installed_backend(backend):
        module.run(**call_kwargs)
    return list(backend.units.values())


# ----------------------------------------------------------------- execution


def execute_units(
    units: Iterable[SimulationUnit], store, jobs: int = 1, executor: Optional[Executor] = None
) -> int:
    """Simulate every unit missing from ``store``; returns how many ran.

    The simulation itself is delegated to an :class:`Executor`
    (``executor``, or the :func:`default_executor` implied by ``jobs``:
    a local process pool for ``jobs > 1``, serial otherwise).  Every
    executor commits into the same content-addressed store, so replay
    output never depends on which executor ran the points.

    Pending-ness is decided with ``get`` rather than ``contains`` so an
    unreadable/corrupt cache entry counts as missing and is recomputed
    here (in parallel), not silently during the serial replay.  The
    deserialised results stay memoized, so the replay pays nothing extra.
    """
    pending = [unit for unit in units if store.get(unit.key) is None]
    if not pending:
        return 0
    if executor is None:
        executor = default_executor(jobs)
    return executor.execute(pending, store)


# ----------------------------------------------------------------- entry points


_LEGACY_CALL_WARNING = (
    "passing experiment lists and loose kwargs to run_experiment/"
    "sweep_experiments is deprecated; pass a SweepRequest instead"
)

#: Request fields that must not also arrive as loose kwargs alongside a
#: :class:`SweepRequest` — the request is the single source of truth.
_REQUEST_OWNED_KWARGS = frozenset({"instructions", "full", "engine"})


def run_experiment(
    experiment,
    jobs: int = 1,
    store=None,
    cache: Optional[AloneRunCache] = None,
    stats: Optional[SweepStats] = None,
    executor: Optional[Executor] = None,
    **kwargs,
) -> Union[SweepResult, Dict]:
    """Run one experiment through the orchestrator.

    Given a :class:`SweepRequest` (the public API), returns a
    :class:`SweepResult`.  Given a bare experiment id/module plus loose
    kwargs (the deprecated legacy form), returns that experiment's raw
    data dict, exactly as before.

    ``store`` is a result store (:class:`ResultCache` for persistence,
    :class:`InMemoryResultStore` or ``None`` for process-local reuse);
    ``cache`` optionally overrides the alone-run cache used by the replay;
    ``executor`` selects the execution backend (see :mod:`.executors`).
    The returned data is bit-identical to calling ``module.run`` serially.
    """
    if isinstance(experiment, SweepRequest):
        return sweep_experiments(
            experiment, jobs=jobs, store=store, cache=cache, stats=stats,
            executor=executor, **kwargs,
        )
    warnings.warn(_LEGACY_CALL_WARNING, DeprecationWarning, stacklevel=2)
    results = _sweep(
        [experiment], jobs=jobs, store=store, cache=cache, stats=stats or SweepStats(),
        executor=executor, **kwargs,
    )
    return next(iter(results.values()))


def sweep_experiments(
    experiments: Union[SweepRequest, Sequence],
    jobs: int = 1,
    store=None,
    cache: Optional[AloneRunCache] = None,
    stats: Optional[SweepStats] = None,
    executor: Optional[Executor] = None,
    **kwargs,
) -> Union[SweepResult, Dict[str, Dict]]:
    """Run several experiments as one batch with shared planning and caching.

    The public form takes a :class:`SweepRequest` and returns a
    :class:`SweepResult` (a mapping of figure label → data dict carrying
    the request and orchestration stats).  The deprecated legacy form
    takes a sequence of experiment ids/modules plus loose kwargs and
    returns the plain dict it always did.

    Points shared between figures (e.g. alone runs, or fig9 reusing
    fig6's simulations) are deduplicated by content key and simulated at
    most once across the whole batch.

    Passing ``executor`` (or ``jobs > 1``) selects the plan → execute →
    replay pipeline, with the executor — serial, local process pool or
    :class:`~repro.distributed.DistributedExecutor` — running the
    missing points; otherwise the experiments simply run through the
    cache-serving backend, populating the store as they go.
    """
    if isinstance(experiments, SweepRequest):
        request = experiments
        owned = _REQUEST_OWNED_KWARGS.intersection(kwargs)
        if owned:
            raise TypeError(
                f"{sorted(owned)} are owned by the SweepRequest; "
                "set them on the request, not as kwargs"
            )
        stats = stats if stats is not None else SweepStats()
        run_kwargs = dict(request.run_kwargs())
        run_kwargs.update(kwargs)
        with sim_runner.engine_override(request.engine):
            data = _sweep(
                request.experiments, jobs=jobs, store=store, cache=cache,
                stats=stats, executor=executor, **run_kwargs,
            )
        return SweepResult(request=request, data=data, stats=stats)
    warnings.warn(_LEGACY_CALL_WARNING, DeprecationWarning, stacklevel=2)
    return _sweep(
        experiments, jobs=jobs, store=store, cache=cache, stats=stats or SweepStats(),
        executor=executor, **kwargs,
    )


def _sweep(
    experiments: Sequence,
    jobs: int,
    store,
    cache: Optional[AloneRunCache],
    stats: SweepStats,
    executor: Optional[Executor],
    **kwargs,
) -> Dict[str, Dict]:
    """The plan → execute → replay pipeline shared by both entry forms."""
    store = store if store is not None else InMemoryResultStore()
    sweep_start = perf_counter()

    labeled = []
    for experiment in experiments:
        module = resolve_experiment(experiment)
        label = experiment if isinstance(experiment, str) else module.__name__.rsplit(".", 1)[-1]
        labeled.append((label, module))
    labels = [label for label, _ in labeled]

    # The run id is minted *before* anything executes so the event
    # journal, the cache entries written by this run and the manifest
    # all carry the same causal id.
    stats.run_id = run_id = new_run_id(labels, kwargs)
    bus = telemetry.bus()
    journal: Optional[TraceJournal] = None
    if isinstance(store, ResultCache):
        journal = TraceJournal(traces_dir(store.cache_dir) / f"{run_id}.jsonl")
        bus.add_sink(journal.write)
    had_run_context = hasattr(store, "run_context")
    previous_run_context = getattr(store, "run_context", None)
    if had_run_context:
        store.run_context = run_id
    telemetry.emit("run.start", run=run_id, figures=labels)
    try:
        orchestrated = executor is not None or jobs > 1
        if orchestrated:
            telemetry.emit("phase.start", phase="plan", run=run_id)
            units: Dict[str, SimulationUnit] = {}
            for label, module in labeled:
                for unit in plan_experiment(module, label=label, **kwargs):
                    units.setdefault(unit.key, unit)
            stats.planned = len(units)
            telemetry.counter("sweep.points_planned", stats.planned)
            telemetry.emit(
                "phase.end", phase="plan", run=run_id, points=stats.planned
            )
            warm = {key for key in units if store.contains(key)}
            telemetry.emit("phase.start", phase="execute", run=run_id)
            stats.executed = execute_units(units.values(), store, jobs=jobs, executor=executor)
            stats.reused = stats.planned - stats.executed
            telemetry.emit(
                "phase.end", phase="execute", run=run_id,
                executed=stats.executed, reused=stats.reused,
            )
            for key, unit in units.items():
                if key in warm:
                    origin = (
                        store.entry_meta(key).get("run")
                        if hasattr(store, "entry_meta") else None
                    )
                    stats.points[key] = {
                        "state": "replayed", "figure": unit.figure, "run": origin
                    }
                    telemetry.emit(
                        "point.replay", point=key, figure=unit.figure, run=origin
                    )
                else:
                    stats.points[key] = {
                        "state": "simulated", "figure": unit.figure, "run": run_id
                    }

        backend = CacheServingBackend(store)
        results: Dict[str, Dict] = {}
        telemetry.emit("phase.start", phase="replay", run=run_id)
        with installed_backend(backend):
            for label, module in labeled:
                backend.figure = label
                call_kwargs = filter_run_kwargs(module, kwargs)
                if "cache" in supported_run_kwargs(module):
                    call_kwargs["cache"] = cache if cache is not None else AloneRunCache()
                with telemetry.registry().time(f"sweep.figure_seconds.{label}"):
                    results[label] = module.run(**call_kwargs)
        telemetry.emit("phase.end", phase="replay", run=run_id)
        if not orchestrated:
            stats.planned = backend.served + backend.computed
            stats.executed = backend.computed
            stats.reused = backend.served
            for key, state in backend.points.items():
                figure = backend.figures.get(key)
                if state == "replayed":
                    origin = (
                        store.entry_meta(key).get("run")
                        if hasattr(store, "entry_meta") else None
                    )
                    telemetry.emit("point.replay", point=key, figure=figure, run=origin)
                else:
                    origin = run_id
                stats.points[key] = {"state": state, "figure": figure, "run": origin}
        stats.elapsed = perf_counter() - sweep_start
        telemetry.counter("sweep.runs")
        telemetry.observe("sweep.seconds", stats.elapsed)
        telemetry.emit(
            "run.end", run=run_id, planned=stats.planned,
            executed=stats.executed, reused=stats.reused, seconds=stats.elapsed,
        )
        return results
    finally:
        if had_run_context:
            store.run_context = previous_run_context
        if journal is not None:
            bus.remove_sink(journal.write)
            journal.close()


def open_store(cache_dir) -> ResultCache:
    """A persistent result store rooted at ``cache_dir``."""
    return ResultCache(cache_dir)


def persistent_alone_cache(cache_dir) -> PersistentAloneRunCache:
    """An alone-run cache that survives across processes and sessions."""
    return PersistentAloneRunCache(ResultCache(cache_dir))
