"""The Blacklisting memory scheduler (BLISS).

BLISS (Subramanian et al., ICCD 2014 / TPDS 2016) observes that ranking
schedulers are complex and instead separates applications into just two
groups: *blacklisted* (recently served many consecutive requests, i.e.
likely interference-causing) and *non-blacklisted*.  The scheduling order
is:

1. non-blacklisted applications' requests first,
2. then row-buffer hits,
3. then the oldest request.

An application is blacklisted when ``blacklisting_threshold`` of its
requests are served back-to-back; the blacklist is cleared every
``clearing_interval`` cycles.  The paper evaluates BLISS with a threshold
of 4 and a clearing interval of 10 000 cycles (Section 8.4, footnote 3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Set

from ..controller.queues import RequestQueue
from ..controller.request import Request, RequestType
from .base import MemoryScheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..controller.memory_controller import ChannelController


def bliss_select_index(
    self,
    queue: RequestQueue,
    controller: "ChannelController",
    now: int,
) -> int:
    """BLISS scan: non-blacklisted first, then row hits, then oldest.

    A module-level codegen unit (see :mod:`repro.sim.codegen`): the
    class executes it as its ``select_index`` method and the compiled
    engine inlines the same source into its serve loop.
    """
    best_index = -1
    best_key = None
    blacklist = self.blacklist
    open_rows = controller.channel.open_rows
    rows = queue._rows
    qbanks = queue._banks
    for index, request in enumerate(queue._entries):
        bank = qbanks[index]
        if bank == -2:  # SLOT_UNDECODED: direct queue use (tests).
            bank = queue.repair_slot(index, controller)
        row_hit = bank >= 0 and open_rows[bank] == rows[index]
        key = (
            0 if request.core_id not in blacklist else 1,
            0 if row_hit else 1,
            request.arrival_cycle,
            request.request_id,
        )
        if best_key is None or key < best_key:
            best_index, best_key = index, key
    return best_index


def bliss_notify_served(self, request: Request, now: int) -> None:
    """Consecutive-service accounting feeding the blacklist (codegen unit)."""
    core = request.core_id
    if core == self._last_served_core:
        self._consecutive_served += 1
    else:
        self._last_served_core = core
        self._consecutive_served = 1
    if self._consecutive_served >= self.blacklisting_threshold and core not in self.blacklist:
        self.blacklist.add(core)
        self.blacklist_events += 1


class BLISS(MemoryScheduler):
    """Blacklisting memory scheduler."""

    name = "bliss"

    def __init__(self, blacklisting_threshold: int = 4, clearing_interval: int = 10_000) -> None:
        if blacklisting_threshold <= 0:
            raise ValueError("blacklisting_threshold must be positive")
        if clearing_interval <= 0:
            raise ValueError("clearing_interval must be positive")
        self.blacklisting_threshold = blacklisting_threshold
        self.clearing_interval = clearing_interval
        self.blacklist: Set[int] = set()
        self._last_served_core: Optional[int] = None
        self._consecutive_served = 0
        self._last_clear_cycle = 0
        # Statistics.
        self.blacklist_events = 0
        self.clear_events = 0

    # -- scheduling ---------------------------------------------------------------

    select_index = bliss_select_index

    def select(
        self,
        queue: RequestQueue,
        controller: "ChannelController",
        now: int,
    ) -> Optional[Request]:
        index = self.select_index(queue, controller, now)
        return None if index < 0 else queue._entries[index]

    # -- bookkeeping --------------------------------------------------------------

    notify_served = bliss_notify_served

    def tick(self, now: int) -> None:
        if now - self._last_clear_cycle >= self.clearing_interval:
            if self.blacklist:
                self.clear_events += 1
            self.blacklist.clear()
            self._last_clear_cycle = now

    def next_event_cycle(self, now: int) -> Optional[int]:
        # The blacklist-clearing boundary must be ticked exactly: clearing
        # resets ``_last_clear_cycle`` to the cycle it runs at, so jumping
        # past the boundary would shift every later clearing interval.
        return self._last_clear_cycle + self.clearing_interval

    def reset(self) -> None:
        self.blacklist.clear()
        self._last_served_core = None
        self._consecutive_served = 0
        self._last_clear_cycle = 0
