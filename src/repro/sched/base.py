"""Scheduler interface shared by all memory request schedulers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Optional

from ..controller.queues import RequestQueue
from ..controller.request import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..controller.memory_controller import ChannelController


class MemoryScheduler(ABC):
    """Selects which queued request a channel controller services next.

    A scheduler only chooses among *regular* (read/write) requests of a
    single queue.  Designs with separate RNG queues (DR-STRaNGe, the
    Greedy Idle design) wrap a regular scheduler and add queue-selection
    logic on top (see :class:`repro.core.rng_scheduler.RNGAwareScheduler`).
    """

    name = "abstract"

    @abstractmethod
    def select(
        self,
        queue: RequestQueue,
        controller: "ChannelController",
        now: int,
    ) -> Optional[Request]:
        """Return the request to service next, or ``None`` to idle."""

    def select_index(
        self,
        queue: RequestQueue,
        controller: "ChannelController",
        now: int,
    ) -> int:
        """Index in ``queue`` of the request :meth:`select` would return.

        ``-1`` means "idle" (no selectable request).  The built-in
        schedulers override this with native single-scan implementations
        and derive :meth:`select` from it; the hot serve paths use the
        index form so dequeuing needs no identity re-scan of the queue.
        """
        request = self.select(queue, controller, now)
        if request is None:
            return -1
        return queue._entries.index(request)

    def notify_served(self, request: Request, now: int) -> None:
        """Hook invoked after ``request`` has been issued to the devices."""

    def tick(self, now: int) -> None:
        """Per-cycle hook (e.g. for interval-based bookkeeping)."""

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest cycle at which :meth:`tick` is *not* a no-op.

        ``None`` means the scheduler has no self-generated events (its
        per-cycle hook never changes state), so a cycle-skipping engine
        may jump over it freely; see :mod:`repro.sim.engine`.
        """
        return None

    def reset(self) -> None:
        """Reset any scheduling state (between simulations)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}()"
