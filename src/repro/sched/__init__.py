"""Baseline memory request schedulers (FR-FCFS, FR-FCFS+Cap, BLISS)."""

from .base import MemoryScheduler
from .bliss import BLISS
from .frfcfs import FRFCFS, FRFCFSCap


def make_scheduler(name: str, **kwargs) -> MemoryScheduler:
    """Construct a baseline scheduler by name.

    Recognised names: ``"fr-fcfs"``, ``"fr-fcfs+cap"``, ``"bliss"``.
    Keyword arguments are forwarded to the scheduler constructor.
    """
    normalized = name.lower().replace("_", "-")
    if normalized in ("fr-fcfs", "frfcfs"):
        return FRFCFS(**kwargs)
    if normalized in ("fr-fcfs+cap", "frfcfs+cap", "frfcfs-cap", "fr-fcfs-cap"):
        return FRFCFSCap(**kwargs)
    if normalized == "bliss":
        return BLISS(**kwargs)
    raise ValueError(
        f"unknown scheduler {name!r}; expected one of 'fr-fcfs', 'fr-fcfs+cap', 'bliss'"
    )


__all__ = ["MemoryScheduler", "FRFCFS", "FRFCFSCap", "BLISS", "make_scheduler"]
