"""First-Ready First-Come-First-Serve schedulers.

``FRFCFS`` is the classic policy: row-buffer hits first, then the oldest
request.  ``FRFCFSCap`` additionally caps the number of *consecutive* row
hits that may be served from the same row (a "column cap" of 16 in the
paper's baseline, following Mutlu & Moscibroda's STFM paper), which bounds
how long a high-row-locality application can monopolise a bank.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from ..controller.queues import RequestQueue
from ..controller.request import Request, RequestType
from .base import MemoryScheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..controller.memory_controller import ChannelController


class FRFCFS(MemoryScheduler):
    """First-ready (row hit) first, then first-come-first-serve."""

    name = "fr-fcfs"

    def select(
        self,
        queue: RequestQueue,
        controller: "ChannelController",
        now: int,
    ) -> Optional[Request]:
        oldest_hit: Optional[Request] = None
        oldest: Optional[Request] = None
        for request in queue:
            if oldest is None:
                oldest = request
            if self._is_row_hit(request, controller) and oldest_hit is None:
                oldest_hit = request
        return oldest_hit if oldest_hit is not None else oldest

    @staticmethod
    def _is_row_hit(request: Request, controller: "ChannelController") -> bool:
        if request.type is RequestType.RNG:
            return False
        decoded = controller.decode(request)
        return controller.channel.is_row_hit(decoded.bank_id(controller.organization), decoded.row)


class FRFCFSCap(FRFCFS):
    """FR-FCFS with a cap on consecutive row hits from the same row.

    The cap prevents the unfair prioritisation of applications with very
    high row-buffer locality: after ``cap`` row hits have been served from
    the same open row without interruption, the scheduler falls back to the
    oldest request even if further hits are pending.
    """

    name = "fr-fcfs+cap"

    def __init__(self, cap: int = 16) -> None:
        if cap <= 0:
            raise ValueError(f"column cap must be positive, got {cap}")
        self.cap = cap
        # (bank_id, row) of the current hit streak and its length.
        self._streak_key: Optional[Tuple[int, int]] = None
        self._streak_length = 0

    def select(
        self,
        queue: RequestQueue,
        controller: "ChannelController",
        now: int,
    ) -> Optional[Request]:
        oldest_hit: Optional[Request] = None
        oldest: Optional[Request] = None
        for request in queue:
            if oldest is None:
                oldest = request
            if oldest_hit is None and self._is_row_hit(request, controller):
                key = self._row_key(request, controller)
                if not (key == self._streak_key and self._streak_length >= self.cap):
                    oldest_hit = request
        return oldest_hit if oldest_hit is not None else oldest

    def notify_served(self, request: Request, now: int) -> None:
        if request.type is RequestType.RNG:
            self._streak_key = None
            self._streak_length = 0
            return
        key = (request.decoded.bank_id(self._org), request.decoded.row) if request.decoded else None
        if key is not None and key == self._streak_key:
            self._streak_length += 1
        else:
            self._streak_key = key
            self._streak_length = 1

    def select_and_track(self, queue, controller, now):  # pragma: no cover - legacy alias
        return self.select(queue, controller, now)

    # ``notify_served`` needs the organization to compute flat bank ids; the
    # controller injects it once at construction time via ``bind``.
    _org = None

    def bind(self, organization) -> None:
        """Associate the DRAM organization (called by the controller)."""
        self._org = organization

    @staticmethod
    def _row_key(request: Request, controller: "ChannelController") -> Tuple[int, int]:
        decoded = controller.decode(request)
        return (decoded.bank_id(controller.organization), decoded.row)

    def reset(self) -> None:
        self._streak_key = None
        self._streak_length = 0
