"""First-Ready First-Come-First-Serve schedulers.

``FRFCFS`` is the classic policy: row-buffer hits first, then the oldest
request.  ``FRFCFSCap`` additionally caps the number of *consecutive* row
hits that may be served from the same row (a "column cap" of 16 in the
paper's baseline, following Mutlu & Moscibroda's STFM paper), which bounds
how long a high-row-locality application can monopolise a bank.

The hot scan/bookkeeping bodies are module-level *codegen units*
(:func:`frfcfs_select_index`, :func:`frfcfs_cap_select_index`,
:func:`frfcfs_cap_notify_served`): the classes execute them directly as
methods, and :mod:`repro.sim.codegen` inlines the same source into the
compiled engine's serve loop — one source of truth, rendered two ways.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from ..controller.queues import RequestQueue
from ..controller.request import Request, RequestType
from .base import MemoryScheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..controller.memory_controller import ChannelController


def frfcfs_select_index(
    self,
    queue: RequestQueue,
    controller: "ChannelController",
    now: int,
) -> int:
    """FR-FCFS scan: the first (oldest) row hit wins, else the oldest.

    Iterates the queue's preextracted slot arrays (flat bank id and row
    per entry, see :class:`RequestQueue`) instead of touching request
    objects: one integer compare per queued entry, with the request
    object only materialised for the winner.
    """
    if not queue._entries:
        return -1
    open_rows = controller.channel.open_rows
    rows = queue._rows
    for index, bank in enumerate(queue._banks):
        if bank == -2:  # SLOT_UNDECODED: direct queue use (tests).
            bank = queue.repair_slot(index, controller)
        if bank >= 0 and open_rows[bank] == rows[index]:
            # First (oldest) row hit wins; nothing later can
            # change the outcome.
            return index
    return 0


def frfcfs_cap_select_index(
    self,
    queue: RequestQueue,
    controller: "ChannelController",
    now: int,
) -> int:
    """FR-FCFS scan with the consecutive-row-hit cap applied."""
    if not queue._entries:
        return -1
    open_rows = controller.channel.open_rows
    rows = queue._rows
    capped_key = self._streak_key if self._streak_length >= self.cap else None
    for index, bank in enumerate(queue._banks):
        if bank == -2:  # SLOT_UNDECODED: direct queue use (tests).
            bank = queue.repair_slot(index, controller)
        if bank >= 0:
            row = rows[index]
            if open_rows[bank] == row and (
                capped_key is None or capped_key != (bank, row)
            ):
                return index
    return 0


def frfcfs_cap_notify_served(self, request: Request, now: int) -> None:
    """Track the consecutive-hit streak the cap is measured against."""
    if request.type is RequestType.RNG:
        self._streak_key = None
        self._streak_length = 0
        return
    key = (request.decoded.flat_bank, request.decoded.row) if request.decoded else None
    if key is not None and key == self._streak_key:
        self._streak_length += 1
    else:
        self._streak_key = key
        self._streak_length = 1


class FRFCFS(MemoryScheduler):
    """First-ready (row hit) first, then first-come-first-serve."""

    name = "fr-fcfs"

    select_index = frfcfs_select_index

    def select(
        self,
        queue: RequestQueue,
        controller: "ChannelController",
        now: int,
    ) -> Optional[Request]:
        index = self.select_index(queue, controller, now)
        return None if index < 0 else queue._entries[index]


class FRFCFSCap(FRFCFS):
    """FR-FCFS with a cap on consecutive row hits from the same row.

    The cap prevents the unfair prioritisation of applications with very
    high row-buffer locality: after ``cap`` row hits have been served from
    the same open row without interruption, the scheduler falls back to the
    oldest request even if further hits are pending.
    """

    name = "fr-fcfs+cap"

    def __init__(self, cap: int = 16) -> None:
        if cap <= 0:
            raise ValueError(f"column cap must be positive, got {cap}")
        self.cap = cap
        # (bank_id, row) of the current hit streak and its length.
        self._streak_key: Optional[Tuple[int, int]] = None
        self._streak_length = 0

    select_index = frfcfs_cap_select_index

    notify_served = frfcfs_cap_notify_served

    def select_and_track(self, queue, controller, now):  # pragma: no cover - legacy alias
        return self.select(queue, controller, now)

    # ``notify_served`` needs the organization to compute flat bank ids; the
    # controller injects it once at construction time via ``bind``.
    _org = None

    def bind(self, organization) -> None:
        """Associate the DRAM organization (called by the controller)."""
        self._org = organization

    @staticmethod
    def _row_key(request: Request, controller: "ChannelController") -> Tuple[int, int]:
        decoded = controller.decode(request)
        return (decoded.flat_bank, decoded.row)

    def reset(self) -> None:
        self._streak_key = None
        self._streak_length = 0
