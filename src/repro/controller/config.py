"""Configuration of a channel memory controller."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ControllerConfig:
    """Tunables of one channel controller.

    The defaults mirror the paper's Table 1 (32-entry read/write queues)
    plus the modelling constants of this reproduction (issue look-ahead,
    backend latency, and the RNG mode-switch penalty that models the cost
    of changing DRAM timing parameters when entering/leaving RNG mode).
    """

    read_queue_capacity: int = 32
    write_queue_capacity: int = 32
    rng_queue_capacity: int = 32
    #: Write-drain high/low watermarks (forced drain starts/stops here).
    write_drain_high: int = 16
    write_drain_low: int = 4
    #: Only issue a new request when the data bus frees up within this
    #: many cycles; limits how far ahead the controller locks in ordering.
    issue_lookahead: int = 8
    #: Fixed cycles between DRAM data return and the core receiving it
    #: (interconnect + LLC fill).
    backend_latency: int = 10
    #: One-way penalty (cycles) for switching between Regular Execution
    #: Mode and RNG Mode (timing-parameter reconfiguration).
    rng_mode_switch_penalty: int = 12

    def __post_init__(self) -> None:
        if self.read_queue_capacity <= 0 or self.write_queue_capacity <= 0:
            raise ValueError("queue capacities must be positive")
        if self.rng_queue_capacity <= 0:
            raise ValueError("rng_queue_capacity must be positive")
        if not 0 <= self.write_drain_low < self.write_drain_high:
            raise ValueError("write drain watermarks must satisfy 0 <= low < high")
        if self.write_drain_high > self.write_queue_capacity:
            raise ValueError("write_drain_high cannot exceed the write queue capacity")
        if self.issue_lookahead < 0 or self.backend_latency < 0:
            raise ValueError("latencies must be non-negative")
        if self.rng_mode_switch_penalty < 0:
            raise ValueError("rng_mode_switch_penalty must be non-negative")
