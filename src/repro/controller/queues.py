"""Bounded memory request queues used by the memory controller."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from .request import Request, RequestType


class RequestQueue:
    """A bounded FIFO of memory requests.

    Requests are kept in arrival order.  Schedulers may remove any entry
    (out-of-order service), but the queue preserves arrival order for
    "oldest first" policies.
    """

    #: Slot-array sentinel: the entry is an RNG request (never a row hit).
    SLOT_RNG = -1
    #: Slot-array sentinel: the entry was pushed undecoded; schedulers
    #: repair the slot lazily via :meth:`repair_slot`.
    SLOT_UNDECODED = -2

    def __init__(self, capacity: int = 32, name: str = "queue") -> None:
        if capacity <= 0:
            raise ValueError(f"queue capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._entries: List[Request] = []
        #: Preextracted per-entry DRAM coordinates, parallel to
        #: ``_entries``: flat bank id and row of each queued request,
        #: maintained on push/remove.  The FR-FCFS/BLISS row-hit scans —
        #: the hottest per-request work in dense simulations — iterate
        #: these flat integer arrays instead of touching request objects
        #: (``request.type`` / ``request.decoded`` attribute chains).
        #: ``SLOT_RNG`` marks RNG-type entries (no row to hit);
        #: ``SLOT_UNDECODED`` marks entries pushed without a decoded
        #: address (direct queue use in tests), repaired lazily by the
        #: first scheduler scan that meets them.
        self._banks: List[int] = []
        self._rows: List[int] = []
        #: Queued RNG-type requests, maintained on push/remove.  Serving
        #: an RNG request switches the channel into RNG mode, which the
        #: batched-serve fast path cannot replay; the counter lets the
        #: engine's window pre-flight test this in O(1) instead of
        #: scanning the queue (see :meth:`ChannelController.serve_batch`).
        self.rng_pending = 0
        # Statistics.
        self.total_enqueued = 0
        self.total_dequeued = 0
        self.rejected = 0
        self.occupancy_samples = 0
        self.occupancy_sum = 0

    # -- container protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, request: Request) -> bool:
        return request in self._entries

    # -- queue operations ---------------------------------------------------------

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def push(self, request: Request) -> bool:
        """Append ``request`` if there is space; return ``False`` otherwise."""
        if len(self._entries) >= self.capacity:
            self.rejected += 1
            return False
        self._entries.append(request)
        if request.type is RequestType.RNG:
            self._banks.append(self.SLOT_RNG)
            self._rows.append(0)
            self.rng_pending += 1
        else:
            decoded = request.decoded
            if decoded is None:
                self._banks.append(self.SLOT_UNDECODED)
                self._rows.append(0)
            else:
                self._banks.append(decoded.flat_bank)
                self._rows.append(decoded.row)
        self.total_enqueued += 1
        return True

    def repair_slot(self, index: int, controller) -> int:
        """Decode an undecoded slot in place; return its flat bank id.

        Only reachable through direct queue use (tests pushing requests
        the controller never decoded); the simulator's enqueue path
        decodes every non-RNG request before pushing it.
        """
        decoded = controller.decode(self._entries[index])
        self._banks[index] = decoded.flat_bank
        self._rows[index] = decoded.row
        return decoded.flat_bank

    def remove(self, request: Request) -> None:
        """Remove a specific request (after the scheduler selected it)."""
        index = self._entries.index(request)
        del self._entries[index]
        del self._banks[index]
        del self._rows[index]
        if request.type is RequestType.RNG:
            self.rng_pending -= 1
        self.total_dequeued += 1

    def remove_at(self, index: int) -> Request:
        """Remove and return the request at ``index``.

        The index-returning scheduler selects use this to skip the
        identity re-scan :meth:`remove` would do.
        """
        request = self._entries.pop(index)
        del self._banks[index]
        del self._rows[index]
        if request.type is RequestType.RNG:
            self.rng_pending -= 1
        self.total_dequeued += 1
        return request

    def pop_oldest(self) -> Optional[Request]:
        """Remove and return the oldest request, or ``None`` if empty."""
        if not self._entries:
            return None
        request = self._entries.pop(0)
        del self._banks[0]
        del self._rows[0]
        if request.type is RequestType.RNG:
            self.rng_pending -= 1
        self.total_dequeued += 1
        return request

    def oldest(self) -> Optional[Request]:
        """Return (without removing) the oldest request."""
        return self._entries[0] if self._entries else None

    def requests(self) -> List[Request]:
        """A snapshot list of queued requests in arrival order."""
        return list(self._entries)

    def requests_from(self, core_ids: Iterable[int]) -> List[Request]:
        """Queued requests issued by any of ``core_ids``."""
        wanted = set(core_ids)
        return [r for r in self._entries if r.core_id in wanted]

    def has_request_from(self, core_id: int) -> bool:
        """Whether any queued request belongs to ``core_id``."""
        return any(r.core_id == core_id for r in self._entries)

    def sample_occupancy(self) -> None:
        """Record the current occupancy for average-occupancy statistics."""
        self.occupancy_samples += 1
        self.occupancy_sum += len(self._entries)

    def bulk_sample_occupancy(self, samples: int) -> None:
        """Record ``samples`` occupancy samples at the current occupancy.

        Used by the cycle-skipping engine: while cycles are skipped no
        request can enter or leave the queue, so every skipped sample
        observes the same occupancy.
        """
        self.occupancy_samples += samples
        self.occupancy_sum += samples * len(self._entries)

    @property
    def average_occupancy(self) -> float:
        if not self.occupancy_samples:
            return 0.0
        return self.occupancy_sum / self.occupancy_samples

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RequestQueue({self.name}, {len(self._entries)}/{self.capacity})"
