"""Memory controller substrate: requests, queues and channel controllers."""

from .config import ControllerConfig
from .memory_controller import (
    BaselineQueuePolicy,
    ChannelController,
    ControllerStats,
    ExecutionMode,
)
from .queues import RequestQueue
from .request import Request, RequestType, make_read, make_rng, make_write

__all__ = [
    "BaselineQueuePolicy",
    "ChannelController",
    "ControllerConfig",
    "ControllerStats",
    "ExecutionMode",
    "Request",
    "RequestQueue",
    "RequestType",
    "make_read",
    "make_rng",
    "make_write",
]
