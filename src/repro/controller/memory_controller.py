"""Per-channel memory controller.

One :class:`ChannelController` manages a single DRAM channel: it owns the
bounded read/write (and, for RNG-aware designs, RNG) request queues, asks
its scheduler which request to service next, drives the channel device
model, and tracks idle periods and execution-mode changes.

The controller has two execution modes, exactly as in the paper
(Section 5): *Regular Execution Mode*, in which it services ordinary
read/write requests, and *RNG Mode*, in which the channel is dedicated to
random number generation with violated timing parameters (either to serve
an on-demand RNG request, or to fill the random number buffer during idle
periods).  Switching modes pays a timing-parameter reconfiguration
penalty.

Design-specific behaviour is injected rather than subclassed:

* ``queue_policy`` decides which queue to serve next (the baseline policy
  simply runs the configured scheduler on the read queue; DR-STRaNGe's
  RNG-aware scheduler is a different policy, see
  :mod:`repro.core.rng_scheduler`).
* ``fill_policy`` decides when to generate random numbers for the buffer
  during idle / low-utilisation periods (``None`` for the RNG-oblivious
  baseline; see :mod:`repro.core.fill_policies`).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, List, Optional, Tuple

from ..dram.channel import Channel
from ..dram.dram_system import DRAMSystem
from ..sched.base import MemoryScheduler
from ..sched.frfcfs import FRFCFSCap
from ..trng.base import DRAMTRNGModel
from .config import ControllerConfig
from .queues import RequestQueue
from .request import Request, RequestType


class ExecutionMode(Enum):
    """Execution mode of the memory controller."""

    REGULAR = "regular"
    RNG = "rng"


@dataclass
class ControllerStats:
    """Per-controller counters."""

    served_reads: int = 0
    served_writes: int = 0
    served_rng_demand: int = 0
    rng_chained_demand: int = 0
    rng_fill_batches: int = 0
    rng_fill_bits: int = 0
    idle_cycles: int = 0
    busy_cycles: int = 0
    rng_mode_cycles: int = 0
    mode_switches: int = 0
    idle_periods: List[int] = field(default_factory=list)
    low_utilization_fills: int = 0

    @property
    def total_cycles(self) -> int:
        return self.idle_cycles + self.busy_cycles + self.rng_mode_cycles

    @property
    def served_regular(self) -> int:
        return self.served_reads + self.served_writes


@dataclass
class _RNGOperation:
    """An in-progress RNG-mode operation on this channel."""

    purpose: str  # "demand" or "fill"
    segment_end: int
    bits_in_segment: int
    request: Optional[Request] = None


class BaselineQueuePolicy:
    """Queue selection of the RNG-oblivious baseline.

    RNG demand requests live in the regular read queue and are selected by
    the underlying scheduler like any other request (they never hit the
    row buffer, so FR-FCFS services them in arrival order among misses).
    """

    name = "baseline"

    def select(
        self, controller: "ChannelController", now: int
    ) -> Optional[Tuple[RequestQueue, Request]]:
        request = controller.scheduler.select(controller.read_queue, controller, now)
        if request is not None:
            return controller.read_queue, request
        # If the controller happens to have a dedicated RNG queue but no
        # RNG-aware policy, still drain it (oldest first) so RNG requests
        # cannot starve behind an empty read queue.
        if controller.rng_queue is not None and len(controller.rng_queue) > 0:
            return controller.rng_queue, controller.rng_queue.oldest()
        return None

    def notify_rng_application(self, core_id: int) -> None:
        """The baseline does not distinguish RNG applications."""

    def reset(self) -> None:
        """No internal state."""


class ChannelController:
    """Memory controller for a single DRAM channel."""

    def __init__(
        self,
        channel: Channel,
        dram: DRAMSystem,
        scheduler: Optional[MemoryScheduler] = None,
        config: Optional[ControllerConfig] = None,
        trng: Optional[DRAMTRNGModel] = None,
        queue_policy=None,
        fill_policy=None,
        separate_rng_queue: bool = False,
    ) -> None:
        self.channel = channel
        self.dram = dram
        self.organization = dram.organization
        self.mapping = dram.mapping
        self.config = config or ControllerConfig()
        self.scheduler = scheduler or FRFCFSCap()
        if isinstance(self.scheduler, FRFCFSCap):
            self.scheduler.bind(self.organization)
        self.trng = trng
        self.queue_policy = queue_policy or BaselineQueuePolicy()
        self.fill_policy = fill_policy

        cfg = self.config
        self.read_queue = RequestQueue(cfg.read_queue_capacity, name=f"read[{channel.channel_id}]")
        self.write_queue = RequestQueue(
            cfg.write_queue_capacity, name=f"write[{channel.channel_id}]"
        )
        self.rng_queue: Optional[RequestQueue] = (
            RequestQueue(cfg.rng_queue_capacity, name=f"rng[{channel.channel_id}]")
            if separate_rng_queue
            else None
        )

        self.mode = ExecutionMode.REGULAR
        self.stats = ControllerStats()
        self.idle_streak = 0
        self.last_accessed_address = 0
        self._rng_op: Optional[_RNGOperation] = None
        self._inflight: List[Tuple[int, int, Request]] = []
        self._inflight_counter = itertools.count()
        self._write_draining = False
        self._idle_period_listeners: List[Callable[[int, int, int], None]] = []
        self._arrival_listeners: List[Callable[[int, Request], None]] = []

    # ------------------------------------------------------------------ properties

    @property
    def channel_id(self) -> int:
        return self.channel.channel_id

    @property
    def in_rng_mode(self) -> bool:
        return self.mode is ExecutionMode.RNG

    def decode(self, request: Request):
        """Return (and cache) the decoded DRAM coordinates of a request."""
        if request.decoded is None:
            request.decoded = self.mapping.decode(request.address)
        return request.decoded

    def read_queue_occupancy(self) -> int:
        """Number of pending regular read requests."""
        return len(self.read_queue)

    def has_pending_regular_work(self) -> bool:
        """Whether any regular (non-RNG) request is queued or in flight."""
        return bool(self.read_queue) or bool(self.write_queue) or bool(self._inflight)

    def is_idle(self, now: int) -> bool:
        """Idle: no regular work queued/in flight and the data bus is free."""
        return (
            not self.read_queue
            and not self.write_queue
            and not self._inflight
            and self.channel.is_bus_free(now)
            and self.mode is ExecutionMode.REGULAR
        )

    # ------------------------------------------------------------------ listeners

    def add_idle_period_listener(self, listener: Callable[[int, int, int], None]) -> None:
        """Register ``listener(channel_id, idle_length, last_address)``.

        Called whenever an idle period ends because a regular request
        arrived; this is the hook the DRAM idleness predictors train on.
        """
        self._idle_period_listeners.append(listener)

    def add_arrival_listener(self, listener: Callable[[int, Request], None]) -> None:
        """Register ``listener(channel_id, request)`` for request arrivals."""
        self._arrival_listeners.append(listener)

    # ------------------------------------------------------------------ enqueue

    def enqueue(self, request: Request) -> bool:
        """Add a request to the appropriate queue; ``False`` if it is full."""
        if request.type is RequestType.READ:
            queue = self.read_queue
        elif request.type is RequestType.WRITE:
            queue = self.write_queue
        elif self.rng_queue is not None:
            queue = self.rng_queue
        else:
            queue = self.read_queue

        if request.type is not RequestType.RNG:
            self.decode(request)

        if not queue.push(request):
            return False

        if request.type is not RequestType.RNG:
            self._end_idle_period(request)
            self.last_accessed_address = request.address
        for listener in self._arrival_listeners:
            listener(self.channel_id, request)
        return True

    def _end_idle_period(self, request: Request) -> None:
        if self.idle_streak > 0:
            length = self.idle_streak
            self.stats.idle_periods.append(length)
            for listener in self._idle_period_listeners:
                listener(self.channel_id, length, self.last_accessed_address)
        self.idle_streak = 0

    # ------------------------------------------------------------------ main loop

    def tick(self, now: int) -> None:
        """Advance the controller by one bus cycle."""
        self.scheduler.tick(now)
        self._complete_finished(now)
        self._advance_rng_mode(now)

        # Idle periods are defined with respect to *regular* traffic
        # (Section 5.1): the streak keeps counting while the channel is
        # generating random numbers, so that the idleness predictors are
        # trained on the true gap between regular requests.
        if not self.has_pending_regular_work():
            self.idle_streak += 1

        if self.mode is ExecutionMode.RNG:
            self.stats.rng_mode_cycles += 1
            self.read_queue.sample_occupancy()
            return

        if self.is_idle(now):
            self.stats.idle_cycles += 1
            if self.fill_policy is not None:
                self.fill_policy.on_idle_cycle(self, now)
        else:
            self.stats.busy_cycles += 1

        self.read_queue.sample_occupancy()

        if self.fill_policy is not None and self.fill_policy.should_start_fill(self, now):
            self._start_fill(now)
            return

        self._schedule_regular(now)

    # ------------------------------------------------------------------ completion

    def _complete_finished(self, now: int) -> None:
        while self._inflight and self._inflight[0][0] <= now:
            completion, _, request = heapq.heappop(self._inflight)
            request.complete(completion)

    # ------------------------------------------------------------------ RNG mode

    def _advance_rng_mode(self, now: int) -> None:
        op = self._rng_op
        if self.mode is not ExecutionMode.RNG or op is None:
            return
        if now < op.segment_end:
            return

        if op.purpose == "demand":
            self.stats.served_rng_demand += 1
            if op.request is not None:
                op.request.complete(now)
            # Serve further queued RNG requests back-to-back while the
            # channel is already in RNG mode: batching them avoids paying
            # the timing-parameter switch penalty per request (Section 1:
            # "RNG requests are received in bursts and served together").
            chained = self._chain_demand_rng(now)
            if not chained:
                self._exit_rng_mode(now)
            return

        # Buffer-filling batch completed.
        self.stats.rng_fill_batches += 1
        self.stats.rng_fill_bits += op.bits_in_segment
        if self.fill_policy is not None:
            self.fill_policy.batch_generated(self, op.bits_in_segment, now)
        if self.fill_policy is not None and self.fill_policy.should_continue_fill(self, now):
            bits = self.trng.bits_per_batch(self.organization.banks_per_channel)
            duration = self.trng.batch_latency_cycles
            end = self.channel.occupy_for_rng(now, duration, bits)
            self._rng_op = _RNGOperation("fill", end, bits)
        else:
            self._exit_rng_mode(now)

    def _exit_rng_mode(self, now: int) -> None:
        penalty = self.config.rng_mode_switch_penalty
        if penalty:
            self.channel.occupy_for_rng(now, penalty, 0)
        self.mode = ExecutionMode.REGULAR
        self._rng_op = None
        self.stats.mode_switches += 1

    def _enter_rng_mode(self, now: int) -> int:
        """Pay the entry penalty; return the cycle RNG work can start."""
        self.mode = ExecutionMode.RNG
        self.stats.mode_switches += 1
        penalty = self.config.rng_mode_switch_penalty
        if penalty:
            return self.channel.occupy_for_rng(now, penalty, 0)
        return now

    def _start_demand_rng(self, queue: RequestQueue, request: Request, now: int) -> None:
        if self.trng is None:
            raise RuntimeError("controller has no TRNG model but received an RNG request")
        queue.remove(request)
        self.scheduler.notify_served(request, now)
        request.issue_cycle = now
        start = self._enter_rng_mode(now)
        duration = self.trng.demand_latency_cycles(
            request.rng_bits,
            self.organization.channels,
            self.organization.banks_per_channel,
            self.dram.timing.bus_frequency_mhz,
        )
        end = self.channel.occupy_for_rng(start, duration, request.rng_bits)
        self._rng_op = _RNGOperation("demand", end, request.rng_bits, request)

    def _chain_demand_rng(self, now: int) -> bool:
        """Start the next queued RNG request without leaving RNG mode."""
        selection = self.queue_policy.select(self, now)
        if selection is None:
            return False
        queue, request = selection
        if request is None or request.type is not RequestType.RNG:
            return False
        queue.remove(request)
        self.scheduler.notify_served(request, now)
        request.issue_cycle = now
        duration = self.trng.demand_latency_cycles(
            request.rng_bits,
            self.organization.channels,
            self.organization.banks_per_channel,
            self.dram.timing.bus_frequency_mhz,
        )
        end = self.channel.occupy_for_rng(now, duration, request.rng_bits)
        self._rng_op = _RNGOperation("demand", end, request.rng_bits, request)
        self.stats.rng_chained_demand += 1
        return True

    def _start_fill(self, now: int) -> None:
        if self.trng is None:
            raise RuntimeError("controller has no TRNG model but was asked to fill the buffer")
        start = self._enter_rng_mode(now)
        bits = self.trng.bits_per_batch(self.organization.banks_per_channel)
        duration = self.trng.batch_latency_cycles
        end = self.channel.occupy_for_rng(start, duration, bits)
        self._rng_op = _RNGOperation("fill", end, bits)
        if self.read_queue:
            self.stats.low_utilization_fills += 1

    # ------------------------------------------------------------------ regular mode

    def _schedule_regular(self, now: int) -> None:
        if self.channel.bus_free_at - now > self.config.issue_lookahead:
            return

        if self._should_drain_writes():
            request = self._select_write(now)
            if request is not None:
                self._issue_regular(self.write_queue, request, now)
            return

        selection = self.queue_policy.select(self, now)
        if selection is not None:
            queue, request = selection
            if request.type is RequestType.RNG:
                self._start_demand_rng(queue, request, now)
            else:
                self._issue_regular(queue, request, now)
            return

        # Opportunistic write issue when there is nothing else to do.
        if self.write_queue:
            request = self._select_write(now)
            if request is not None:
                self._issue_regular(self.write_queue, request, now)

    def _should_drain_writes(self) -> bool:
        if self._write_draining:
            if len(self.write_queue) <= self.config.write_drain_low:
                self._write_draining = False
        elif len(self.write_queue) >= self.config.write_drain_high:
            self._write_draining = True
        return self._write_draining

    def _select_write(self, now: int) -> Optional[Request]:
        # Writes are served oldest-first with a row-hit preference.
        best = None
        for request in self.write_queue:
            decoded = self.decode(request)
            if self.channel.is_row_hit(decoded.bank_id(self.organization), decoded.row):
                return request
            if best is None:
                best = request
        return best

    def _issue_regular(self, queue: RequestQueue, request: Request, now: int) -> None:
        queue.remove(request)
        request.issue_cycle = now
        decoded = self.decode(request)
        finish, _ = self.channel.service_access(
            decoded.bank_id(self.organization),
            decoded.row,
            now,
            is_write=request.is_write,
        )
        self.scheduler.notify_served(request, now)
        if request.is_write:
            self.stats.served_writes += 1
            request.complete(finish)
        else:
            self.stats.served_reads += 1
            completion = finish + self.config.backend_latency
            heapq.heappush(self._inflight, (completion, next(self._inflight_counter), request))

    # ------------------------------------------------------------------ finalisation

    def flush_idle_period(self) -> None:
        """Record a trailing idle period at the end of a simulation."""
        if self.idle_streak > 0:
            self.stats.idle_periods.append(self.idle_streak)
            self.idle_streak = 0
