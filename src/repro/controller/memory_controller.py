"""Per-channel memory controller.

One :class:`ChannelController` manages a single DRAM channel: it owns the
bounded read/write (and, for RNG-aware designs, RNG) request queues, asks
its scheduler which request to service next, drives the channel device
model, and tracks idle periods and execution-mode changes.

The controller has two execution modes, exactly as in the paper
(Section 5): *Regular Execution Mode*, in which it services ordinary
read/write requests, and *RNG Mode*, in which the channel is dedicated to
random number generation with violated timing parameters (either to serve
an on-demand RNG request, or to fill the random number buffer during idle
periods).  Switching modes pays a timing-parameter reconfiguration
penalty.

Design-specific behaviour is injected rather than subclassed:

* ``queue_policy`` decides which queue to serve next (the baseline policy
  simply runs the configured scheduler on the read queue; DR-STRaNGe's
  RNG-aware scheduler is a different policy, see
  :mod:`repro.core.rng_scheduler`).
* ``fill_policy`` decides when to generate random numbers for the buffer
  during idle / low-utilisation periods (``None`` for the RNG-oblivious
  baseline; see :mod:`repro.core.fill_policies`).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, List, Optional, Tuple

from ..dram.channel import Channel
from ..dram.dram_system import DRAMSystem
from ..sched.base import MemoryScheduler
from ..sched.frfcfs import FRFCFSCap
from ..trng.base import DRAMTRNGModel
from .config import ControllerConfig
from .queues import RequestQueue
from .request import Request, RequestType


class ExecutionMode(Enum):
    """Execution mode of the memory controller."""

    REGULAR = "regular"
    RNG = "rng"


@dataclass(slots=True)
class ControllerStats:
    """Per-controller counters."""

    served_reads: int = 0
    served_writes: int = 0
    served_rng_demand: int = 0
    rng_chained_demand: int = 0
    rng_fill_batches: int = 0
    rng_fill_bits: int = 0
    idle_cycles: int = 0
    busy_cycles: int = 0
    rng_mode_cycles: int = 0
    mode_switches: int = 0
    idle_periods: List[int] = field(default_factory=list)
    low_utilization_fills: int = 0

    @property
    def total_cycles(self) -> int:
        return self.idle_cycles + self.busy_cycles + self.rng_mode_cycles

    @property
    def served_regular(self) -> int:
        return self.served_reads + self.served_writes


@dataclass
class _RNGOperation:
    """An in-progress RNG-mode operation on this channel."""

    purpose: str  # "demand" or "fill"
    segment_end: int
    bits_in_segment: int
    request: Optional[Request] = None


class BaselineQueuePolicy:
    """Queue selection of the RNG-oblivious baseline.

    RNG demand requests live in the regular read queue and are selected by
    the underlying scheduler like any other request (they never hit the
    row buffer, so FR-FCFS services them in arrival order among misses).
    """

    name = "baseline"

    def select(
        self, controller: "ChannelController", now: int
    ) -> Optional[Tuple[RequestQueue, Request]]:
        request = controller.scheduler.select(controller.read_queue, controller, now)
        if request is not None:
            return controller.read_queue, request
        # If the controller happens to have a dedicated RNG queue but no
        # RNG-aware policy, still drain it (oldest first) so RNG requests
        # cannot starve behind an empty read queue.
        if controller.rng_queue is not None and len(controller.rng_queue) > 0:
            return controller.rng_queue, controller.rng_queue.oldest()
        return None

    def notify_rng_application(self, core_id: int) -> None:
        """The baseline does not distinguish RNG applications."""

    def reset(self) -> None:
        """No internal state."""


def channel_serve_batch(self, now: int, limit: int) -> None:
    """Resolve every serve decision in cycles ``[now, limit)`` in one call.

    The engine calls this instead of per-cycle dispatch when the
    decision inputs are provably stable across the window (see
    :func:`repro.sim.engine.serve_window_end`):

    * no request arrives at this controller during the window (every
      core is window-stalled and the RNG subsystem is quiet),
    * the controller is in Regular Execution Mode with pending regular
      work throughout the window (no idle transition, so the idle
      streak and fill policy stay untouched),
    * no RNG-type request is queued (serving one would switch modes),
    * the within-queue scheduler has no event in the window (e.g. a
      BLISS clearing boundary),
    * no completion inside the window re-activates a core (waking
      completions bound the window), and
    * the fill policy reports no low-utilisation hazard at ``now``.

    Under those preconditions every tick in the window is either a
    quiet busy tick (constant counter deltas, applied in bulk) or a
    serve tick whose decision depends only on controller-local state —
    so the reference tick sequence is replayed exactly, just without
    returning to the engine between cycles.  Completions due inside
    the window fire at their recorded cycles' effects (the latency a
    callback records uses the request's own ``completion_cycle``) and
    only flip mid-window slots, which no stalled core observes before
    the window ends.

    A module-level codegen unit: :class:`ChannelController` executes it
    directly (``serve_batch = channel_serve_batch``) and
    :mod:`repro.sim.codegen` specialises the same source — the
    ``_fast_policy`` test folded to the design's constant and the
    scheduler's hoisted ``select_index`` / ``notify_served`` locals
    inlined as the concrete scheduler's scan.
    """
    inflight = self._inflight
    read_queue = self.read_queue
    read_entries = read_queue._entries
    write_entries = self.write_queue._entries
    channel = self.channel
    lookahead = self._issue_lookahead
    backend_latency = self._backend_latency
    inflight_counter = self._inflight_counter
    stats = self.stats
    scheduler = self.scheduler
    # Per-serve call targets resolved once per window: the scheduler's
    # scan and bookkeeping hooks, the channel's access model and the
    # heap primitives are all loop-invariant.
    select_index = scheduler.select_index
    notify_served = scheduler.notify_served
    service_access = channel.service_access
    remove_at = read_queue.remove_at
    heappush = heapq.heappush
    heappop = heapq.heappop
    # The RNG-oblivious baseline policy reduces to the within-queue
    # scheduler when the RNG queue is empty (guaranteed in a serve
    # window) — bypass the policy layer for it.  No request arrives
    # during the window, so a read-only backlog stays read-only and
    # the write-drain hysteresis cannot engage: the branch holds for
    # the whole window and is hoisted out of the loop.
    fast = self._fast_policy and not write_entries and not self._write_draining

    # Close any quiet segment deferred from before the window; the
    # cycles [now, first serve point) are accounted inline below.
    if self._skip_kind is not None:
        self.catch_up(now)

    t = channel.bus_free_at - lookahead
    if t < now:
        t = now
    elif t > now:
        # Quiet busy lead-in (the bus is still draining): same bulk
        # accounting as `skip_cycles` with kind "busy" and pending
        # regular work (no idle streak).
        lead = min(t, limit) - now
        stats.busy_cycles += lead
        read_queue.bulk_sample_occupancy(lead)

    while t < limit and (read_entries or write_entries):
        # Faithful replay of `tick(t)`: the scheduler has no event in
        # the window (its per-cycle hook is a no-op by the
        # next_event_cycle contract), completions due fire first, the
        # cycle is busy (pending regular work, never idle), occupancy
        # is sampled before scheduling, and the fill check was proven
        # false for the whole window by the pre-flight.
        while inflight and inflight[0][0] <= t:
            completion, _, request = heappop(inflight)
            request.completion_cycle = completion
            callback = request.callback
            if callback is not None:
                callback(request)
            pool = request.pool
            if pool is not None:
                pool.append(request)
        stats.busy_cycles += 1
        read_queue.occupancy_samples += 1
        read_queue.occupancy_sum += len(read_entries)
        if fast:
            index = select_index(read_queue, self, t)
            if index >= 0:
                # Read issue inlined (the window preconditions
                # guarantee the read queue holds only decoded
                # non-RNG reads): body of _issue_regular's read
                # branch, minus the identity re-scan remove() and
                # the write-path tests.
                request = remove_at(index)
                request.issue_cycle = t
                decoded = request.decoded
                if decoded is None:
                    decoded = self.decode(request)
                finish, _ = service_access(
                    decoded.flat_bank, decoded.row, t, is_write=False
                )
                notify_served(request, t)
                stats.served_reads += 1
                completion = finish + backend_latency
                heappush(
                    inflight, (completion, next(inflight_counter), request)
                )
                slot = request.window_slot
                if slot is not None:
                    slot.ready_at = completion
        else:
            self._schedule_regular(t)
        nxt = channel.bus_free_at - lookahead
        if nxt <= t:
            nxt = t + 1
        elif nxt > limit:
            nxt = limit
        gap = nxt - t - 1
        if gap > 0:
            stats.busy_cycles += gap
            read_queue.bulk_sample_occupancy(gap)
        t = nxt

    if t < limit:
        # Work ran out (reads all in flight): the rest of the window
        # is quiet busy cycles.
        tail = limit - t
        stats.busy_cycles += tail
        read_queue.bulk_sample_occupancy(tail)

    # Completions due strictly inside the window fire before the
    # engine resumes; one due exactly at `limit` is the next event.
    while inflight and inflight[0][0] < limit:
        completion, _, request = heappop(inflight)
        request.completion_cycle = completion
        callback = request.callback
        if callback is not None:
            callback(request)
        pool = request.pool
        if pool is not None:
            pool.append(request)

    # Prime the event-bound cache for the engine's next probe (every
    # constituent is at or past `limit` by the window preconditions);
    # with no work left, fall back to a normal recompute.
    if read_entries or write_entries:
        self._prime_queued_bound(limit)
    else:
        self._bound_cache_valid = False


def channel_tick(self, now: int) -> None:
    """Advance the controller by one bus cycle.

    A module-level codegen unit like :func:`channel_serve_batch`:
    :class:`ChannelController` executes it directly
    (``tick = channel_tick``) and :mod:`repro.sim.codegen` renders the
    same source with the design-resolved hooks (``_scheduler_tick``,
    ``_scheduler_event_probe``, ``fill_policy``, ``_fill_buffer``)
    folded to the spec's constants and the scheduling call pointed at
    the specialised :func:`channel_schedule_regular` rendering.
    """
    if self._skip_kind is not None:
        self.catch_up(now)
    self._bound_cache_valid = False
    if self._scheduler_tick is not None:
        self._scheduler_tick(now)
    inflight = self._inflight
    if inflight and inflight[0][0] <= now:
        self._complete_finished(now)
    if self._rng_op is not None:
        self._advance_rng_mode(now)

    # Idle periods are defined with respect to *regular* traffic
    # (Section 5.1): the streak keeps counting while the channel is
    # generating random numbers, so that the idleness predictors are
    # trained on the true gap between regular requests.
    read_queue = self.read_queue
    pending = read_queue._entries or self.write_queue._entries or inflight
    if not pending:
        self.idle_streak += 1

    if self.mode is ExecutionMode.RNG:
        self.stats.rng_mode_cycles += 1
        read_queue.occupancy_samples += 1
        read_queue.occupancy_sum += len(read_queue._entries)
        return

    if not pending and now >= self.channel.bus_free_at:
        self.stats.idle_cycles += 1
        if self.fill_policy is not None:
            self.fill_policy.on_idle_cycle(self, now)
    else:
        self.stats.busy_cycles += 1

    # Inline occupancy sample (sample_occupancy would be a call per tick).
    read_queue.occupancy_samples += 1
    read_queue.occupancy_sum += len(read_queue._entries)

    if self.fill_policy is not None and self.fill_policy.should_start_fill(self, now):
        self._start_fill(now)
        return

    self._schedule_regular(now)

    # Prime the event-bound cache while the post-schedule state is at
    # hand (body of _prime_queued_bound, inlined on this per-tick
    # path); the idle branches (fill events, bus-drain-to-idle) and
    # RNG mode stay on the full recompute path.
    if self.mode is ExecutionMode.REGULAR and (
        read_queue._entries or self.write_queue._entries
    ):
        bound = self.channel.bus_free_at - self._issue_lookahead
        if bound < now:
            bound = now
        inflight = self._inflight
        if inflight and inflight[0][0] < bound:
            bound = inflight[0][0]
        if self._scheduler_event_probe is not None:
            event = self._scheduler_event_probe(now)
            if event is not None and event < bound:
                bound = event
        self._bound_cache = bound
        self._bound_cache_valid = True
        buffer = self._fill_buffer
        if buffer is not None:
            self._fill_buffer_version = buffer.version


def channel_schedule_regular(self, now: int) -> None:
    """One Regular-Execution-Mode scheduling decision at cycle ``now``.

    A module-level codegen unit: :class:`ChannelController` executes it
    directly (``_schedule_regular = channel_schedule_regular``) and
    :mod:`repro.sim.codegen` specialises the same source — the
    ``_fast_policy`` test folded to the design's constant and the
    scheduler's hoisted ``select_index`` / ``notify_served`` locals
    inlined as the concrete scheduler's scan, mirroring
    :func:`channel_serve_batch`.
    """
    channel = self.channel
    if channel.bus_free_at - now > self._issue_lookahead:
        return

    if self._should_drain_writes():
        request = self._select_write(now)
        if request is not None:
            self._issue_regular(self.write_queue, request, now)
        return

    if self._fast_policy:
        # Baseline policy inlined: within-queue scheduler over the
        # read queue, then the stray-RNG-queue drain it falls back to.
        read_queue = self.read_queue
        scheduler = self.scheduler
        select_index = scheduler.select_index
        index = select_index(read_queue, self, now)
        if index >= 0:
            request = read_queue._entries[index]
            if request.type is RequestType.RNG:
                self._start_demand_rng(read_queue, request, now)
                return
            # Issue inlined (body of _issue_regular, minus the
            # identity re-scan remove() — the slot index is in hand).
            read_queue.remove_at(index)
            request.issue_cycle = now
            decoded = request.decoded
            if decoded is None:
                decoded = self.decode(request)
            is_write = request.type is RequestType.WRITE
            finish, _ = channel.service_access(
                decoded.flat_bank, decoded.row, now, is_write=is_write
            )
            notify_served = scheduler.notify_served
            notify_served(request, now)
            if is_write:
                self.stats.served_writes += 1
                request.completion_cycle = finish
                callback = request.callback
                if callback is not None:
                    callback(request)
                pool = request.pool
                if pool is not None:
                    pool.append(request)
            else:
                self.stats.served_reads += 1
                completion = finish + self._backend_latency
                heapq.heappush(
                    self._inflight,
                    (completion, next(self._inflight_counter), request),
                )
                slot = request.window_slot
                if slot is not None:
                    slot.ready_at = completion
            return
        rng_queue = self.rng_queue
        if rng_queue is not None and rng_queue._entries:
            self._start_demand_rng(rng_queue, rng_queue._entries[0], now)
            return
    else:
        selection = self.queue_policy.select(self, now)
        if selection is not None:
            queue, request = selection
            if request.type is RequestType.RNG:
                self._start_demand_rng(queue, request, now)
            else:
                self._issue_regular(queue, request, now)
            return

    # Opportunistic write issue when there is nothing else to do.
    if self.write_queue._entries:
        request = self._select_write(now)
        if request is not None:
            self._issue_regular(self.write_queue, request, now)


def controller_next_event_cycle(self, now: int) -> Optional[int]:
    """Lower bound on the next cycle at which the controller changes state.

    Returns ``now`` when the controller cannot bound its next event
    (the engine must tick it normally), a future cycle when every
    tick before that cycle is *quiet* (only linear counters advance,
    which :func:`controller_skip_cycles` applies in bulk), or ``None``
    when the controller generates no events at all until new work
    arrives — arrivals come from cores and the RNG subsystem, whose
    own bounds cover them.

    A module-level codegen unit: :class:`ChannelController` executes it
    directly (``next_event_cycle = controller_next_event_cycle``) and
    :mod:`repro.sim.codegen` inlines the same source at the generated
    dispatch loop's bound-scan sites with the fill-buffer check folded
    to the design's constant.
    """
    if self._bound_cache_valid:
        buffer = self._fill_buffer
        if buffer is None or buffer.version == self._fill_buffer_version:
            return self._bound_cache
        self._bound_cache_valid = False
    # Recomputing must see current state: close any deferred quiet
    # segment first (e.g. the idle streak a fill-policy threshold is
    # measured against — a buffer change elsewhere can invalidate the
    # cache mid-deferral).
    if self._skip_kind is not None:
        self.catch_up(now)
    bound = self._compute_event_bound(now)
    if bound is None or bound > now:
        # Quiet bounds are cacheable: everything they derive from is
        # frozen until the next tick or enqueue invalidates them.
        self._bound_cache = bound
        self._bound_cache_valid = True
        buffer = self._fill_buffer
        if buffer is not None:
            self._fill_buffer_version = buffer.version
    return bound


def controller_skip_cycles(self, now: int, target: int) -> None:
    """Note the quiet ticks for cycles ``[now, target)``.

    Only valid when :func:`controller_next_event_cycle` returned at
    least ``target``: every skipped tick then increments counters whose
    per-cycle deltas are constant across the range.  The counters are
    not applied eagerly — consecutive quiet ranges with the same
    classification (idle / busy / RNG mode) collapse into a single
    deferred segment that :func:`controller_catch_up` closes before the
    next state change (a tick, an arriving request, or the end of the
    simulation).

    A module-level codegen unit (``skip_cycles = controller_skip_cycles``
    on the class); the generated dispatch inlines it with the
    fill-policy snapshot folded away for fill-less designs.
    """
    pending = self.read_queue._entries or self.write_queue._entries or self._inflight
    if self.mode is ExecutionMode.RNG:
        kind = "rng"
    elif not pending and now >= self.channel.bus_free_at:
        kind = "idle"
    else:
        kind = "busy"
    if kind == self._skip_kind:
        return
    if self._skip_kind is not None:
        self._apply_skip(now)
    self._skip_kind = kind
    self._skip_from = now
    self._skip_streak = not pending
    if kind == "idle" and self.fill_policy is not None:
        # Idle segments replay the fill policy's per-cycle checks at
        # close time; snapshot the state those checks must run under
        # (the shared buffer can change before the segment closes).
        self._skip_fill_gate = self.fill_policy.begin_idle_skip(self)


def controller_catch_up(self, now: int) -> None:
    """Close the deferred quiet segment before state changes at ``now``.

    A module-level codegen unit (``catch_up = controller_catch_up``).
    """
    if self._skip_kind is not None:
        self._apply_skip(now)
        self._skip_kind = None


def controller_apply_skip(self, end: int) -> None:
    """Apply the deferred segment's counters for cycles ``[from, end)``.

    A module-level codegen unit (``_apply_skip = controller_apply_skip``);
    the generated rendering folds the fill-policy replay to the design's
    constant.
    """
    skipped = end - self._skip_from
    if skipped <= 0:
        return
    stats = self.stats
    kind = self._skip_kind
    if self._skip_streak:
        self.idle_streak += skipped
    if kind == "idle":
        stats.idle_cycles += skipped
        if self.fill_policy is not None:
            self.fill_policy.skip_idle_cycles(self, skipped, self._skip_fill_gate)
    elif kind == "busy":
        stats.busy_cycles += skipped
    else:
        stats.rng_mode_cycles += skipped
    queue = self.read_queue
    queue.occupancy_samples += skipped
    queue.occupancy_sum += skipped * len(queue._entries)


class ChannelController:
    """Memory controller for a single DRAM channel."""

    def __init__(
        self,
        channel: Channel,
        dram: DRAMSystem,
        scheduler: Optional[MemoryScheduler] = None,
        config: Optional[ControllerConfig] = None,
        trng: Optional[DRAMTRNGModel] = None,
        queue_policy=None,
        fill_policy=None,
        separate_rng_queue: bool = False,
    ) -> None:
        self.channel = channel
        self.dram = dram
        self.organization = dram.organization
        self.mapping = dram.mapping
        self.config = config or ControllerConfig()
        self.scheduler = scheduler or FRFCFSCap()
        if isinstance(self.scheduler, FRFCFSCap):
            self.scheduler.bind(self.organization)
        self.trng = trng
        self.queue_policy = queue_policy or BaselineQueuePolicy()
        self.fill_policy = fill_policy
        # Schedulers that keep the base class no-op tick never produce
        # events; resolving that once keeps the per-iteration event-bound
        # probe of the cycle-skipping engine allocation- and call-free.
        self._scheduler_event_probe = (
            self.scheduler.next_event_cycle
            if type(self.scheduler).next_event_cycle is not MemoryScheduler.next_event_cycle
            else None
        )
        # Same resolution for the per-cycle hook itself: most schedulers
        # keep the base no-op, so the hot tick path skips the call.
        self._scheduler_tick = (
            self.scheduler.tick
            if type(self.scheduler).tick is not MemoryScheduler.tick
            else None
        )

        cfg = self.config
        self.read_queue = RequestQueue(cfg.read_queue_capacity, name=f"read[{channel.channel_id}]")
        self.write_queue = RequestQueue(
            cfg.write_queue_capacity, name=f"write[{channel.channel_id}]"
        )
        self.rng_queue: Optional[RequestQueue] = (
            RequestQueue(cfg.rng_queue_capacity, name=f"rng[{channel.channel_id}]")
            if separate_rng_queue
            else None
        )

        # Hot-path scalars hoisted out of the config dataclass, and the
        # queue-policy type resolved once: the RNG-oblivious baseline
        # policy reduces to the within-queue scheduler whenever the RNG
        # queue is empty, so the per-serve policy dispatch can be
        # bypassed (see _schedule_regular / serve_batch).
        self._issue_lookahead = cfg.issue_lookahead
        self._backend_latency = cfg.backend_latency
        self._write_drain_high = cfg.write_drain_high
        self._write_drain_low = cfg.write_drain_low
        self._fast_policy = type(self.queue_policy) is BaselineQueuePolicy

        self.mode = ExecutionMode.REGULAR
        self.stats = ControllerStats()
        self.idle_streak = 0
        self.last_accessed_address = 0
        self._rng_op: Optional[_RNGOperation] = None
        self._inflight: List[Tuple[int, int, Request]] = []
        self._inflight_counter = itertools.count()
        self._write_draining = False
        self._idle_period_listeners: List[Callable[[int, int, int], None]] = []
        self._arrival_listeners: List[Callable[[int, Request], None]] = []

        # Cycle-skipping state (see next_event_cycle / skip_cycles).  The
        # event-bound cache holds the last quiet bound: every constituent
        # (inflight head, RNG segment end, bus release, blacklist clear,
        # fill-policy threshold crossing) is an absolute cycle frozen
        # while the controller is quiet, so it stays valid until the next
        # tick or enqueue — or until the shared random number buffer
        # (which the fill decision may consult) changes under us.
        self._bound_cache: Optional[int] = None
        self._bound_cache_valid = False
        self._fill_buffer = getattr(fill_policy, "buffer", None)
        self._fill_buffer_version = -1
        # Deferred quiet bookkeeping: while consecutive skipped cycles
        # share one classification, only the segment start is recorded;
        # the counters are applied in one batch when the segment closes.
        self._skip_kind: Optional[str] = None
        self._skip_from = 0
        self._skip_streak = False
        self._skip_fill_gate = None

    # ------------------------------------------------------------------ properties

    @property
    def channel_id(self) -> int:
        return self.channel.channel_id

    @property
    def in_rng_mode(self) -> bool:
        return self.mode is ExecutionMode.RNG

    def decode(self, request: Request):
        """Return (and cache) the decoded DRAM coordinates of a request."""
        if request.decoded is None:
            request.decoded = self.mapping.decode(request.address)
        return request.decoded

    def read_queue_occupancy(self) -> int:
        """Number of pending regular read requests."""
        return len(self.read_queue)

    def has_pending_regular_work(self) -> bool:
        """Whether any regular (non-RNG) request is queued or in flight."""
        return bool(self.read_queue) or bool(self.write_queue) or bool(self._inflight)

    def is_idle(self, now: int) -> bool:
        """Idle: no regular work queued/in flight and the data bus is free."""
        return (
            not self.read_queue
            and not self.write_queue
            and not self._inflight
            and self.channel.is_bus_free(now)
            and self.mode is ExecutionMode.REGULAR
        )

    # ------------------------------------------------------------------ listeners

    def add_idle_period_listener(self, listener: Callable[[int, int, int], None]) -> None:
        """Register ``listener(channel_id, idle_length, last_address)``.

        Called whenever an idle period ends because a regular request
        arrived; this is the hook the DRAM idleness predictors train on.
        """
        self._idle_period_listeners.append(listener)

    def add_arrival_listener(self, listener: Callable[[int, Request], None]) -> None:
        """Register ``listener(channel_id, request)`` for request arrivals."""
        self._arrival_listeners.append(listener)

    # ------------------------------------------------------------------ enqueue

    def enqueue(self, request: Request) -> bool:
        """Add a request to the appropriate queue; ``False`` if it is full."""
        # Arriving work ends any deferred quiet segment (the idle streak
        # and predictor bookkeeping must be current before the arrival
        # listeners observe them) and invalidates the cached event bound.
        # Requests arrive after this cycle's controller phase, whose quiet
        # slot was already granted, so the segment closes *through* the
        # current cycle — exactly like the tick that would have preceded
        # the arrival in the reference engine.
        if self._skip_kind is not None:
            self.catch_up(self.dram.now + 1)
        self._bound_cache_valid = False
        if request.type is RequestType.READ:
            queue = self.read_queue
        elif request.type is RequestType.WRITE:
            queue = self.write_queue
        elif self.rng_queue is not None:
            queue = self.rng_queue
        else:
            queue = self.read_queue

        if request.type is not RequestType.RNG and request.decoded is None:
            self.decode(request)

        if not queue.push(request):
            return False

        if request.type is not RequestType.RNG:
            if self.idle_streak > 0:
                self._end_idle_period(request)
            self.last_accessed_address = request.address
        if self._arrival_listeners:
            for listener in self._arrival_listeners:
                listener(self.channel_id, request)
        return True

    def _end_idle_period(self, request: Request) -> None:
        if self.idle_streak > 0:
            length = self.idle_streak
            self.stats.idle_periods.append(length)
            for listener in self._idle_period_listeners:
                listener(self.channel_id, length, self.last_accessed_address)
        self.idle_streak = 0

    # ------------------------------------------------------------------ main loop

    # The per-cycle step executes the module-level channel_tick for the
    # contract and the codegen story (see its docstring).
    tick = channel_tick

    # ------------------------------------------------------------------ cycle skipping

    # Event bound with quiet-bound caching: the module-level codegen
    # unit (see its docstring for the contract).
    next_event_cycle = controller_next_event_cycle

    def _prime_queued_bound(self, now: int) -> None:
        """Cache the event bound for the queued-regular-work state.

        Mirrors :meth:`_compute_event_bound`'s queued-work branch —
        scheduler event, completion head, issue-lookahead resume — for
        the two hot exits that already know regular work is pending (the
        end of a serving tick and the end of a serve batch), so the
        engine's next probe is a cache hit instead of a recompute.  Only
        valid in Regular Execution Mode with the read or write queue
        non-empty; any new event source added to the queued-work branch
        of :meth:`_compute_event_bound` must be folded in here too.
        """
        bound = self.channel.bus_free_at - self._issue_lookahead
        if bound < now:
            bound = now
        inflight = self._inflight
        if inflight and inflight[0][0] < bound:
            bound = inflight[0][0]
        if self._scheduler_event_probe is not None:
            event = self._scheduler_event_probe(now)
            if event is not None and event < bound:
                bound = event
        self._bound_cache = bound
        self._bound_cache_valid = True
        buffer = self._fill_buffer
        if buffer is not None:
            self._fill_buffer_version = buffer.version

    def _compute_event_bound(self, now: int) -> Optional[int]:
        bound: Optional[int] = None
        if self._scheduler_event_probe is not None:
            scheduler_event = self._scheduler_event_probe(now)
            if scheduler_event is not None:
                if scheduler_event <= now:
                    return now
                bound = scheduler_event
        if self._inflight:
            completion = self._inflight[0][0]
            if completion <= now:
                return now
            if bound is None or completion < bound:
                bound = completion

        if self.mode is ExecutionMode.RNG:
            op = self._rng_op
            if op is None or op.segment_end <= now:
                return now
            if bound is None or op.segment_end < bound:
                bound = op.segment_end
            return bound

        if self.read_queue or self.write_queue or (self.rng_queue is not None and self.rng_queue):
            # Work is queued: the controller issues every cycle unless the
            # issue lookahead blocks it while the data bus drains.
            resume = self.channel.bus_free_at - self.config.issue_lookahead
            if resume <= now:
                return now
            if bound is None or resume < bound:
                bound = resume
            return bound

        if not self.channel.is_bus_free(now):
            # No queued work, but the bus is still draining: busy cycles
            # until it frees, at which point the idle period (and the fill
            # policy) starts.
            free = self.channel.earliest_free_cycle(now)
            if bound is None or free < bound:
                bound = free
            return bound

        if self._inflight:
            # Queues empty and bus free, but reads are in flight: the
            # controller stays busy (never idle) until the completion
            # already folded into ``bound`` above.
            return bound

        if self.fill_policy is not None:
            fill_event = self.fill_policy.idle_event_cycle(self, now)
            if fill_event is not None:
                if fill_event <= now:
                    return now
                if bound is None or fill_event < bound:
                    bound = fill_event
        return bound

    # Deferred quiet-segment bookkeeping: the module-level codegen units
    # (see their docstrings for the contract).
    skip_cycles = controller_skip_cycles
    catch_up = controller_catch_up

    # ------------------------------------------------------------------ batched serving

    # The interpreted rendering of the shared batched-serving unit (see
    # module-level channel_serve_batch for the contract and the codegen
    # relationship).
    serve_batch = channel_serve_batch

    _apply_skip = controller_apply_skip

    # ------------------------------------------------------------------ completion

    def _complete_finished(self, now: int) -> None:
        while self._inflight and self._inflight[0][0] <= now:
            completion, _, request = heapq.heappop(self._inflight)
            request.completion_cycle = completion
            callback = request.callback
            if callback is not None:
                callback(request)
            pool = request.pool
            if pool is not None:
                pool.append(request)

    # ------------------------------------------------------------------ RNG mode

    def _advance_rng_mode(self, now: int) -> None:
        op = self._rng_op
        if self.mode is not ExecutionMode.RNG or op is None:
            return
        if now < op.segment_end:
            return

        if op.purpose == "demand":
            self.stats.served_rng_demand += 1
            if op.request is not None:
                op.request.complete(now)
            # Serve further queued RNG requests back-to-back while the
            # channel is already in RNG mode: batching them avoids paying
            # the timing-parameter switch penalty per request (Section 1:
            # "RNG requests are received in bursts and served together").
            chained = self._chain_demand_rng(now)
            if not chained:
                self._exit_rng_mode(now)
            return

        # Buffer-filling batch completed.
        self.stats.rng_fill_batches += 1
        self.stats.rng_fill_bits += op.bits_in_segment
        if self.fill_policy is not None:
            self.fill_policy.batch_generated(self, op.bits_in_segment, now)
        if self.fill_policy is not None and self.fill_policy.should_continue_fill(self, now):
            bits = self.trng.bits_per_batch(self.organization.banks_per_channel)
            duration = self.trng.batch_latency_cycles
            end = self.channel.occupy_for_rng(now, duration, bits)
            self._rng_op = _RNGOperation("fill", end, bits)
        else:
            self._exit_rng_mode(now)

    def _exit_rng_mode(self, now: int) -> None:
        penalty = self.config.rng_mode_switch_penalty
        if penalty:
            self.channel.occupy_for_rng(now, penalty, 0)
        self.mode = ExecutionMode.REGULAR
        self._rng_op = None
        self.stats.mode_switches += 1

    def _enter_rng_mode(self, now: int) -> int:
        """Pay the entry penalty; return the cycle RNG work can start."""
        self.mode = ExecutionMode.RNG
        self.stats.mode_switches += 1
        penalty = self.config.rng_mode_switch_penalty
        if penalty:
            return self.channel.occupy_for_rng(now, penalty, 0)
        return now

    def _start_demand_rng(self, queue: RequestQueue, request: Request, now: int) -> None:
        if self.trng is None:
            raise RuntimeError("controller has no TRNG model but received an RNG request")
        queue.remove(request)
        self.scheduler.notify_served(request, now)
        request.issue_cycle = now
        start = self._enter_rng_mode(now)
        duration = self.trng.demand_latency_cycles(
            request.rng_bits,
            self.organization.channels,
            self.organization.banks_per_channel,
            self.dram.timing.bus_frequency_mhz,
        )
        end = self.channel.occupy_for_rng(start, duration, request.rng_bits)
        self._rng_op = _RNGOperation("demand", end, request.rng_bits, request)

    def _chain_demand_rng(self, now: int) -> bool:
        """Start the next queued RNG request without leaving RNG mode."""
        selection = self.queue_policy.select(self, now)
        if selection is None:
            return False
        queue, request = selection
        if request is None or request.type is not RequestType.RNG:
            return False
        queue.remove(request)
        self.scheduler.notify_served(request, now)
        request.issue_cycle = now
        duration = self.trng.demand_latency_cycles(
            request.rng_bits,
            self.organization.channels,
            self.organization.banks_per_channel,
            self.dram.timing.bus_frequency_mhz,
        )
        end = self.channel.occupy_for_rng(now, duration, request.rng_bits)
        self._rng_op = _RNGOperation("demand", end, request.rng_bits, request)
        self.stats.rng_chained_demand += 1
        return True

    def _start_fill(self, now: int) -> None:
        if self.trng is None:
            raise RuntimeError("controller has no TRNG model but was asked to fill the buffer")
        start = self._enter_rng_mode(now)
        bits = self.trng.bits_per_batch(self.organization.banks_per_channel)
        duration = self.trng.batch_latency_cycles
        end = self.channel.occupy_for_rng(start, duration, bits)
        self._rng_op = _RNGOperation("fill", end, bits)
        if self.read_queue:
            self.stats.low_utilization_fills += 1

    # ------------------------------------------------------------------ regular mode

    # One scheduling decision per regular-mode cycle: the module-level
    # channel_schedule_regular (a codegen unit like serve_batch above).
    _schedule_regular = channel_schedule_regular

    def _should_drain_writes(self) -> bool:
        occupancy = len(self.write_queue._entries)
        if self._write_draining:
            if occupancy <= self._write_drain_low:
                self._write_draining = False
        elif occupancy >= self._write_drain_high:
            self._write_draining = True
        return self._write_draining

    def _select_write(self, now: int) -> Optional[Request]:
        # Writes are served oldest-first with a row-hit preference; the
        # scan walks the queue's preextracted bank/row slot arrays.
        queue = self.write_queue
        entries = queue._entries
        if not entries:
            return None
        open_rows = self.channel.open_rows
        rows = queue._rows
        for index, bank in enumerate(queue._banks):
            if bank == -2:  # SLOT_UNDECODED: direct queue use (tests).
                bank = queue.repair_slot(index, self)
            if bank >= 0 and open_rows[bank] == rows[index]:
                return entries[index]
        return entries[0]

    def _issue_regular(self, queue: RequestQueue, request: Request, now: int) -> None:
        queue.remove(request)
        self._issue_removed(request, now)

    def _issue_removed(self, request: Request, now: int) -> None:
        """Issue a request already dequeued by the caller."""
        request.issue_cycle = now
        decoded = request.decoded
        if decoded is None:
            decoded = self.decode(request)
        is_write = request.type is RequestType.WRITE
        finish, _ = self.channel.service_access(
            decoded.flat_bank,
            decoded.row,
            now,
            is_write=is_write,
        )
        self.scheduler.notify_served(request, now)
        if is_write:
            self.stats.served_writes += 1
            request.completion_cycle = finish
            callback = request.callback
            if callback is not None:
                callback(request)
            # Writes complete at issue; recycle the request into its
            # per-core arena right away.
            pool = request.pool
            if pool is not None:
                pool.append(request)
        else:
            self.stats.served_reads += 1
            completion = finish + self._backend_latency
            heapq.heappush(self._inflight, (completion, next(self._inflight_counter), request))
            # Publish the completion cycle on the core's window slot so
            # the batched-serve pre-flight can bound windows by waking
            # completions without scanning the in-flight heap.
            slot = request.window_slot
            if slot is not None:
                slot.ready_at = completion

    # ------------------------------------------------------------------ finalisation

    def flush_idle_period(self) -> None:
        """Record a trailing idle period at the end of a simulation."""
        if self.idle_streak > 0:
            self.stats.idle_periods.append(self.idle_streak)
            self.idle_streak = 0
