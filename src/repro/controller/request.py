"""Memory request types exchanged between cores and the memory controller."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional

from ..dram.address import DecodedAddress


class RequestType(Enum):
    """Kind of memory request."""

    READ = "read"
    WRITE = "write"
    RNG = "rng"


_request_ids = itertools.count()


@dataclass(slots=True, eq=False)
class Request:
    """A single memory request.

    ``READ`` and ``WRITE`` requests carry a physical address.  ``RNG``
    requests carry the number of random bits this (per-channel) request
    must produce; the 64-bit application-level random number request is
    split into one ``RNG`` request per channel by the RNG subsystem.

    Requests compare by *identity* (``eq=False``): every live request is
    a distinct object (``request_id`` is globally unique), and identity
    keeps the queues' membership scans (``list.index``/``in``) on the
    C fast path instead of field-by-field dataclass comparison.
    """

    type: RequestType
    core_id: int
    address: int = 0
    rng_bits: int = 0
    arrival_cycle: int = 0
    priority: int = 0
    callback: Optional[Callable[["Request"], None]] = None
    decoded: Optional[DecodedAddress] = None
    request_id: int = field(default_factory=lambda: next(_request_ids))
    # Book-keeping filled in by the controller.
    issue_cycle: Optional[int] = None
    completion_cycle: Optional[int] = None
    #: The instruction-window slot this read will complete (``None`` for
    #: writes, RNG requests and hand-built requests).  The controller
    #: publishes the completion cycle on it at issue time and the core's
    #: shared completion callback flips it done — replacing the per-read
    #: closure the core used to allocate.
    window_slot: Optional[object] = None
    #: Free-list this request returns to after its terminal completion
    #: (``None`` = never recycled).  The system installs one arena per
    #: core; the controller appends the request back after ``complete``
    #: has fired, so dense workloads reuse a bounded set of request
    #: objects instead of allocating one per memory access.
    pool: Optional[list] = None

    def __post_init__(self) -> None:
        if self.type is RequestType.RNG and self.rng_bits <= 0:
            raise ValueError("RNG requests must request a positive number of bits")
        if self.type is not RequestType.RNG and self.address < 0:
            raise ValueError("memory requests must have a non-negative address")

    def reuse(
        self,
        type: RequestType,
        address: int,
        arrival_cycle: int,
        callback: Optional[Callable[["Request"], None]],
        decoded: Optional[DecodedAddress],
        window_slot: Optional[object],
    ) -> "Request":
        """Re-initialise a recycled request from its per-core arena.

        ``core_id``, ``priority`` and ``pool`` are per-core constants and
        keep their values.  A *fresh* ``request_id`` is drawn from the
        same global counter a new allocation would use, so schedulers
        that tie-break on the id (BLISS) observe the exact sequence a
        non-recycling run produces.
        """
        self.type = type
        self.address = address
        self.arrival_cycle = arrival_cycle
        self.callback = callback
        self.decoded = decoded
        self.window_slot = window_slot
        self.request_id = next(_request_ids)
        self.issue_cycle = None
        self.completion_cycle = None
        return self

    @property
    def is_rng(self) -> bool:
        return self.type is RequestType.RNG

    @property
    def is_read(self) -> bool:
        return self.type is RequestType.READ

    @property
    def is_write(self) -> bool:
        return self.type is RequestType.WRITE

    @property
    def latency(self) -> Optional[int]:
        """Queueing + service latency, available once the request completed."""
        if self.completion_cycle is None:
            return None
        return self.completion_cycle - self.arrival_cycle

    def complete(self, cycle: int) -> None:
        """Mark the request as completed at ``cycle`` and fire its callback."""
        self.completion_cycle = cycle
        if self.callback is not None:
            self.callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        if self.is_rng:
            payload = f"bits={self.rng_bits}"
        else:
            payload = f"addr={self.address:#x}"
        return (
            f"Request(id={self.request_id}, {self.type.value}, core={self.core_id}, "
            f"{payload}, t={self.arrival_cycle})"
        )


def make_read(address: int, core_id: int, cycle: int, callback=None, priority: int = 0) -> Request:
    """Convenience constructor for a read request."""
    return Request(
        type=RequestType.READ,
        core_id=core_id,
        address=address,
        arrival_cycle=cycle,
        callback=callback,
        priority=priority,
    )


def make_write(address: int, core_id: int, cycle: int, priority: int = 0) -> Request:
    """Convenience constructor for a write request."""
    return Request(
        type=RequestType.WRITE,
        core_id=core_id,
        address=address,
        arrival_cycle=cycle,
        priority=priority,
    )


def make_rng(bits: int, core_id: int, cycle: int, callback=None, priority: int = 0) -> Request:
    """Convenience constructor for a per-channel RNG request."""
    return Request(
        type=RequestType.RNG,
        core_id=core_id,
        rng_bits=bits,
        arrival_cycle=cycle,
        callback=callback,
        priority=priority,
    )
