"""Memory request types exchanged between cores and the memory controller."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional

from ..dram.address import DecodedAddress


class RequestType(Enum):
    """Kind of memory request."""

    READ = "read"
    WRITE = "write"
    RNG = "rng"


_request_ids = itertools.count()


@dataclass(slots=True)
class Request:
    """A single memory request.

    ``READ`` and ``WRITE`` requests carry a physical address.  ``RNG``
    requests carry the number of random bits this (per-channel) request
    must produce; the 64-bit application-level random number request is
    split into one ``RNG`` request per channel by the RNG subsystem.
    """

    type: RequestType
    core_id: int
    address: int = 0
    rng_bits: int = 0
    arrival_cycle: int = 0
    priority: int = 0
    callback: Optional[Callable[["Request"], None]] = None
    decoded: Optional[DecodedAddress] = None
    request_id: int = field(default_factory=lambda: next(_request_ids))
    # Book-keeping filled in by the controller.
    issue_cycle: Optional[int] = None
    completion_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.type is RequestType.RNG and self.rng_bits <= 0:
            raise ValueError("RNG requests must request a positive number of bits")
        if self.type is not RequestType.RNG and self.address < 0:
            raise ValueError("memory requests must have a non-negative address")

    @property
    def is_rng(self) -> bool:
        return self.type is RequestType.RNG

    @property
    def is_read(self) -> bool:
        return self.type is RequestType.READ

    @property
    def is_write(self) -> bool:
        return self.type is RequestType.WRITE

    @property
    def latency(self) -> Optional[int]:
        """Queueing + service latency, available once the request completed."""
        if self.completion_cycle is None:
            return None
        return self.completion_cycle - self.arrival_cycle

    def complete(self, cycle: int) -> None:
        """Mark the request as completed at ``cycle`` and fire its callback."""
        self.completion_cycle = cycle
        if self.callback is not None:
            self.callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        if self.is_rng:
            payload = f"bits={self.rng_bits}"
        else:
            payload = f"addr={self.address:#x}"
        return (
            f"Request(id={self.request_id}, {self.type.value}, core={self.core_id}, "
            f"{payload}, t={self.arrival_cycle})"
        )


def make_read(address: int, core_id: int, cycle: int, callback=None, priority: int = 0) -> Request:
    """Convenience constructor for a read request."""
    return Request(
        type=RequestType.READ,
        core_id=core_id,
        address=address,
        arrival_cycle=cycle,
        callback=callback,
        priority=priority,
    )


def make_write(address: int, core_id: int, cycle: int, priority: int = 0) -> Request:
    """Convenience constructor for a write request."""
    return Request(
        type=RequestType.WRITE,
        core_id=core_id,
        address=address,
        arrival_cycle=cycle,
        priority=priority,
    )


def make_rng(bits: int, core_id: int, cycle: int, callback=None, priority: int = 0) -> Request:
    """Convenience constructor for a per-channel RNG request."""
    return Request(
        type=RequestType.RNG,
        core_id=core_id,
        rng_bits=bits,
        arrival_cycle=cycle,
        callback=callback,
        priority=priority,
    )
