"""Trace-driven CPU model: traces, cores and the multi-core processor."""

from .core import Core, CoreConfig, CoreStats
from .processor import Processor
from .trace import Trace, TraceEntry, merge_traces

__all__ = [
    "Core",
    "CoreConfig",
    "CoreStats",
    "Processor",
    "Trace",
    "TraceEntry",
    "merge_traces",
]
