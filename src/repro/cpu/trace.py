"""Instruction traces consumed by the trace-driven core model.

A trace is a sequence of :class:`TraceEntry` records.  Each entry
represents a small group of instructions, in the same spirit as
Ramulator's CPU trace format:

* ``bubbles`` non-memory instructions that execute without accessing
  main memory (they still occupy instruction-window slots and issue
  bandwidth),
* optionally one last-level-cache-missing memory **read** at ``address``,
* optionally one **writeback** to ``write_address`` (dirty eviction
  triggered by the read),
* optionally one blocking 64-bit **RNG request** (``rng_bits > 0``).

Traces are either generated synthetically (:mod:`repro.workloads`) or
loaded from a simple text format (one entry per line:
``bubbles [R <addr>] [W <addr>] [G <bits>]``).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence


@dataclass(frozen=True)
class TraceEntry:
    """One trace record: bubbles plus at most one read, write and RNG request."""

    bubbles: int = 0
    address: Optional[int] = None
    write_address: Optional[int] = None
    rng_bits: int = 0

    def __post_init__(self) -> None:
        if self.bubbles < 0:
            raise ValueError("bubbles must be non-negative")
        if self.rng_bits < 0:
            raise ValueError("rng_bits must be non-negative")
        if self.address is not None and self.address < 0:
            raise ValueError("address must be non-negative")
        if self.write_address is not None and self.write_address < 0:
            raise ValueError("write_address must be non-negative")

    @property
    def instruction_count(self) -> int:
        """Number of instructions this entry represents."""
        count = self.bubbles
        if self.address is not None:
            count += 1
        if self.rng_bits > 0:
            count += 1
        return count

    @property
    def has_memory_read(self) -> bool:
        return self.address is not None

    @property
    def has_rng_request(self) -> bool:
        return self.rng_bits > 0


class TraceColumns:
    """A trace precompiled into flat parallel columns (the replay kernel).

    The per-cycle core model replays its trace millions of times per
    simulation; going through :class:`TraceEntry` objects costs one
    attribute load (plus two *property calls*) per field per entry
    visit.  ``TraceColumns`` flattens the entry list once into four
    stdlib ``array('q')`` columns — machine-word signed integers, no
    numpy dependency — indexed by entry position:

    * ``bubbles[i]`` — non-memory instructions of entry ``i``,
    * ``read_addresses[i]`` — the LLC-missing read address, ``-1`` if
      the entry has no read,
    * ``write_addresses[i]`` — the writeback address, ``-1`` if none,
    * ``rng_bits[i]`` — requested random bits, ``0`` if none.

    :class:`~repro.cpu.core.Core` replays these columns with pure index
    arithmetic; both simulation engines share that replay path, so the
    compiled form cannot introduce an engine divergence by construction.

    Memory footprint: ``4 * 8 = 32`` bytes per trace entry (the columns
    are shared by every core replaying the same :class:`Trace` object
    within a process, including all alone-run replays).
    """

    __slots__ = ("bubbles", "read_addresses", "write_addresses", "rng_bits")

    def __init__(self, entries: Sequence[TraceEntry]) -> None:
        self.bubbles = array("q", [entry.bubbles for entry in entries])
        self.read_addresses = array(
            "q", [-1 if entry.address is None else entry.address for entry in entries]
        )
        self.write_addresses = array(
            "q",
            [-1 if entry.write_address is None else entry.write_address for entry in entries],
        )
        self.rng_bits = array("q", [entry.rng_bits for entry in entries])

    def __len__(self) -> int:
        return len(self.bubbles)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceColumns):
            return NotImplemented
        return (
            self.bubbles == other.bubbles
            and self.read_addresses == other.read_addresses
            and self.write_addresses == other.write_addresses
            and self.rng_bits == other.rng_bits
        )


class Trace:
    """An ordered collection of trace entries with a name and metadata."""

    def __init__(
        self,
        entries: Sequence[TraceEntry],
        name: str = "trace",
        metadata: Optional[dict] = None,
    ) -> None:
        self.entries: List[TraceEntry] = list(entries)
        if not self.entries:
            raise ValueError("a trace must contain at least one entry")
        self.name = name
        self.metadata = dict(metadata or {})
        self._columns: Optional[TraceColumns] = None
        self._columns_snapshot: tuple = ()

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def __getitem__(self, index: int) -> TraceEntry:
        return self.entries[index]

    @property
    def total_instructions(self) -> int:
        """Total number of instructions represented by the trace."""
        return sum(entry.instruction_count for entry in self.entries)

    @property
    def memory_reads(self) -> int:
        """Number of LLC-missing reads in the trace."""
        return sum(1 for entry in self.entries if entry.has_memory_read)

    @property
    def memory_writes(self) -> int:
        """Number of writebacks in the trace."""
        return sum(1 for entry in self.entries if entry.write_address is not None)

    @property
    def rng_requests(self) -> int:
        """Number of RNG requests in the trace."""
        return sum(1 for entry in self.entries if entry.has_rng_request)

    @property
    def mpki(self) -> float:
        """Misses (reads) per kilo-instruction of this trace."""
        instructions = self.total_instructions
        if not instructions:
            return 0.0
        return 1000.0 * self.memory_reads / instructions

    # -- precompilation -----------------------------------------------------------

    def columns(self) -> TraceColumns:
        """The trace precompiled into flat parallel arrays (cached).

        Compiled once per :class:`Trace` object at first use (simulation
        start) and shared by every core replaying it afterwards.  The
        cache is guarded by an identity snapshot of the entry list, so
        appending, removing or replacing entries all trigger a recompile
        (entries themselves are frozen, so element mutation is
        impossible).  The guard is a tuple compare over object
        identities — O(entries) pointer compares per call, negligible
        next to the simulation that follows.
        """
        entries = tuple(self.entries)
        columns = self._columns
        if columns is None or entries != self._columns_snapshot:
            columns = TraceColumns(entries)
            self._columns = columns
            self._columns_snapshot = entries
        return columns

    # -- serialisation ------------------------------------------------------------

    def format(self) -> str:
        """Render the trace in the simple text format (see :meth:`parse`)."""
        lines = [f"# trace {self.name}"]
        for entry in self.entries:
            parts = [str(entry.bubbles)]
            if entry.address is not None:
                parts += ["R", str(entry.address)]
            if entry.write_address is not None:
                parts += ["W", str(entry.write_address)]
            if entry.rng_bits:
                parts += ["G", str(entry.rng_bits)]
            lines.append(" ".join(parts))
        return "\n".join(lines) + "\n"

    @classmethod
    def parse(
        cls,
        text: str,
        name: str = "trace",
        metadata: Optional[dict] = None,
        source: str = "<string>",
    ) -> "Trace":
        """Parse the text format produced by :meth:`format`.

        The text format carries only the entry list; ``name`` and
        ``metadata`` must be supplied by the caller (or by
        :meth:`load`, which derives the name from the file stem).
        """
        entries: List[TraceEntry] = []
        for line_number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            entries.append(cls._parse_line(line, source, line_number))
        return cls(entries, name=name, metadata=metadata)

    def save(self, path: str | Path) -> None:
        """Write the trace in the simple text format."""
        Path(path).write_text(self.format(), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path, name: Optional[str] = None) -> "Trace":
        """Load a trace previously written by :meth:`save`."""
        path = Path(path)
        return cls.parse(
            path.read_text(encoding="utf-8"), name=name or path.stem, source=str(path)
        )

    @staticmethod
    def _parse_line(line: str, source, line_number: int) -> TraceEntry:
        tokens = line.split()
        try:
            bubbles = int(tokens[0])
            address = None
            write_address = None
            rng_bits = 0
            index = 1
            while index < len(tokens):
                tag = tokens[index]
                value = int(tokens[index + 1])
                if tag == "R":
                    address = value
                elif tag == "W":
                    write_address = value
                elif tag == "G":
                    rng_bits = value
                else:
                    raise ValueError(f"unknown tag {tag!r}")
                index += 2
        except (IndexError, ValueError) as exc:
            raise ValueError(f"{source}:{line_number}: malformed trace line {line!r}") from exc
        return TraceEntry(
            bubbles=bubbles, address=address, write_address=write_address, rng_bits=rng_bits
        )


def merge_traces(traces: Iterable[Trace], name: str = "merged") -> Trace:
    """Concatenate several traces into one (used to build phase behaviour)."""
    entries: List[TraceEntry] = []
    for trace in traces:
        entries.extend(trace.entries)
    return Trace(entries, name=name)
