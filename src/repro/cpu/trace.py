"""Instruction traces consumed by the trace-driven core model.

A trace is a sequence of :class:`TraceEntry` records.  Each entry
represents a small group of instructions, in the same spirit as
Ramulator's CPU trace format:

* ``bubbles`` non-memory instructions that execute without accessing
  main memory (they still occupy instruction-window slots and issue
  bandwidth),
* optionally one last-level-cache-missing memory **read** at ``address``,
* optionally one **writeback** to ``write_address`` (dirty eviction
  triggered by the read),
* optionally one blocking 64-bit **RNG request** (``rng_bits > 0``).

Traces are either generated synthetically (:mod:`repro.workloads`) or
loaded from a simple text format (one entry per line:
``bubbles [R <addr>] [W <addr>] [G <bits>]``).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence


@dataclass(frozen=True)
class TraceEntry:
    """One trace record: bubbles plus at most one read, write and RNG request."""

    bubbles: int = 0
    address: Optional[int] = None
    write_address: Optional[int] = None
    rng_bits: int = 0

    def __post_init__(self) -> None:
        if self.bubbles < 0:
            raise ValueError("bubbles must be non-negative")
        if self.rng_bits < 0:
            raise ValueError("rng_bits must be non-negative")
        if self.address is not None and self.address < 0:
            raise ValueError("address must be non-negative")
        if self.write_address is not None and self.write_address < 0:
            raise ValueError("write_address must be non-negative")

    @property
    def instruction_count(self) -> int:
        """Number of instructions this entry represents."""
        count = self.bubbles
        if self.address is not None:
            count += 1
        if self.rng_bits > 0:
            count += 1
        return count

    @property
    def has_memory_read(self) -> bool:
        return self.address is not None

    @property
    def has_rng_request(self) -> bool:
        return self.rng_bits > 0


class Trace:
    """An ordered collection of trace entries with a name and metadata."""

    def __init__(
        self,
        entries: Sequence[TraceEntry],
        name: str = "trace",
        metadata: Optional[dict] = None,
    ) -> None:
        self.entries: List[TraceEntry] = list(entries)
        if not self.entries:
            raise ValueError("a trace must contain at least one entry")
        self.name = name
        self.metadata = dict(metadata or {})

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def __getitem__(self, index: int) -> TraceEntry:
        return self.entries[index]

    @property
    def total_instructions(self) -> int:
        """Total number of instructions represented by the trace."""
        return sum(entry.instruction_count for entry in self.entries)

    @property
    def memory_reads(self) -> int:
        """Number of LLC-missing reads in the trace."""
        return sum(1 for entry in self.entries if entry.has_memory_read)

    @property
    def memory_writes(self) -> int:
        """Number of writebacks in the trace."""
        return sum(1 for entry in self.entries if entry.write_address is not None)

    @property
    def rng_requests(self) -> int:
        """Number of RNG requests in the trace."""
        return sum(1 for entry in self.entries if entry.has_rng_request)

    @property
    def mpki(self) -> float:
        """Misses (reads) per kilo-instruction of this trace."""
        instructions = self.total_instructions
        if not instructions:
            return 0.0
        return 1000.0 * self.memory_reads / instructions

    # -- serialisation ------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the trace in the simple text format."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            handle.write(f"# trace {self.name}\n")
            for entry in self.entries:
                parts = [str(entry.bubbles)]
                if entry.address is not None:
                    parts += ["R", str(entry.address)]
                if entry.write_address is not None:
                    parts += ["W", str(entry.write_address)]
                if entry.rng_bits:
                    parts += ["G", str(entry.rng_bits)]
                handle.write(" ".join(parts) + "\n")

    @classmethod
    def load(cls, path: str | Path, name: Optional[str] = None) -> "Trace":
        """Load a trace previously written by :meth:`save`."""
        path = Path(path)
        entries: List[TraceEntry] = []
        with path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                entries.append(cls._parse_line(line, path, line_number))
        return cls(entries, name=name or path.stem)

    @staticmethod
    def _parse_line(line: str, path: Path, line_number: int) -> TraceEntry:
        tokens = line.split()
        try:
            bubbles = int(tokens[0])
            address = None
            write_address = None
            rng_bits = 0
            index = 1
            while index < len(tokens):
                tag = tokens[index]
                value = int(tokens[index + 1])
                if tag == "R":
                    address = value
                elif tag == "W":
                    write_address = value
                elif tag == "G":
                    rng_bits = value
                else:
                    raise ValueError(f"unknown tag {tag!r}")
                index += 2
        except (IndexError, ValueError) as exc:
            raise ValueError(f"{path}:{line_number}: malformed trace line {line!r}") from exc
        return TraceEntry(
            bubbles=bubbles, address=address, write_address=write_address, rng_bits=rng_bits
        )


def merge_traces(traces: Iterable[Trace], name: str = "merged") -> Trace:
    """Concatenate several traces into one (used to build phase behaviour)."""
    entries: List[TraceEntry] = []
    for trace in traces:
        entries.extend(trace.entries)
    return Trace(entries, name=name)
