"""Multi-core processor: a collection of trace-driven cores."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from .core import Core, CoreConfig, CoreStats
from .trace import Trace


class Processor:
    """Owns the cores of a multi-programmed simulation.

    The processor is *finished* when every core has retired its target
    instruction count.  Cores that finish early keep executing (wrapping
    their traces) so the remaining cores continue to see interference,
    following the standard multi-programmed workload methodology used by
    the paper (Section 7).
    """

    def __init__(
        self,
        traces: Sequence[Trace],
        send_read: Callable[[int, int, object], bool],
        send_write: Callable[[int, int], bool],
        send_rng: Callable[[int, int, Callable], None],
        core_config: Optional[CoreConfig] = None,
        target_instructions: Optional[int] = None,
        priorities: Optional[Sequence[int]] = None,
    ) -> None:
        if not traces:
            raise ValueError("a processor needs at least one trace")
        self.core_config = core_config or CoreConfig()
        if priorities is not None and len(priorities) != len(traces):
            raise ValueError("priorities must have one entry per trace")
        self.cores: List[Core] = []
        for core_id, trace in enumerate(traces):
            priority = priorities[core_id] if priorities is not None else 0
            target = target_instructions or trace.total_instructions
            self.cores.append(
                Core(
                    core_id=core_id,
                    trace=trace,
                    send_read=send_read,
                    send_write=send_write,
                    send_rng=send_rng,
                    config=self.core_config,
                    target_instructions=target,
                    priority=priority,
                )
            )

        # Cores not yet finished, maintained as a shrinking list so the
        # per-iteration ``all_finished`` check is amortised O(1) instead
        # of scanning every core every cycle.  Order is irrelevant: only
        # emptiness matters, so finished cores are popped from the tail
        # as they surface there.
        self._unfinished: List[Core] = list(self.cores)

    def __len__(self) -> int:
        return len(self.cores)

    def __iter__(self):
        return iter(self.cores)

    def tick(self, now: int) -> None:
        """Advance every core by one bus cycle."""
        for core in self.cores:
            core.tick(now)

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Earliest next-event bound over all cores (``None`` = all stalled)."""
        bound: Optional[int] = None
        for core in self.cores:
            core_bound = core.next_event_cycle(now)
            if core_bound is None:
                continue
            if core_bound <= now:
                return now
            if bound is None or core_bound < bound:
                bound = core_bound
        return bound

    def skip_cycles(self, now: int, target: int) -> None:
        """Apply the quiet ticks for cycles ``[now, target)`` on every core."""
        for core in self.cores:
            core.skip_cycles(now, target)

    @property
    def all_finished(self) -> bool:
        unfinished = self._unfinished
        while unfinished and unfinished[-1].finish_cycle is not None:
            unfinished.pop()
        return not unfinished

    @property
    def finish_cycle(self) -> int:
        """Cycle at which the last core finished (0 if still running)."""
        if not self.all_finished:
            return 0
        return max(core.finish_cycle for core in self.cores)

    def core_stats(self) -> List[CoreStats]:
        """Finish-time statistics of every core."""
        return [core.result_stats() for core in self.cores]

    def rng_cores(self) -> List[Core]:
        """Cores whose traces contain RNG requests."""
        return [core for core in self.cores if core.is_rng_application]

    def non_rng_cores(self) -> List[Core]:
        """Cores whose traces contain no RNG requests."""
        return [core for core in self.cores if not core.is_rng_application]
