"""Trace-driven core model.

Each core replays an instruction trace through a reorder-buffer-like
instruction window (128 entries, Table 1).  The simulator ticks at DRAM
bus-cycle granularity; a core running at 4 GHz with a 3-wide issue width
may therefore issue and retire up to ``issue_width x clock_ratio``
instructions per bus cycle.

* Non-memory instructions ("bubbles") complete immediately but still
  consume issue slots and window entries.
* LLC-missing reads occupy a window entry until the memory controller
  returns their data; the window fills up and stalls the core when memory
  is slow (memory-level parallelism is bounded by the window size).
* Writebacks are sent fire-and-forget but exert back-pressure when the
  write queue is full.
* RNG requests occupy a window entry until the random number is
  delivered, exactly like memory reads.  Because retirement is in order,
  a burst of RNG requests followed by dependent computation stalls the
  instruction window until the random numbers arrive (Section 1: random
  number generation "can stall the processor's instruction window if
  later instructions depend on the generated random number").

The core records the cycle at which it retires its target instruction
count (``finish_cycle``) and freezes its statistics there; it keeps
executing (wrapping its trace) afterwards so that co-running applications
continue to observe realistic interference, as in the multi-programmed
methodology of Section 7.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import repeat
from typing import Callable, Deque, Optional

from .trace import Trace, TraceEntry


@dataclass
class CoreConfig:
    """Microarchitectural parameters of a core."""

    issue_width: int = 3
    window_size: int = 128
    clock_ratio: int = 5  # CPU cycles per DRAM bus cycle (4 GHz / 800 MHz).

    def __post_init__(self) -> None:
        if self.issue_width <= 0:
            raise ValueError("issue_width must be positive")
        if self.window_size <= 0:
            raise ValueError("window_size must be positive")
        if self.clock_ratio <= 0:
            raise ValueError("clock_ratio must be positive")

    @property
    def slots_per_bus_cycle(self) -> int:
        """Maximum instructions issued (and retired) per bus cycle."""
        return self.issue_width * self.clock_ratio


@dataclass
class CoreStats:
    """Statistics of one core, frozen when the core finishes."""

    instructions: int = 0
    cycles: int = 0
    memory_stall_cycles: int = 0
    rng_stall_cycles: int = 0
    reads_issued: int = 0
    writes_issued: int = 0
    rng_requests: int = 0
    read_latency_sum: int = 0
    rng_latency_sum: int = 0

    @property
    def mcpi(self) -> float:
        """Memory stall cycles (bus cycles) per instruction."""
        if not self.instructions:
            return 0.0
        return self.memory_stall_cycles / self.instructions

    @property
    def ipc(self) -> float:
        """Instructions per CPU cycle (using the configured clock ratio)."""
        return 0.0 if not self.cycles else self.instructions / self.cycles

    @property
    def average_read_latency(self) -> float:
        if not self.reads_issued:
            return 0.0
        return self.read_latency_sum / self.reads_issued

    @property
    def average_rng_latency(self) -> float:
        if not self.rng_requests:
            return 0.0
        return self.rng_latency_sum / self.rng_requests

    def copy(self) -> "CoreStats":
        return CoreStats(**self.__dict__)


class _WindowSlot:
    """One instruction-window entry."""

    __slots__ = ("done", "is_rng", "ready_at")

    def __init__(self, done: bool, is_rng: bool = False) -> None:
        self.done = done
        self.is_rng = is_rng
        #: Completion cycle of the memory read backing this slot, filled
        #: in by the memory controller when the read issues (``None``
        #: while the request is still queued, and always ``None`` for
        #: bubbles and RNG slots).  The batched-serve pre-flight reads it
        #: off stalled cores' window heads to bound serve windows by the
        #: earliest *waking* completion in O(cores) — a queued head read
        #: can only complete at least a full minimum read latency after
        #: it issues, which is past any window formed now.
        self.ready_at = None


#: Shared completed-bubble slot.  Bubbles enter the window already done
#: and are never mutated afterwards (only the not-done memory/RNG slots
#: are flipped by their completion callbacks), so the cycle-skipping
#: bulk-append can reuse one immutable instance.
_DONE_BUBBLE = _WindowSlot(done=True)


class Core:
    """A single trace-driven core."""

    def __init__(
        self,
        core_id: int,
        trace: Trace,
        send_read: Callable[[int, int, Callable], bool],
        send_write: Callable[[int, int], bool],
        send_rng: Callable[[int, int, Callable], None],
        config: Optional[CoreConfig] = None,
        target_instructions: Optional[int] = None,
        priority: int = 0,
    ) -> None:
        self.core_id = core_id
        self.trace = trace
        self.config = config or CoreConfig()
        self.priority = priority
        self._send_read = send_read
        self._send_write = send_write
        self._send_rng = send_rng

        if target_instructions is not None and target_instructions <= 0:
            raise ValueError("target_instructions must be positive")
        self.target_instructions = (
            target_instructions if target_instructions is not None else trace.total_instructions
        )

        # Dynamic execution state.
        self._window: Deque[_WindowSlot] = deque()
        #: Window slots still waiting on a memory/RNG completion.  Kept
        #: incrementally so the cycle-skipping engine's all-done check is
        #: O(1) instead of a window scan.
        self._undone_slots = 0
        #: Issue/retire sequence counters plus a FIFO of (sequence, slot)
        #: for outstanding slots.  Retirement is in issue order, so the
        #: done-run length at the window head — how many slots can retire
        #: before the oldest outstanding request — is
        #: ``oldest_undone_sequence - retired_sequence``, O(1) amortised.
        self._issued_seq = 0
        self._retired_seq = 0
        self._undone_fifo: Deque = deque()
        self._slots_per_cycle = self.config.slots_per_bus_cycle
        self._window_size = self.config.window_size
        self._entry_index = 0
        self._bubbles_left = 0
        self._pending_read: Optional[TraceEntry] = None
        self._pending_write: Optional[int] = None
        self._pending_rng: Optional[TraceEntry] = None
        self._load_entry(self.trace.entries[0])

        # Statistics.
        self.stats = CoreStats()
        self.finish_cycle: Optional[int] = None
        self.finished_stats: Optional[CoreStats] = None
        self.is_rng_application = trace.rng_requests > 0

    # ------------------------------------------------------------------ helpers

    def _load_entry(self, entry: TraceEntry) -> None:
        self._bubbles_left = entry.bubbles
        self._pending_read = entry if entry.has_memory_read else None
        self._pending_write = entry.write_address
        self._pending_rng = entry if entry.has_rng_request else None

    def _advance_entry(self) -> None:
        self._entry_index += 1
        if self._entry_index >= len(self.trace.entries):
            self._entry_index = 0  # Wrap to keep generating interference.
        self._load_entry(self.trace.entries[self._entry_index])

    def _entry_exhausted(self) -> bool:
        return (
            self._bubbles_left == 0
            and self._pending_read is None
            and self._pending_write is None
            and self._pending_rng is None
        )

    @property
    def finished(self) -> bool:
        """Whether the core has retired its target instruction count."""
        return self.finish_cycle is not None

    @property
    def outstanding_window_entries(self) -> int:
        return len(self._window)

    # ------------------------------------------------------------------ main loop

    def tick(self, now: int) -> None:
        """Advance the core by one DRAM bus cycle."""
        self.stats.cycles += 1

        retired = self._retire()
        issued = self._issue(now)

        if retired == 0 and issued == 0:
            head_blocked = bool(self._window) and not self._window[0].done
            if head_blocked or self._pending_write is not None:
                self.stats.memory_stall_cycles += 1
                if head_blocked and self._window[0].is_rng:
                    self.stats.rng_stall_cycles += 1

        if self.finish_cycle is None and self.stats.instructions >= self.target_instructions:
            self.finish_cycle = now
            self.finished_stats = self.stats.copy()

    def _retire(self) -> int:
        retired = 0
        budget = self._slots_per_cycle
        window = self._window
        if not self._undone_slots:
            # Everything in the window is done: retire a full batch
            # without per-slot completion checks.
            retired = min(budget, len(window))
            for _ in range(retired):
                window.popleft()
        else:
            while retired < budget and window and window[0].done:
                window.popleft()
                retired += 1
        # Drop completed heads from the outstanding-slot FIFO here (not
        # only in the skip-bound computation) so it cannot accumulate one
        # entry per memory request over a whole run.
        fifo = self._undone_fifo
        while fifo and fifo[0][1].done:
            fifo.popleft()
        self._retired_seq += retired
        # Instructions count as executed when they retire (in order), so
        # the finish condition reflects completed work, not issued work.
        self.stats.instructions += retired
        return retired

    def _issue(self, now: int) -> int:
        issued = 0
        budget = self._slots_per_cycle
        window_size = self._window_size

        while issued < budget:
            if self._pending_write is not None:
                # Back-pressure: the writeback must be accepted before the
                # core moves on to the next trace entry.
                if self._send_write(self._pending_write, self.core_id):
                    self.stats.writes_issued += 1
                    self._pending_write = None
                else:
                    break
            if len(self._window) >= window_size:
                break

            if self._bubbles_left > 0:
                # Bubbles are issued in one batch: they complete
                # immediately and never interact with anything, so the
                # per-slot loop collapses to arithmetic plus a bulk
                # append of the shared done-bubble slot.
                take = min(
                    budget - issued,
                    self._bubbles_left,
                    window_size - len(self._window),
                )
                self._bubbles_left -= take
                self._window.extend(repeat(_DONE_BUBBLE, take))
                self._issued_seq += take
                issued += take
            elif self._pending_read is not None:
                entry = self._pending_read
                slot = _WindowSlot(done=False)
                if not self._send_read(entry.address, self.core_id, self._make_read_callback(slot, now)):
                    break  # Read queue full; retry next cycle.
                self._window.append(slot)
                self._undone_fifo.append((self._issued_seq, slot))
                self._issued_seq += 1
                self._undone_slots += 1
                self._pending_read = None
                self.stats.reads_issued += 1
                issued += 1
            elif self._pending_rng is not None:
                entry = self._pending_rng
                self._pending_rng = None
                slot = _WindowSlot(done=False, is_rng=True)
                self._window.append(slot)
                self._undone_fifo.append((self._issued_seq, slot))
                self._issued_seq += 1
                self._undone_slots += 1
                self.stats.rng_requests += 1
                issued += 1
                self._send_rng(entry.rng_bits, self.core_id, self._make_rng_callback(slot, now))
            elif self._pending_write is None and self._entry_exhausted():
                self._advance_entry()
                continue
            else:
                break
        return issued

    # ------------------------------------------------------------------ cycle skipping

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Lower bound on the next cycle at which :meth:`tick` must run.

        ``now`` means the core is active and must be ticked normally.  A
        future cycle means the ticks before it are pure bubble streaming
        (retire ``slots_per_bus_cycle`` done slots, issue as many bubbles)
        that :meth:`skip_cycles` replays in closed form.  ``None`` means
        the core is stalled — instruction window full behind an
        outstanding memory or RNG request — and can only be woken by a
        completion callback, which belongs to another component's bound.
        """
        if self._pending_write is not None:
            # Writeback back-pressure retries the enqueue every cycle.
            return now
        window = self._window
        slots = self._slots_per_cycle
        if window and not window[0].done:
            space = self.config.window_size - len(window)
            if space <= 0:
                return None
            if self._bubbles_left > slots:
                # Window filling behind a blocked head: each tick retires
                # nothing and appends one issue-width of done bubbles.
                fill_ticks = space // slots
                if fill_ticks:
                    bubble_ticks = (self._bubbles_left - 1) // slots
                    return now + min(fill_ticks, bubble_ticks)
            return now
        if self._bubbles_left > slots:
            if not self._undone_slots:
                if len(window) < slots:
                    return now
                # Pure streaming: the window is all done and more than one
                # issue-width of bubbles remains at every tick start.
                quiet_ticks = (self._bubbles_left - 1) // slots
            else:
                # Mixed window: bubbles stream in behind the tail while
                # older requests are still outstanding mid-window.
                # Retirement is in issue order, so full batches retire as
                # long as the done run ahead of the oldest outstanding
                # slot spans at least one issue width per tick.
                fifo = self._undone_fifo
                while fifo and fifo[0][1].done:
                    fifo.popleft()
                retire_ticks = (fifo[0][0] - self._retired_seq) // slots
                if not retire_ticks:
                    return now
                quiet_ticks = min(retire_ticks, (self._bubbles_left - 1) // slots)
                if not quiet_ticks:
                    return now
            if self.finish_cycle is None:
                # Crossing the target instruction count is an event (the
                # engine must re-check ``all_finished`` right after it).
                remaining = self.target_instructions - self.stats.instructions
                finishing_tick = -(-remaining // slots)
                if finishing_tick < quiet_ticks:
                    quiet_ticks = finishing_tick
            return now + quiet_ticks
        return now

    def skip_cycles(self, now: int, target: int) -> None:
        """Apply the effects of the quiet ticks for cycles ``[now, target)``."""
        skipped = target - now
        window = self._window
        slots = self._slots_per_cycle
        if window and not window[0].done:
            self.stats.cycles += skipped
            if len(window) >= self.config.window_size:
                # Stalled: every skipped tick is a memory-stall cycle.
                self.stats.memory_stall_cycles += skipped
                if window[0].is_rng:
                    self.stats.rng_stall_cycles += skipped
            else:
                # Window filling behind a blocked head: bubbles stream in
                # without retiring (no stall is recorded while issuing).
                count = slots * skipped
                window.extend(repeat(_DONE_BUBBLE, count))
                self._issued_seq += count
                self._bubbles_left -= count
            return
        # Bubble streaming: each tick retires a full batch of done slots
        # and issues as many bubbles.
        count = slots * skipped
        if self.finish_cycle is None and (
            self.stats.instructions + count >= self.target_instructions
        ):
            finishing_tick = -(-(self.target_instructions - self.stats.instructions) // slots)
            snapshot = self.stats.copy()
            snapshot.cycles += finishing_tick
            snapshot.instructions += slots * finishing_tick
            self.finish_cycle = now + finishing_tick - 1
            self.finished_stats = snapshot
        self.stats.cycles += skipped
        self.stats.instructions += count
        self._bubbles_left -= count
        self._issued_seq += count
        self._retired_seq += count
        if self._undone_slots:
            # Mixed window: the retired prefix really leaves the window
            # and fresh done bubbles take its place at the tail.  The
            # retired slots are all done, and done slots are
            # observationally interchangeable (only ``done`` is ever read
            # on them; ``is_rng``/``ready_at`` matter solely on undone
            # heads), so recycling them to the tail via a C-level rotate
            # is equivalent to popping them and appending done bubbles.
            window.rotate(-count)

    def catch_up_stall(self, start: int, end: int) -> None:
        """Account the deferred stall ticks for cycles ``[start, end)``.

        Used by the event engine after it left a window-stalled core
        untouched: every deferred tick was a memory-stall cycle against
        the (still unretired) head slot.  Must be called before the head
        is retired so the RNG attribution still sees the right slot.
        """
        stalled = end - start
        if stalled <= 0:
            return
        self.stats.cycles += stalled
        self.stats.memory_stall_cycles += stalled
        if self._window[0].is_rng:
            self.stats.rng_stall_cycles += stalled

    def _make_read_callback(self, slot: _WindowSlot, issue_cycle: int) -> Callable:
        def _on_complete(request) -> None:
            slot.done = True
            self._undone_slots -= 1
            completion = request.completion_cycle if request.completion_cycle is not None else issue_cycle
            self.stats.read_latency_sum += max(0, completion - issue_cycle)

        # Expose the window slot this completion will flip.  The batched
        # serve path uses it to tell *waking* completions (the request is
        # a stalled core's window head, so completing it re-activates the
        # core) from completions that only mark a mid-window slot done;
        # the former bound the serve window, the latter may be replayed
        # inside it (see repro.sim.engine).
        _on_complete.window_slot = slot
        return _on_complete

    def _make_rng_callback(self, slot: _WindowSlot, issue_cycle: int) -> Callable:
        def _on_rng_complete(completion_cycle: int) -> None:
            slot.done = True
            self._undone_slots -= 1
            self.stats.rng_latency_sum += max(0, completion_cycle - issue_cycle)

        return _on_rng_complete

    # ------------------------------------------------------------------ results

    def result_stats(self) -> CoreStats:
        """Statistics at finish time (or current stats if still running)."""
        return self.finished_stats if self.finished_stats is not None else self.stats
