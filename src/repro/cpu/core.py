"""Trace-driven core model.

Each core replays an instruction trace through a reorder-buffer-like
instruction window (128 entries, Table 1).  The simulator ticks at DRAM
bus-cycle granularity; a core running at 4 GHz with a 3-wide issue width
may therefore issue and retire up to ``issue_width x clock_ratio``
instructions per bus cycle.

* Non-memory instructions ("bubbles") complete immediately but still
  consume issue slots and window entries.
* LLC-missing reads occupy a window entry until the memory controller
  returns their data; the window fills up and stalls the core when memory
  is slow (memory-level parallelism is bounded by the window size).
* Writebacks are sent fire-and-forget but exert back-pressure when the
  write queue is full.
* RNG requests occupy a window entry until the random number is
  delivered, exactly like memory reads.  Because retirement is in order,
  a burst of RNG requests followed by dependent computation stalls the
  instruction window until the random numbers arrive (Section 1: random
  number generation "can stall the processor's instruction window if
  later instructions depend on the generated random number").

The core records the cycle at which it retires its target instruction
count (``finish_cycle``) and freezes its statistics there; it keeps
executing (wrapping its trace) afterwards so that co-running applications
continue to observe realistic interference, as in the multi-programmed
methodology of Section 7.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from .trace import Trace


@dataclass
class CoreConfig:
    """Microarchitectural parameters of a core."""

    issue_width: int = 3
    window_size: int = 128
    clock_ratio: int = 5  # CPU cycles per DRAM bus cycle (4 GHz / 800 MHz).

    def __post_init__(self) -> None:
        if self.issue_width <= 0:
            raise ValueError("issue_width must be positive")
        if self.window_size <= 0:
            raise ValueError("window_size must be positive")
        if self.clock_ratio <= 0:
            raise ValueError("clock_ratio must be positive")

    @property
    def slots_per_bus_cycle(self) -> int:
        """Maximum instructions issued (and retired) per bus cycle."""
        return self.issue_width * self.clock_ratio


@dataclass(slots=True)
class CoreStats:
    """Statistics of one core, frozen when the core finishes."""

    instructions: int = 0
    cycles: int = 0
    memory_stall_cycles: int = 0
    rng_stall_cycles: int = 0
    reads_issued: int = 0
    writes_issued: int = 0
    rng_requests: int = 0
    read_latency_sum: int = 0
    rng_latency_sum: int = 0

    @property
    def mcpi(self) -> float:
        """Memory stall cycles (bus cycles) per instruction."""
        if not self.instructions:
            return 0.0
        return self.memory_stall_cycles / self.instructions

    @property
    def ipc(self) -> float:
        """Instructions per CPU cycle (using the configured clock ratio)."""
        return 0.0 if not self.cycles else self.instructions / self.cycles

    @property
    def average_read_latency(self) -> float:
        if not self.reads_issued:
            return 0.0
        return self.read_latency_sum / self.reads_issued

    @property
    def average_rng_latency(self) -> float:
        if not self.rng_requests:
            return 0.0
        return self.rng_latency_sum / self.rng_requests

    def copy(self) -> "CoreStats":
        return dataclasses.replace(self)


class _WindowSlot:
    """One instruction-window entry."""

    __slots__ = ("done", "is_rng", "ready_at", "issued_at", "seq")

    def __init__(self, done: bool, is_rng: bool = False) -> None:
        self.done = done
        self.is_rng = is_rng
        #: Completion cycle of the memory read backing this slot, filled
        #: in by the memory controller when the read issues (``None``
        #: while the request is still queued, and always ``None`` for
        #: bubbles and RNG slots).  The batched-serve pre-flight reads it
        #: off stalled cores' window heads to bound serve windows by the
        #: earliest *waking* completion in O(cores) — a queued head read
        #: can only complete at least a full minimum read latency after
        #: it issues, which is past any window formed now.
        self.ready_at = None
        #: Cycle the core issued the memory read backing this slot
        #: (``None`` for bubbles and RNG slots); the completion handler
        #: charges the read latency against it.
        self.issued_at = None
        #: Issue sequence number within the owning core's window,
        #: assigned at issue time (the outstanding-slot FIFO orders by
        #: it; the window head is the slot whose sequence equals the
        #: core's retired count).
        self.seq = 0


class _RNGCompletion:
    """Completion callback of one in-flight RNG window slot.

    A class (not a closure) so a mid-run :class:`Core` — and the RNG
    subsystem structures holding the callback — stay serialisable by
    :mod:`repro.sim.checkpoint`.
    """

    __slots__ = ("core", "slot", "issue_cycle")

    def __init__(self, core: "Core", slot: _WindowSlot, issue_cycle: int) -> None:
        self.core = core
        self.slot = slot
        self.issue_cycle = issue_cycle

    def __call__(self, completion_cycle: int) -> None:
        core = self.core
        self.slot.done = True
        core._undone_slots -= 1
        core.stats.rng_latency_sum += max(0, completion_cycle - self.issue_cycle)


def core_next_event_cycle(self, now: int) -> Optional[int]:
    """Lower bound on the next cycle at which :meth:`Core.tick` must run.

    ``now`` means the core is active and must be ticked normally.  A
    future cycle means the ticks before it are pure bubble streaming
    (retire ``slots_per_bus_cycle`` done slots, issue as many bubbles)
    that :func:`core_skip_cycles` replays in closed form.  ``None``
    means the core is stalled — instruction window full behind an
    outstanding memory or RNG request — and can only be woken by a
    completion callback, which belongs to another component's bound.

    A module-level codegen unit: :class:`Core` executes it directly
    (``next_event_cycle = core_next_event_cycle``) and
    :mod:`repro.sim.codegen` inlines the same source at the generated
    dispatch loop's bound-scan sites.
    """
    if self._pending_write >= 0:
        # Writeback back-pressure retries the enqueue every cycle.
        return now
    slots = self._slots_per_cycle
    retired_seq = self._retired_seq
    occupancy = self._issued_seq - retired_seq
    fifo = self._undone_fifo
    head = fifo[0] if fifo else None
    if head is not None and head.seq == retired_seq and not head.done:
        space = self._window_size - occupancy
        if space <= 0:
            return None
        if self._bubbles_left > slots:
            # Window filling behind a blocked head: each tick retires
            # nothing and issues one issue-width of done bubbles.
            fill_ticks = space // slots
            if fill_ticks:
                bubble_ticks = (self._bubbles_left - 1) // slots
                return now + min(fill_ticks, bubble_ticks)
        return now
    if self._bubbles_left > slots:
        if not self._undone_slots:
            if occupancy < slots:
                return now
            # Pure streaming: the window is all done and more than one
            # issue-width of bubbles remains at every tick start.
            quiet_ticks = (self._bubbles_left - 1) // slots
        else:
            # Mixed window: bubbles stream in behind the tail while
            # older requests are still outstanding mid-window.
            # Retirement is in issue order, so full batches retire as
            # long as the done run ahead of the oldest outstanding
            # slot spans at least one issue width per tick.
            while fifo and fifo[0].done:
                fifo.popleft()
            retire_ticks = (fifo[0].seq - retired_seq) // slots
            if not retire_ticks:
                return now
            quiet_ticks = min(retire_ticks, (self._bubbles_left - 1) // slots)
            if not quiet_ticks:
                return now
        if self.finish_cycle is None:
            # Crossing the target instruction count is an event (the
            # engine must re-check ``all_finished`` right after it).
            remaining = self.target_instructions - self.stats.instructions
            finishing_tick = -(-remaining // slots)
            if finishing_tick < quiet_ticks:
                quiet_ticks = finishing_tick
        return now + quiet_ticks
    return now


def core_skip_cycles(self, now: int, target: int) -> None:
    """Apply the effects of the quiet ticks for cycles ``[now, target)``.

    A module-level codegen unit like :func:`core_next_event_cycle`
    (``skip_cycles = core_skip_cycles`` on :class:`Core`).
    """
    skipped = target - now
    slots = self._slots_per_cycle
    fifo = self._undone_fifo
    head = fifo[0] if fifo else None
    if head is not None and head.seq == self._retired_seq and not head.done:
        self.stats.cycles += skipped
        if self._issued_seq - self._retired_seq >= self._window_size:
            # Stalled: every skipped tick is a memory-stall cycle.
            self.stats.memory_stall_cycles += skipped
            if head.is_rng:
                self.stats.rng_stall_cycles += skipped
        else:
            # Window filling behind a blocked head: bubbles stream in
            # without retiring (no stall is recorded while issuing).
            count = slots * skipped
            self._issued_seq += count
            self._bubbles_left -= count
        return
    # Bubble streaming: each tick retires a full batch of done slots
    # and issues as many bubbles — in the counter representation both
    # sides are pure arithmetic (the retired prefix is all done, and
    # done slots are observationally interchangeable).
    count = slots * skipped
    if self.finish_cycle is None and (
        self.stats.instructions + count >= self.target_instructions
    ):
        finishing_tick = -(-(self.target_instructions - self.stats.instructions) // slots)
        snapshot = self.stats.copy()
        snapshot.cycles += finishing_tick
        snapshot.instructions += slots * finishing_tick
        self.finish_cycle = now + finishing_tick - 1
        self.finished_stats = snapshot
    self.stats.cycles += skipped
    self.stats.instructions += count
    self._bubbles_left -= count
    self._issued_seq += count
    self._retired_seq += count


def core_tick(self, now: int) -> None:
    """Advance the core by one DRAM bus cycle.

    A module-level codegen unit (``tick = core_tick`` on :class:`Core`):
    :mod:`repro.sim.codegen` renders it with :func:`core_retire` /
    :func:`core_issue` inlined and the slots-per-cycle / window-size
    facts folded to literals.
    """
    self.stats.cycles += 1

    retired = self._retire()
    issued = self._issue(now)

    if retired == 0 and issued == 0:
        fifo = self._undone_fifo
        head = fifo[0] if fifo else None
        head_blocked = (
            head is not None and head.seq == self._retired_seq and not head.done
        )
        if head_blocked or self._pending_write >= 0:
            self.stats.memory_stall_cycles += 1
            if head_blocked and head.is_rng:
                self.stats.rng_stall_cycles += 1

    if self.finish_cycle is None and self.stats.instructions >= self.target_instructions:
        self.finish_cycle = now
        self.finished_stats = self.stats.copy()


def core_retire(self) -> int:
    """Retire up to one cycle's slot budget (codegen unit, see
    :func:`core_tick`; ``_retire = core_retire`` on :class:`Core`)."""
    budget = self._slots_per_cycle
    # Drop completed heads from the outstanding-slot FIFO here (not
    # only in the skip-bound computation) so it cannot accumulate one
    # entry per memory request over a whole run.
    fifo = self._undone_fifo
    while fifo and fifo[0].done:
        fifo.popleft()
    # Retirement is in issue order: everything older than the oldest
    # outstanding slot is done, so the retirable run is the window
    # occupancy capped by that slot's sequence, capped by the budget.
    retired = self._issued_seq - self._retired_seq
    if fifo:
        run = fifo[0].seq - self._retired_seq
        if run < retired:
            retired = run
    if retired > budget:
        retired = budget
    self._retired_seq += retired
    # Instructions count as executed when they retire (in order), so
    # the finish condition reflects completed work, not issued work.
    self.stats.instructions += retired
    return retired


def core_issue(self, now: int) -> int:
    """Issue up to one cycle's slot budget (codegen unit, see
    :func:`core_tick`; ``_issue = core_issue`` on :class:`Core`)."""
    issued = 0
    budget = self._slots_per_cycle
    window_size = self._window_size
    stats = self.stats

    while issued < budget:
        if self._pending_write >= 0:
            # Back-pressure: the writeback must be accepted before the
            # core moves on to the next trace entry.
            if self._send_write(self._pending_write, self.core_id):
                stats.writes_issued += 1
                self._pending_write = -1
            else:
                break
        occupancy = self._issued_seq - self._retired_seq
        if occupancy >= window_size:
            break

        bubbles = self._bubbles_left
        if bubbles > 0:
            # Bubbles are issued in one batch: they complete
            # immediately and never interact with anything, so the
            # per-slot loop collapses to counter arithmetic.
            take = budget - issued
            if bubbles < take:
                take = bubbles
            space = window_size - occupancy
            if space < take:
                take = space
            self._bubbles_left = bubbles - take
            self._issued_seq += take
            issued += take
        elif self._pending_read >= 0:
            slot = _WindowSlot(done=False)
            slot.issued_at = now
            slot.seq = self._issued_seq
            if not self._send_read(self._pending_read, self.core_id, slot):
                break  # Read queue full; retry next cycle.
            self._undone_fifo.append(slot)
            self._issued_seq += 1
            self._undone_slots += 1
            self._pending_read = -1
            stats.reads_issued += 1
            issued += 1
        elif self._pending_rng > 0:
            bits = self._pending_rng
            self._pending_rng = 0
            slot = _WindowSlot(done=False, is_rng=True)
            slot.seq = self._issued_seq
            self._undone_fifo.append(slot)
            self._issued_seq += 1
            self._undone_slots += 1
            stats.rng_requests += 1
            issued += 1
            self._send_rng(bits, self.core_id, _RNGCompletion(self, slot, now))
        elif self._pending_write < 0:
            # Entry exhausted (no bubbles, read, write or RNG request
            # left): advance to the next precompiled column position,
            # wrapping to keep generating interference.
            index = self._entry_index + 1
            if index >= self._num_entries:
                index = 0
            self._entry_index = index
            self._bubbles_left = self._col_bubbles[index]
            self._pending_read = self._col_reads[index]
            self._pending_write = self._col_writes[index]
            self._pending_rng = self._col_rng[index]
        else:
            break
    return issued


class Core:
    """A single trace-driven core."""

    def __init__(
        self,
        core_id: int,
        trace: Trace,
        send_read: Callable[[int, int, "_WindowSlot"], bool],
        send_write: Callable[[int, int], bool],
        send_rng: Callable[[int, int, Callable], None],
        config: Optional[CoreConfig] = None,
        target_instructions: Optional[int] = None,
        priority: int = 0,
    ) -> None:
        self.core_id = core_id
        self.trace = trace
        self.config = config or CoreConfig()
        self.priority = priority
        self._send_read = send_read
        self._send_write = send_write
        self._send_rng = send_rng

        if target_instructions is not None and target_instructions <= 0:
            raise ValueError("target_instructions must be positive")
        self.target_instructions = (
            target_instructions if target_instructions is not None else trace.total_instructions
        )

        # The trace precompiled into flat parallel columns (shared across
        # every core replaying the same Trace object): the issue loop
        # replays them with index arithmetic instead of per-entry
        # TraceEntry attribute access.
        columns = trace.columns()
        self._col_bubbles = columns.bubbles
        self._col_reads = columns.read_addresses
        self._col_writes = columns.write_addresses
        self._col_rng = columns.rng_bits
        self._num_entries = len(columns)

        # Dynamic execution state.  The instruction window is not
        # materialised: done slots are observationally interchangeable
        # (only undone memory/RNG slots are ever inspected — by their
        # completion callbacks, the head-blocked checks and the engine's
        # wake probes), so the window reduces to the issue/retire
        # sequence counters plus a FIFO of the outstanding slots:
        #
        # * window occupancy   = ``_issued_seq - _retired_seq``,
        # * window head        = ``_undone_fifo[0]`` when its sequence
        #   equals ``_retired_seq`` (a completed-but-unretired or still
        #   outstanding memory/RNG slot), else an always-done bubble,
        # * head-of-window done-run (how many slots can retire before the
        #   oldest outstanding request) = ``oldest_undone_sequence -
        #   retired_sequence``, O(1) amortised.
        #
        # Bubble issue and retirement are therefore pure counter
        # arithmetic — no deque traffic at all on the streaming path.
        #: Window slots still waiting on a memory/RNG completion.  Kept
        #: incrementally so the cycle-skipping engine's all-done check is
        #: O(1) instead of a window scan.
        self._undone_slots = 0
        self._issued_seq = 0
        self._retired_seq = 0
        self._undone_fifo: Deque = deque()
        self._slots_per_cycle = self.config.slots_per_bus_cycle
        self._window_size = self.config.window_size
        # Current trace position, replayed from the precompiled columns
        # with integer sentinels (-1 = no pending read/write, 0 = no
        # pending RNG request) so the hot issue loop never touches a
        # TraceEntry object or an Optional.
        self._entry_index = 0
        self._bubbles_left = self._col_bubbles[0]
        self._pending_read = self._col_reads[0]
        self._pending_write = self._col_writes[0]
        self._pending_rng = self._col_rng[0]

        # Statistics.
        self.stats = CoreStats()
        self.finish_cycle: Optional[int] = None
        self.finished_stats: Optional[CoreStats] = None
        self.is_rng_application = trace.rng_requests > 0

    # ------------------------------------------------------------------ helpers

    @property
    def finished(self) -> bool:
        """Whether the core has retired its target instruction count."""
        return self.finish_cycle is not None

    @property
    def outstanding_window_entries(self) -> int:
        return self._issued_seq - self._retired_seq

    # ------------------------------------------------------------------ main loop

    # Per-cycle advance: the module-level codegen units (see their
    # docstrings for the contract).
    tick = core_tick
    _retire = core_retire
    _issue = core_issue

    # ------------------------------------------------------------------ cycle skipping

    # Cycle-skipping bound and bulk replay: the module-level codegen
    # units (see their docstrings for the contract).
    next_event_cycle = core_next_event_cycle
    skip_cycles = core_skip_cycles

    def catch_up_stall(self, start: int, end: int) -> None:
        """Account the deferred stall ticks for cycles ``[start, end)``.

        Used by the event engine after it left a window-stalled core
        untouched: every deferred tick was a memory-stall cycle against
        the (still unretired) head slot.  Must be called before the head
        is retired so the RNG attribution still sees the right slot —
        a stalled core's head is always ``_undone_fifo[0]``.
        """
        stalled = end - start
        if stalled <= 0:
            return
        self.stats.cycles += stalled
        self.stats.memory_stall_cycles += stalled
        if self._undone_fifo[0].is_rng:
            self.stats.rng_stall_cycles += stalled

    def complete_read(self, slot: _WindowSlot, completion_cycle: Optional[int]) -> None:
        """Mark the read backing ``slot`` done and record its latency.

        ``slot`` is the window slot the core handed to ``send_read`` at
        issue time; the memory side calls back here (directly, or through
        :meth:`_on_read_complete` when the completion arrives as a
        :class:`~repro.controller.request.Request`) when the read's data
        returns.
        """
        slot.done = True
        self._undone_slots -= 1
        issue_cycle = slot.issued_at
        completion = completion_cycle if completion_cycle is not None else issue_cycle
        self.stats.read_latency_sum += max(0, completion - issue_cycle)

    def _on_read_complete(self, request) -> None:
        """Completion callback shared by every read request of this core.

        The request carries its window slot (``request.window_slot``, set
        by the system when it built the request around the slot the core
        passed to ``send_read``); the slot also records the issue cycle,
        so one bound method serves every read — the per-read closure the
        core used to allocate is gone from the hot path.  The body is
        :meth:`complete_read` inlined (one call per read completion).
        """
        slot = request.window_slot
        slot.done = True
        self._undone_slots -= 1
        issue_cycle = slot.issued_at
        completion = request.completion_cycle
        if completion is None:
            completion = issue_cycle
        if completion > issue_cycle:
            self.stats.read_latency_sum += completion - issue_cycle

    # ------------------------------------------------------------------ results

    def result_stats(self) -> CoreStats:
        """Statistics at finish time (or current stats if still running)."""
        return self.finished_stats if self.finished_stats is not None else self.stats
