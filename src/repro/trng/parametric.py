"""Parametric TRNG model for throughput-sensitivity studies (Figure 2).

Figure 2 of the paper sweeps the TRNG throughput from 200 Mb/s to
6.4 Gb/s while keeping D-RaNGe's (low) latency for every design, to
isolate the effect of throughput.  :class:`ParametricTRNG` reproduces
that: its demand latency is D-RaNGe's unless the requested throughput is
so low that the throughput bound dominates, and the buffer-filling batch
yield scales with the configured throughput.
"""

from __future__ import annotations

from .base import DRAMTRNGModel
from .entropy import EntropySource


class ParametricTRNG(DRAMTRNGModel):
    """A TRNG whose aggregate throughput is a free parameter."""

    name = "parametric-trng"

    def __init__(
        self,
        throughput_mbps: float,
        entropy_source: EntropySource | None = None,
        batch_latency_cycles: int = 40,
        demand_base_latency_cycles: int = 110,
        num_channels: int = 4,
        bus_mhz: float = 800.0,
    ) -> None:
        super().__init__(entropy_source)
        if throughput_mbps <= 0:
            raise ValueError("throughput_mbps must be positive")
        if batch_latency_cycles <= 0:
            raise ValueError("batch_latency_cycles must be positive")
        if demand_base_latency_cycles <= 0:
            raise ValueError("demand_base_latency_cycles must be positive")
        self._throughput_mbps = throughput_mbps
        self._batch_latency_cycles = batch_latency_cycles
        self._demand_base_latency = demand_base_latency_cycles
        self._num_channels = num_channels
        self._bus_mhz = bus_mhz

    @property
    def throughput_mbps(self) -> float:
        return self._throughput_mbps

    @property
    def batch_latency_cycles(self) -> int:
        return self._batch_latency_cycles

    def bits_per_batch(self, banks_per_channel: int) -> int:
        if banks_per_channel <= 0:
            raise ValueError("banks_per_channel must be positive")
        rate = self.per_channel_bits_per_cycle(self._num_channels, self._bus_mhz)
        bits = int(round(rate * self._batch_latency_cycles))
        return max(1, bits)

    @property
    def demand_base_latency_cycles(self) -> int:
        return self._demand_base_latency

    @property
    def name_with_throughput(self) -> str:
        """Name including the configured throughput, for result labelling."""
        return f"{self.name}-{self._throughput_mbps:.0f}mbps"
