"""Abstract interface of a DRAM-based TRNG mechanism.

DR-STRaNGe is mechanism-independent: the system design only needs to know

* how many random bits one *batch* yields when a single channel's banks
  are used in parallel during an idle period (the buffer-filling path),
* how long such a batch occupies the channel,
* how long generating ``n`` bits on demand takes when the memory
  controller dedicates channels to RNG (the demand path), and
* the aggregate random-number throughput the mechanism sustains.

Concrete mechanisms (:class:`~repro.trng.drange.DRaNGe`,
:class:`~repro.trng.quac.QUACTRNG`, and the parametric sweep model used
for Figure 2) provide these numbers; the actual random bit *values* come
from the shared simulated :class:`~repro.trng.entropy.EntropySource`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from .entropy import EntropySource


class DRAMTRNGModel(ABC):
    """Latency/throughput model of a DRAM-based TRNG mechanism."""

    #: Human-readable mechanism name.
    name: str = "abstract-trng"

    def __init__(self, entropy_source: EntropySource | None = None) -> None:
        self.entropy = entropy_source or EntropySource()

    # -- mechanism characteristics -------------------------------------------------

    @property
    @abstractmethod
    def throughput_mbps(self) -> float:
        """Aggregate sustained throughput (Mb/s) using all channels."""

    @property
    @abstractmethod
    def batch_latency_cycles(self) -> int:
        """Bus cycles one buffer-filling batch occupies a single channel."""

    @abstractmethod
    def bits_per_batch(self, banks_per_channel: int) -> int:
        """Random bits one batch yields using ``banks_per_channel`` banks."""

    @property
    @abstractmethod
    def demand_base_latency_cycles(self) -> int:
        """Fixed per-channel command-sequence overhead of on-demand generation.

        Paid once per demand operation on every participating channel,
        independent of how many bits that channel contributes.  The
        on-demand path is latency-optimised rather than throughput-
        optimised, which is why it is less efficient per bit than the
        batched buffer-filling path.
        """

    # -- derived latencies ----------------------------------------------------------

    def per_channel_bits_per_cycle(self, num_channels: int, bus_mhz: float = 800.0) -> float:
        """Sustained bits per bus cycle one channel can produce."""
        if num_channels <= 0:
            raise ValueError("num_channels must be positive")
        bits_per_second = self.throughput_mbps * 1e6 / num_channels
        cycles_per_second = bus_mhz * 1e6
        return bits_per_second / cycles_per_second

    def demand_latency_cycles(
        self,
        bits: int,
        num_channels: int,
        banks_per_channel: int = 8,
        bus_mhz: float = 800.0,
    ) -> int:
        """Cycles one channel is occupied to generate ``bits`` bits on demand.

        The demand path splits an application-level random number across
        ``num_channels`` channels working in parallel (Section 3: "the
        system uses all memory channels in parallel to achieve the minimum
        RNG latency").  Each channel pays the mechanism's fixed
        command-sequence overhead plus the time to produce its ``bits``
        share at the mechanism's sustained per-channel rate.  With the
        default D-RaNGe parameters a 64-bit number split across four
        channels takes ~200 bus cycles, matching the ~198-cycle figure the
        paper reports (Section 5.1).
        """
        if bits <= 0:
            raise ValueError("bits must be positive")
        rate = self.per_channel_bits_per_cycle(num_channels, bus_mhz)
        throughput_cycles = int(math.ceil(bits / rate)) if rate > 0 else 0
        return self.demand_base_latency_cycles + throughput_cycles

    # -- bit generation --------------------------------------------------------------

    def generate_bits(self, count: int) -> np.ndarray:
        """Produce ``count`` random bits from the simulated entropy source."""
        return self.entropy.generate_bits(count)

    def generate_integer(self, bits: int = 64) -> int:
        """Produce a random unsigned integer of ``bits`` bits."""
        return self.entropy.generate_integer(bits)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(throughput={self.throughput_mbps:.0f} Mb/s)"
