"""DRAM-based TRNG mechanism models and the simulated entropy substrate."""

from .base import DRAMTRNGModel
from .drange import DRaNGe
from .entropy import EntropySource, ProcessVariationModel
from .parametric import ParametricTRNG
from .quac import QUACTRNG
from . import quality


def make_trng(name: str, **kwargs) -> DRAMTRNGModel:
    """Construct a TRNG mechanism model by name.

    Recognised names: ``"d-range"``, ``"quac-trng"``, ``"parametric"``
    (the latter requires a ``throughput_mbps`` keyword argument).
    """
    normalized = name.lower().replace("_", "-")
    if normalized in ("d-range", "drange"):
        return DRaNGe(**kwargs)
    if normalized in ("quac-trng", "quac"):
        return QUACTRNG(**kwargs)
    if normalized == "parametric":
        return ParametricTRNG(**kwargs)
    raise ValueError(
        f"unknown TRNG mechanism {name!r}; expected 'd-range', 'quac-trng' or 'parametric'"
    )


__all__ = [
    "DRAMTRNGModel",
    "DRaNGe",
    "QUACTRNG",
    "ParametricTRNG",
    "EntropySource",
    "ProcessVariationModel",
    "quality",
    "make_trng",
]
