"""Simulated DRAM entropy source.

DRAM-based TRNGs extract randomness from cells whose behaviour under
violated timing parameters is metastable: reading such a cell with a
reduced tRCD (D-RaNGe) or issuing carefully crafted quadruple activations
(QUAC-TRNG) makes the sensed value flip randomly, with a per-cell
probability determined by manufacturing process variation.

This module provides a synthetic substitute for real DRAM chips: a
:class:`ProcessVariationModel` assigns every RNG cell a Bernoulli
probability drawn from a Beta distribution centred at 0.5 (most cells are
nearly unbiased, a few are skewed), and :class:`EntropySource` samples raw
bits from these cells and optionally applies von Neumann debiasing so the
final bit stream passes basic randomness tests, mirroring the
post-processing D-RaNGe and QUAC-TRNG apply (bit selection / SHA-256).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ProcessVariationModel:
    """Statistical model of per-cell flip probabilities.

    Attributes
    ----------
    alpha, beta:
        Parameters of the Beta distribution the per-cell probabilities are
        drawn from.  The default (8, 8) gives probabilities concentrated
        around 0.5 with a realistic spread.
    rng_cell_fraction:
        Fraction of cells in a reserved row that behave as usable RNG
        cells (the rest are too deterministic to contribute entropy).
    """

    alpha: float = 8.0
    beta: float = 8.0
    rng_cell_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise ValueError("alpha and beta must be positive")
        if not 0 < self.rng_cell_fraction <= 1:
            raise ValueError("rng_cell_fraction must be in (0, 1]")

    def sample_cell_probabilities(self, num_cells: int, rng: np.random.Generator) -> np.ndarray:
        """Draw flip probabilities for ``num_cells`` RNG cells."""
        if num_cells <= 0:
            raise ValueError("num_cells must be positive")
        return rng.beta(self.alpha, self.beta, size=num_cells)


class EntropySource:
    """Produces random bits from a simulated population of DRAM RNG cells."""

    def __init__(
        self,
        num_cells: int = 4096,
        model: ProcessVariationModel | None = None,
        seed: int | None = 0,
        debias: bool = True,
    ) -> None:
        if num_cells <= 0:
            raise ValueError("num_cells must be positive")
        self.model = model or ProcessVariationModel()
        self.debias = debias
        self._rng = np.random.default_rng(seed)
        self.cell_probabilities = self.model.sample_cell_probabilities(num_cells, self._rng)
        self._next_cell = 0
        # Statistics.
        self.raw_bits_drawn = 0
        self.output_bits_produced = 0

    @property
    def num_cells(self) -> int:
        return len(self.cell_probabilities)

    # -- raw sampling -------------------------------------------------------------

    def sample_raw_bits(self, count: int) -> np.ndarray:
        """Sample ``count`` raw (possibly biased) bits from the RNG cells."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return np.zeros(0, dtype=np.uint8)
        indices = (self._next_cell + np.arange(count)) % self.num_cells
        self._next_cell = int((self._next_cell + count) % self.num_cells)
        probabilities = self.cell_probabilities[indices]
        bits = (self._rng.random(count) < probabilities).astype(np.uint8)
        self.raw_bits_drawn += count
        return bits

    # -- post-processing ----------------------------------------------------------

    @staticmethod
    def von_neumann(bits: np.ndarray) -> np.ndarray:
        """Von Neumann debiasing: 01 -> 0, 10 -> 1, 00/11 -> discarded."""
        if len(bits) < 2:
            return np.zeros(0, dtype=np.uint8)
        pairs = bits[: len(bits) // 2 * 2].reshape(-1, 2)
        keep = pairs[:, 0] != pairs[:, 1]
        return pairs[keep, 0].astype(np.uint8)

    def generate_bits(self, count: int) -> np.ndarray:
        """Generate ``count`` output bits (after optional debiasing)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return np.zeros(0, dtype=np.uint8)
        output: list[np.ndarray] = []
        produced = 0
        while produced < count:
            # Draw enough raw bits that one round usually suffices: von
            # Neumann keeps ~p(1-p)*2 of the input, ~0.5 for p near 0.5.
            raw = self.sample_raw_bits(max(64, (count - produced) * 3))
            chunk = self.von_neumann(raw) if self.debias else raw
            if len(chunk) == 0:
                continue
            output.append(chunk)
            produced += len(chunk)
        bits = np.concatenate(output)[:count]
        self.output_bits_produced += len(bits)
        return bits

    def generate_integer(self, bits: int = 64) -> int:
        """Generate an unsigned integer assembled from ``bits`` random bits."""
        if bits <= 0:
            raise ValueError("bits must be positive")
        bit_array = self.generate_bits(bits)
        value = 0
        for bit in bit_array:
            value = (value << 1) | int(bit)
        return value

    def generate_bytes(self, count: int) -> bytes:
        """Generate ``count`` random bytes."""
        if count < 0:
            raise ValueError("count must be non-negative")
        bits = self.generate_bits(count * 8)
        if count == 0:
            return b""
        return np.packbits(bits).tobytes()

    @property
    def debias_efficiency(self) -> float:
        """Fraction of raw bits surviving post-processing so far."""
        if not self.raw_bits_drawn:
            return 0.0
        return self.output_bits_produced / self.raw_bits_drawn
