"""Randomness quality tests.

A small, dependency-free subset of the NIST SP 800-22 statistical test
suite, used by the example applications and the test suite to check that
the simulated entropy source (after post-processing) produces bit streams
that look random.  Each test returns a :class:`TestResult` with a p-value
(or score) and a pass/fail verdict at the conventional 0.01 significance
level.

These tests validate the *entropy substrate substitution* documented in
DESIGN.md; they are not part of the paper's evaluation (the paper relies
on D-RaNGe's and QUAC-TRNG's published NIST results).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class TestResult:
    """Outcome of one statistical test."""

    name: str
    p_value: float
    passed: bool
    statistic: float = 0.0

    def __str__(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return f"{self.name}: p={self.p_value:.4f} [{verdict}]"


SIGNIFICANCE_LEVEL = 0.01


def _as_bit_array(bits: Sequence[int] | np.ndarray) -> np.ndarray:
    array = np.asarray(bits, dtype=np.int64)
    if array.ndim != 1:
        raise ValueError("bits must be a one-dimensional sequence")
    if array.size == 0:
        raise ValueError("bits must be non-empty")
    if not np.isin(array, (0, 1)).all():
        raise ValueError("bits must contain only 0 and 1")
    return array


def monobit_test(bits: Sequence[int] | np.ndarray) -> TestResult:
    """NIST frequency (monobit) test: are ones and zeros balanced?"""
    array = _as_bit_array(bits)
    n = array.size
    s = np.abs(2 * array.sum() - n)
    statistic = s / math.sqrt(n)
    p_value = math.erfc(statistic / math.sqrt(2))
    return TestResult("monobit", p_value, p_value >= SIGNIFICANCE_LEVEL, statistic)


def block_frequency_test(bits: Sequence[int] | np.ndarray, block_size: int = 128) -> TestResult:
    """NIST block-frequency test: are ones balanced within each block?"""
    array = _as_bit_array(bits)
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    num_blocks = array.size // block_size
    if num_blocks == 0:
        raise ValueError("bit stream shorter than one block")
    blocks = array[: num_blocks * block_size].reshape(num_blocks, block_size)
    proportions = blocks.mean(axis=1)
    chi_squared = 4.0 * block_size * float(np.sum((proportions - 0.5) ** 2))
    p_value = _igamc(num_blocks / 2.0, chi_squared / 2.0)
    return TestResult("block_frequency", p_value, p_value >= SIGNIFICANCE_LEVEL, chi_squared)


def runs_test(bits: Sequence[int] | np.ndarray) -> TestResult:
    """NIST runs test: is the number of runs consistent with randomness?"""
    array = _as_bit_array(bits)
    n = array.size
    pi = array.mean()
    if abs(pi - 0.5) >= 2.0 / math.sqrt(n):
        # Prerequisite (monobit) failed; the runs test is defined to fail.
        return TestResult("runs", 0.0, False, float("inf"))
    runs = 1 + int(np.count_nonzero(array[1:] != array[:-1]))
    expected = 2.0 * n * pi * (1 - pi)
    statistic = abs(runs - expected) / (2.0 * math.sqrt(2.0 * n) * pi * (1 - pi))
    p_value = math.erfc(statistic)
    return TestResult("runs", p_value, p_value >= SIGNIFICANCE_LEVEL, statistic)


def serial_twobit_test(bits: Sequence[int] | np.ndarray) -> TestResult:
    """Two-bit serial test: are the four 2-bit patterns equally likely?"""
    array = _as_bit_array(bits)
    n = array.size
    if n < 4:
        raise ValueError("bit stream too short for the serial test")
    pairs = array[:-1] * 2 + array[1:]
    counts = np.bincount(pairs, minlength=4).astype(float)
    expected = (n - 1) / 4.0
    chi_squared = float(np.sum((counts - expected) ** 2) / expected)
    p_value = _igamc(3 / 2.0, chi_squared / 2.0)
    return TestResult("serial_twobit", p_value, p_value >= SIGNIFICANCE_LEVEL, chi_squared)


def shannon_entropy(bits: Sequence[int] | np.ndarray, block_size: int = 8) -> float:
    """Empirical Shannon entropy per bit measured over ``block_size``-bit symbols."""
    array = _as_bit_array(bits)
    num_blocks = array.size // block_size
    if num_blocks == 0:
        raise ValueError("bit stream shorter than one block")
    weights = 1 << np.arange(block_size - 1, -1, -1)
    symbols = array[: num_blocks * block_size].reshape(num_blocks, block_size) @ weights
    counts = np.bincount(symbols, minlength=1 << block_size)
    probabilities = counts[counts > 0] / num_blocks
    entropy_bits = float(-(probabilities * np.log2(probabilities)).sum())
    return entropy_bits / block_size


def run_all_tests(bits: Sequence[int] | np.ndarray) -> list[TestResult]:
    """Run every implemented test on ``bits`` and return all results."""
    return [
        monobit_test(bits),
        block_frequency_test(bits),
        runs_test(bits),
        serial_twobit_test(bits),
    ]


def all_tests_pass(bits: Sequence[int] | np.ndarray) -> bool:
    """Whether ``bits`` pass every implemented randomness test."""
    return all(result.passed for result in run_all_tests(bits))


# -- incomplete gamma helper ------------------------------------------------------


def _igamc(a: float, x: float) -> float:
    """Upper regularised incomplete gamma function Q(a, x).

    Implemented with the series / continued-fraction split used by
    Cephes (and NIST's reference implementation), adequate for the test
    statistics produced here.
    """
    if x <= 0 or a <= 0:
        return 1.0
    if x < a + 1.0:
        return 1.0 - _igam_series(a, x)
    return _igamc_continued_fraction(a, x)


def _igam_series(a: float, x: float) -> float:
    """Lower regularised incomplete gamma P(a, x) via its power series."""
    term = 1.0 / a
    total = term
    n = a
    for _ in range(500):
        n += 1.0
        term *= x / n
        total += term
        if term < total * 1e-15:
            break
    return total * math.exp(-x + a * math.log(x) - math.lgamma(a))


def _igamc_continued_fraction(a: float, x: float) -> float:
    """Upper regularised incomplete gamma Q(a, x) via continued fraction."""
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    return h * math.exp(-x + a * math.log(x) - math.lgamma(a))
