"""D-RaNGe latency/throughput model.

D-RaNGe (Kim et al., HPCA 2019) generates random numbers by reading
reserved DRAM rows with a deliberately reduced tRCD: cells that are
vulnerable to the reduced activation latency (RNG cells) sense a random
value.  One reduced-latency read per bank yields a small number of random
bits, and all banks of a channel can be used in parallel.

Calibration (matching the paper's evaluation setup, Section 7):

* an 8-bit batch using all 8 banks of one idle channel takes ~40 bus
  cycles (the paper's ``PeriodThreshold``),
* a full on-demand 64-bit number, using all channels in parallel, takes
  ~198 memory cycles on average (the Figure 5 threshold line),
* the sustained aggregate throughput is ~563 Mb/s (Section 3).
"""

from __future__ import annotations

from .base import DRAMTRNGModel
from .entropy import EntropySource


class DRaNGe(DRAMTRNGModel):
    """Timing-failure (reduced tRCD) DRAM TRNG."""

    name = "d-range"

    def __init__(
        self,
        entropy_source: EntropySource | None = None,
        throughput_mbps: float = 563.0,
        batch_latency_cycles: int = 40,
        bits_per_bank_per_batch: int = 1,
        demand_base_latency_cycles: int = 110,
    ) -> None:
        super().__init__(entropy_source)
        if throughput_mbps <= 0:
            raise ValueError("throughput_mbps must be positive")
        if batch_latency_cycles <= 0:
            raise ValueError("batch_latency_cycles must be positive")
        if bits_per_bank_per_batch <= 0:
            raise ValueError("bits_per_bank_per_batch must be positive")
        if demand_base_latency_cycles <= 0:
            raise ValueError("demand_base_latency_cycles must be positive")
        self._throughput_mbps = throughput_mbps
        self._batch_latency_cycles = batch_latency_cycles
        self._bits_per_bank = bits_per_bank_per_batch
        self._demand_base_latency = demand_base_latency_cycles

    @property
    def throughput_mbps(self) -> float:
        return self._throughput_mbps

    @property
    def batch_latency_cycles(self) -> int:
        return self._batch_latency_cycles

    def bits_per_batch(self, banks_per_channel: int) -> int:
        if banks_per_channel <= 0:
            raise ValueError("banks_per_channel must be positive")
        return self._bits_per_bank * banks_per_channel

    @property
    def demand_base_latency_cycles(self) -> int:
        return self._demand_base_latency
