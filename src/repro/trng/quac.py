"""QUAC-TRNG latency/throughput model.

QUAC-TRNG (Olgun et al., ISCA 2021) issues carefully timed
ACT-PRE-ACT command sequences that activate four rows simultaneously
(quadruple activation); the resulting charge sharing makes a large
fraction of the cells in the open segment sense random values, which are
then whitened with SHA-256.

Compared to D-RaNGe the mechanism yields far more random bits per
operation (higher sustained throughput, ~3.44 Gb/s in the paper's
configuration) but a single 64-bit number takes longer to produce because
an entire quadruple-activation + SHA-256 pass must complete before any
output bits are available (Section 8.7 notes QUAC-TRNG's higher 64-bit
latency).
"""

from __future__ import annotations

from .base import DRAMTRNGModel
from .entropy import EntropySource


class QUACTRNG(DRAMTRNGModel):
    """Quadruple-activation DRAM TRNG."""

    name = "quac-trng"

    def __init__(
        self,
        entropy_source: EntropySource | None = None,
        throughput_mbps: float = 3440.0,
        batch_latency_cycles: int = 56,
        bits_per_batch_per_channel: int = 60,
        demand_base_latency_cycles: int = 300,
    ) -> None:
        super().__init__(entropy_source)
        if throughput_mbps <= 0:
            raise ValueError("throughput_mbps must be positive")
        if batch_latency_cycles <= 0:
            raise ValueError("batch_latency_cycles must be positive")
        if bits_per_batch_per_channel <= 0:
            raise ValueError("bits_per_batch_per_channel must be positive")
        if demand_base_latency_cycles <= 0:
            raise ValueError("demand_base_latency_cycles must be positive")
        self._throughput_mbps = throughput_mbps
        self._batch_latency_cycles = batch_latency_cycles
        self._bits_per_batch = bits_per_batch_per_channel
        self._demand_base_latency = demand_base_latency_cycles

    @property
    def throughput_mbps(self) -> float:
        return self._throughput_mbps

    @property
    def batch_latency_cycles(self) -> int:
        return self._batch_latency_cycles

    def bits_per_batch(self, banks_per_channel: int) -> int:
        if banks_per_channel <= 0:
            raise ValueError("banks_per_channel must be positive")
        # QUAC-TRNG operates on DRAM segments rather than individual banks;
        # the per-batch yield scales with how many banks participate but is
        # dominated by the per-segment yield.
        scale = banks_per_channel / 8.0
        return max(1, int(round(self._bits_per_batch * scale)))

    @property
    def demand_base_latency_cycles(self) -> int:
        return self._demand_base_latency
