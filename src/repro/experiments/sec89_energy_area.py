"""Section 8.9: energy consumption and area overhead.

Energy: DRAMPower-style energy and total memory busy cycles of the
RNG-oblivious baseline and DR-STRaNGe on dual-core workloads; the paper
reports 21% energy and 15.8% memory-cycle reductions.

Area: CACTI-style area of DR-STRaNGe's structures (random number buffer,
RNG request queues, idleness predictor) at 22 nm, for the simple and the
RL predictor configurations; the paper reports 0.0022 mm^2 and 0.012 mm^2
respectively.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.config import DRStrangeConfig
from ..energy.area import AreaModel, CASCADE_LAKE_CORE_AREA_MM2
from ..sim.runner import AloneRunCache, compare_designs
from ..workloads.mixes import dual_core_mixes
from ..workloads.spec import ApplicationSpec
from .common import DEFAULT_INSTRUCTIONS, average, select_applications, standard_design_configs


def run(
    apps: Optional[Sequence[ApplicationSpec]] = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    full: bool = False,
    cache: Optional[AloneRunCache] = None,
) -> Dict:
    """Measure relative energy / memory cycles and the area overhead."""
    applications = select_applications(apps, full=full)
    configs = standard_design_configs()
    del configs["greedy"]

    per_workload: List[Dict] = []
    for mix in dual_core_mixes(applications):
        evaluations = compare_designs(mix, configs, instructions=instructions, cache=cache)
        baseline = evaluations["rng-oblivious"]
        drstrange = evaluations["dr-strange"]
        per_workload.append(
            {
                "workload": mix.name,
                "baseline_energy_nj": baseline.energy_nj,
                "drstrange_energy_nj": drstrange.energy_nj,
                "energy_reduction": 1.0 - drstrange.energy_nj / baseline.energy_nj,
                "baseline_memory_cycles": baseline.memory_busy_cycles,
                "drstrange_memory_cycles": drstrange.memory_busy_cycles,
                # Reduction in the time the workload needs to complete the
                # same amount of work (the paper reports the reduction in
                # the time spent on RNG and non-RNG memory accesses; in
                # this reproduction finished cores keep running to provide
                # interference, so execution time is the comparable
                # measure of "time spent").
                "execution_time_reduction": 1.0
                - drstrange.result.total_cycles / max(1, baseline.result.total_cycles),
            }
        )

    area_model = AreaModel()
    simple_area = area_model.breakdown(DRStrangeConfig(predictor="simple"))
    rl_area = area_model.breakdown(DRStrangeConfig(predictor="rl"))

    return {
        "figure": "sec8.9",
        "workloads": per_workload,
        "avg_energy_reduction": average(w["energy_reduction"] for w in per_workload),
        "avg_execution_time_reduction": average(
            w["execution_time_reduction"] for w in per_workload
        ),
        "area": {
            "simple_predictor_mm2": simple_area.total_mm2,
            "simple_predictor_fraction_of_core": simple_area.fraction_of_core(),
            "rl_predictor_mm2": rl_area.total_mm2,
            "rl_predictor_fraction_of_core": rl_area.fraction_of_core(),
            "core_area_mm2": CASCADE_LAKE_CORE_AREA_MM2,
        },
    }


def format_table(data: Dict) -> str:
    """Render the energy and area summary."""
    area = data["area"]
    lines = [
        "Section 8.9 - energy and area",
        "DR-STRaNGe vs RNG-oblivious baseline:",
        f"    energy reduction:          {100 * data['avg_energy_reduction']:.1f}%",
        f"    execution time reduction:  {100 * data['avg_execution_time_reduction']:.1f}%",
        "Area overhead (22 nm):",
        f"    simple predictor config: {area['simple_predictor_mm2']:.4f} mm^2 "
        f"({100 * area['simple_predictor_fraction_of_core']:.5f}% of a CPU core)",
        f"    RL predictor config:     {area['rl_predictor_mm2']:.4f} mm^2 "
        f"({100 * area['rl_predictor_fraction_of_core']:.5f}% of a CPU core)",
    ]
    return "\n".join(lines)
