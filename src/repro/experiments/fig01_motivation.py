"""Figure 1: slowdown and unfairness of the RNG-oblivious baseline.

The motivation study runs two-core workloads (one non-RNG application +
one synthetic RNG benchmark) on the RNG-oblivious baseline and sweeps the
RNG benchmark's required throughput (640 / 1280 / 2560 / 5120 Mb/s).
Reported per required throughput:

* average slowdown of the non-RNG applications (Figure 1, top),
* average slowdown of the RNG applications (Figure 1, middle),
* average unfairness index (Figure 1, bottom).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sim.config import baseline_config
from ..sim.runner import AloneRunCache, run_workload
from ..workloads.spec import ApplicationSpec, MOTIVATION_RNG_THROUGHPUTS_MBPS
from ..workloads.mixes import dual_core_mixes
from .common import DEFAULT_INSTRUCTIONS, average, select_applications


def run(
    apps: Optional[Sequence[ApplicationSpec]] = None,
    throughputs_mbps: Sequence[float] = MOTIVATION_RNG_THROUGHPUTS_MBPS,
    instructions: int = DEFAULT_INSTRUCTIONS,
    full: bool = False,
    cache: Optional[AloneRunCache] = None,
) -> Dict:
    """Run the motivation study and return per-throughput averages."""
    applications = select_applications(apps, full=full)
    config = baseline_config()

    per_throughput: List[Dict] = []
    for throughput in throughputs_mbps:
        per_app: List[Dict] = []
        for mix in dual_core_mixes(applications, rng_throughput_mbps=throughput):
            evaluation = run_workload(mix, config, instructions=instructions, cache=cache)
            per_app.append(
                {
                    "workload": mix.name,
                    "application": mix.slots[0].name,
                    "non_rng_slowdown": evaluation.non_rng_slowdown,
                    "rng_slowdown": evaluation.rng_slowdown,
                    "unfairness": evaluation.unfairness,
                }
            )
        per_throughput.append(
            {
                "throughput_mbps": throughput,
                "workloads": per_app,
                "avg_non_rng_slowdown": average(w["non_rng_slowdown"] for w in per_app),
                "avg_rng_slowdown": average(w["rng_slowdown"] for w in per_app),
                "avg_unfairness": average(w["unfairness"] for w in per_app),
            }
        )

    return {
        "figure": "1",
        "design": "rng-oblivious",
        "applications": [app.name for app in applications],
        "series": per_throughput,
    }


def format_table(data: Dict) -> str:
    """Render the Figure 1 averages as a text table."""
    lines = ["Figure 1 - RNG-oblivious baseline (averages across workloads)"]
    lines.append(f"{'RNG throughput':>16} {'non-RNG slowdown':>18} {'RNG slowdown':>14} {'unfairness':>12}")
    for row in data["series"]:
        lines.append(
            f"{row['throughput_mbps']:>13.0f} Mb/s "
            f"{row['avg_non_rng_slowdown']:>18.3f} "
            f"{row['avg_rng_slowdown']:>14.3f} "
            f"{row['avg_unfairness']:>12.3f}"
        )
    return "\n".join(lines)
