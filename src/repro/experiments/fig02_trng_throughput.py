"""Figure 2: effect of the DRAM TRNG throughput on the baseline system.

Sweeps the TRNG mechanism's sustained throughput from 200 Mb/s to
6.4 Gb/s (all mechanisms assume D-RaNGe's latency, as in the paper's
footnote) and reports the distribution of non-RNG application slowdown and
system unfairness across two-core workloads on the RNG-oblivious
baseline.  Both metrics should improve with throughput and saturate
towards the high end.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..metrics.stats import box_stats
from ..sim.config import baseline_config
from ..sim.runner import AloneRunCache, run_workload
from ..workloads.mixes import dual_core_mixes
from ..workloads.spec import ApplicationSpec
from .common import DEFAULT_INSTRUCTIONS, average, select_applications

#: The TRNG throughputs of Figure 2 (x-axis is labelled in units of 100 Mb/s).
DEFAULT_THROUGHPUTS_MBPS: Sequence[float] = (200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0)


def run(
    apps: Optional[Sequence[ApplicationSpec]] = None,
    trng_throughputs_mbps: Sequence[float] = DEFAULT_THROUGHPUTS_MBPS,
    instructions: int = DEFAULT_INSTRUCTIONS,
    full: bool = False,
    cache: Optional[AloneRunCache] = None,
) -> Dict:
    """Run the TRNG-throughput sweep and return per-throughput distributions."""
    applications = select_applications(apps, full=full)

    series: List[Dict] = []
    for throughput in trng_throughputs_mbps:
        config = baseline_config(trng_name="parametric", trng_throughput_mbps=throughput)
        slowdowns: List[float] = []
        unfairness_values: List[float] = []
        for mix in dual_core_mixes(applications):
            evaluation = run_workload(mix, config, instructions=instructions, cache=cache)
            slowdowns.append(evaluation.non_rng_slowdown)
            unfairness_values.append(evaluation.unfairness)
        series.append(
            {
                "trng_throughput_mbps": throughput,
                "slowdowns": slowdowns,
                "unfairness": unfairness_values,
                "avg_slowdown": average(slowdowns),
                "avg_unfairness": average(unfairness_values),
                "slowdown_box": box_stats(slowdowns).as_dict(),
                "unfairness_box": box_stats(unfairness_values).as_dict(),
                "max_slowdown": max(slowdowns),
                "max_unfairness": max(unfairness_values),
            }
        )

    return {
        "figure": "2",
        "design": "rng-oblivious",
        "applications": [app.name for app in applications],
        "series": series,
    }


def format_table(data: Dict) -> str:
    """Render the Figure 2 distributions as a text table."""
    lines = ["Figure 2 - effect of TRNG throughput on the baseline system"]
    lines.append(
        f"{'TRNG Mb/s':>10} {'slowdown med':>13} {'slowdown max':>13} "
        f"{'unfairness med':>15} {'unfairness max':>15}"
    )
    for row in data["series"]:
        lines.append(
            f"{row['trng_throughput_mbps']:>10.0f} "
            f"{row['slowdown_box']['median']:>13.3f} {row['max_slowdown']:>13.3f} "
            f"{row['unfairness_box']['median']:>15.3f} {row['max_unfairness']:>15.3f}"
        )
    return "\n".join(lines)
