"""Section 8.8: workloads with a low-intensity (640 Mb/s) RNG application.

With a low required RNG throughput the RNG interference is small, so
DR-STRaNGe's improvements shrink accordingly (the paper reports 3.2% /
4.6% average improvements and no significant fairness change).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..sim.runner import AloneRunCache
from ..workloads.spec import ApplicationSpec
from .common import DEFAULT_INSTRUCTIONS
from . import fig06_dualcore_performance

#: Low-intensity RNG benchmark throughput (Mb/s).
LOW_THROUGHPUT_MBPS = 640.0


def run(
    apps: Optional[Sequence[ApplicationSpec]] = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    full: bool = False,
    cache: Optional[AloneRunCache] = None,
) -> Dict:
    """Run the dual-core design comparison at 640 Mb/s required throughput."""
    data = fig06_dualcore_performance.run(
        apps=apps,
        instructions=instructions,
        rng_throughput_mbps=LOW_THROUGHPUT_MBPS,
        full=full,
        cache=cache,
    )
    data["figure"] = "sec8.8"
    return data


def format_table(data: Dict) -> str:
    """Render the low-intensity comparison."""
    table = fig06_dualcore_performance.format_table(data)
    return table.replace("Figure 6", "Section 8.8 (640 Mb/s RNG applications)")
