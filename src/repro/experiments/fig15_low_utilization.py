"""Figure 15: impact of low-utilisation prediction.

Compares DR-STRaNGe with the simple idleness predictor when the
low-utilisation threshold is 0 (disabled: the buffer is only filled
during fully idle periods) and 4 (the paper's default: periods where the
read queue holds fewer than four requests are also used).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.config import DRStrangeConfig
from ..sim.config import baseline_config, drstrange_config
from ..sim.runner import AloneRunCache, compare_designs
from ..workloads.mixes import dual_core_mixes
from ..workloads.spec import ApplicationSpec
from .common import DEFAULT_INSTRUCTIONS, average, select_applications


def run(
    apps: Optional[Sequence[ApplicationSpec]] = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    thresholds: Sequence[int] = (0, 4),
    full: bool = False,
    cache: Optional[AloneRunCache] = None,
) -> Dict:
    """Run the low-utilisation prediction ablation."""
    applications = select_applications(apps, full=full)
    configs = {"rng-oblivious": baseline_config()}
    for threshold in thresholds:
        configs[f"threshold-{threshold}"] = drstrange_config(
            drstrange=DRStrangeConfig(low_utilization_threshold=threshold)
        )

    workloads: List[Dict] = []
    for mix in dual_core_mixes(applications):
        evaluations = compare_designs(mix, configs, instructions=instructions, cache=cache)
        row: Dict = {"workload": mix.name, "designs": {}}
        for label, evaluation in evaluations.items():
            row["designs"][label] = {
                "non_rng_slowdown": evaluation.non_rng_slowdown,
                "rng_slowdown": evaluation.rng_slowdown,
                "buffer_serve_rate": evaluation.buffer_serve_rate,
            }
        workloads.append(row)

    averages = {
        label: {
            "non_rng_slowdown": average(w["designs"][label]["non_rng_slowdown"] for w in workloads),
            "rng_slowdown": average(w["designs"][label]["rng_slowdown"] for w in workloads),
            "buffer_serve_rate": average(w["designs"][label]["buffer_serve_rate"] for w in workloads),
        }
        for label in configs
    }

    return {
        "figure": "15",
        "applications": [app.name for app in applications],
        "workloads": workloads,
        "averages": averages,
    }


def format_table(data: Dict) -> str:
    """Render the low-utilisation ablation averages."""
    lines = ["Figure 15 - impact of low-utilisation prediction"]
    lines.append(f"{'design':>15} {'non-RNG slowdown':>18} {'RNG slowdown':>14} {'serve rate':>12}")
    for label, row in data["averages"].items():
        lines.append(
            f"{label:>15} {row['non_rng_slowdown']:>18.3f} {row['rng_slowdown']:>14.3f} "
            f"{row['buffer_serve_rate']:>12.3f}"
        )
    return "\n".join(lines)
