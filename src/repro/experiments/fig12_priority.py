"""Figure 12: impact of priority-based RNG-aware scheduling.

Multi-core workloads are simulated under the RNG-oblivious baseline and
under DR-STRaNGe with (a) the non-RNG applications given high priority
and (b) the RNG application given high priority.  Reported per core
count: the normalised weighted speedup of the non-RNG applications and
the slowdown of the RNG application.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sim.config import baseline_config, drstrange_config, PRIORITY_NON_RNG_HIGH, PRIORITY_RNG_HIGH
from ..sim.runner import AloneRunCache, compare_designs
from ..workloads.mixes import multi_core_group_mixes
from .common import DEFAULT_INSTRUCTIONS, average


def run(
    core_counts: Sequence[int] = (4, 8),
    workloads_per_core_count: int = 2,
    instructions: int = DEFAULT_INSTRUCTIONS,
    cache: Optional[AloneRunCache] = None,
    seed: int = 0,
) -> Dict:
    """Evaluate priority-based scheduling across core counts."""
    configs = {
        "rng-oblivious": baseline_config(),
        "dr-strange (non-rng high)": drstrange_config(priority_mode=PRIORITY_NON_RNG_HIGH),
        "dr-strange (rng high)": drstrange_config(priority_mode=PRIORITY_RNG_HIGH),
    }

    rows: List[Dict] = []
    for cores in core_counts:
        groups = multi_core_group_mixes(cores, workloads_per_group=1, seed=seed)
        mixes = [mix for group in groups.values() for mix in group][:workloads_per_core_count]
        speedups = {label: [] for label in configs}
        rng_slowdowns = {label: [] for label in configs}
        for mix in mixes:
            evaluations = compare_designs(mix, configs, instructions=instructions, cache=cache)
            for label, evaluation in evaluations.items():
                speedups[label].append(evaluation.non_rng_weighted_speedup)
                rng_slowdowns[label].append(evaluation.rng_slowdown)
        baseline_speedup = average(speedups["rng-oblivious"])
        rows.append(
            {
                "cores": cores,
                "num_workloads": len(mixes),
                "normalized_weighted_speedup": {
                    label: (average(values) / baseline_speedup if baseline_speedup else 0.0)
                    for label, values in speedups.items()
                },
                "rng_slowdown": {label: average(values) for label, values in rng_slowdowns.items()},
            }
        )

    return {"figure": "12", "series": rows}


def format_table(data: Dict) -> str:
    """Render the priority-scheduling results."""
    lines = ["Figure 12 - priority-based RNG-aware scheduling"]
    for row in data["series"]:
        lines.append(f"{row['cores']}-core:")
        for label, value in row["normalized_weighted_speedup"].items():
            rng = row["rng_slowdown"][label]
            lines.append(f"    {label:>28}: norm. weighted speedup {value:.3f}, RNG slowdown {rng:.3f}")
    return "\n".join(lines)
