"""Figure 14: accuracy of the DRAM idleness predictors.

Reports, per workload, the prediction accuracy of the simple predictor
and the RL predictor (fraction of idle periods whose long/short class was
predicted correctly), for 2-core and larger workloads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.config import DRStrangeConfig
from ..sim.config import drstrange_config
from ..sim.runner import AloneRunCache, run_workload
from ..workloads.mixes import dual_core_mixes, multi_core_group_mixes
from ..workloads.spec import ApplicationSpec
from .common import DEFAULT_INSTRUCTIONS, average, select_applications


def run(
    apps: Optional[Sequence[ApplicationSpec]] = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    core_counts: Sequence[int] = (2, 4),
    full: bool = False,
    cache: Optional[AloneRunCache] = None,
    seed: int = 0,
) -> Dict:
    """Measure predictor accuracy for two-core and multi-core workloads."""
    applications = select_applications(apps, full=full)
    configs = {
        "simple": drstrange_config(drstrange=DRStrangeConfig(predictor="simple")),
        "rl": drstrange_config(drstrange=DRStrangeConfig(predictor="rl")),
    }

    two_core: List[Dict] = []
    if 2 in core_counts:
        for mix in dual_core_mixes(applications):
            row: Dict = {"workload": mix.name, "accuracy": {}}
            for label, config in configs.items():
                evaluation = run_workload(mix, config, instructions=instructions, cache=cache)
                row["accuracy"][label] = evaluation.predictor_accuracy or 0.0
            two_core.append(row)

    multi_core: List[Dict] = []
    for cores in core_counts:
        if cores == 2:
            continue
        groups = multi_core_group_mixes(cores, workloads_per_group=1, seed=seed)
        mixes = [mix for group in groups.values() for mix in group]
        accuracies = {label: [] for label in configs}
        for mix in mixes:
            for label, config in configs.items():
                evaluation = run_workload(mix, config, instructions=instructions, cache=cache)
                accuracies[label].append(evaluation.predictor_accuracy or 0.0)
        multi_core.append(
            {
                "cores": cores,
                "accuracy": {label: average(values) for label, values in accuracies.items()},
            }
        )

    return {
        "figure": "14",
        "two_core": two_core,
        "two_core_average": {
            label: average(row["accuracy"][label] for row in two_core) if two_core else 0.0
            for label in configs
        },
        "multi_core": multi_core,
    }


def format_table(data: Dict) -> str:
    """Render predictor accuracies."""
    lines = ["Figure 14 - DRAM idleness predictor accuracy"]
    avg = data["two_core_average"]
    lines.append(f"2-core average: simple {avg.get('simple', 0):.2f}, rl {avg.get('rl', 0):.2f}")
    for row in data["multi_core"]:
        lines.append(
            f"{row['cores']}-core average: simple {row['accuracy']['simple']:.2f}, "
            f"rl {row['accuracy']['rl']:.2f}"
        )
    return "\n".join(lines)
