"""Figure 18 (appendix): idle-period lengths of multi-core workloads.

Collects the DRAM idle-period length distribution of 4-, 8- and 16-core
workloads of non-RNG applications grouped by memory intensity.  Idle
periods shrink as the number of applications and their memory intensity
grow, so even fewer periods are long enough to generate a 64-bit random
number in one go.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..dram.address import AddressMapping
from ..metrics.stats import box_stats
from ..sim.config import baseline_config
from ..sim.runner import simulate_traces
from ..workloads.mixes import ROW_OFFSET_STRIDE
from ..workloads.suites import applications_by_category
from ..workloads.synthetic import generate_application_trace
from .common import DEFAULT_INSTRUCTIONS
from .fig05_idle_periods import CYCLES_PER_64BIT


def run(
    core_counts: Sequence[int] = (4, 8),
    categories: Sequence[str] = ("L", "M", "H"),
    instructions: int = DEFAULT_INSTRUCTIONS,
    cache=None,
    seed: int = 0,
) -> Dict:
    """Collect idle-period distributions for multi-core non-RNG workloads."""
    config = baseline_config()
    mapping = AddressMapping(config.organization)
    pools = applications_by_category()

    series: List[Dict] = []
    for cores in core_counts:
        for category in categories:
            pool = pools[category]
            traces = []
            for slot in range(cores):
                app = pool[(seed + slot) % len(pool)]
                traces.append(
                    generate_application_trace(
                        app,
                        instructions,
                        seed=seed * 131 + slot,
                        mapping=mapping,
                        row_offset=slot * ROW_OFFSET_STRIDE,
                    )
                )
            result = simulate_traces(traces, config)
            periods = result.all_idle_periods or [0]
            series.append(
                {
                    "group": f"{category} ({cores})",
                    "cores": cores,
                    "category": category,
                    "num_periods": len(periods),
                    "box": box_stats(periods).as_dict(),
                    "fraction_below_64bit": sum(1 for p in periods if p < CYCLES_PER_64BIT)
                    / len(periods),
                }
            )

    return {"figure": "18", "threshold_64bit_cycles": CYCLES_PER_64BIT, "series": series}


def format_table(data: Dict) -> str:
    """Render the multi-core idle-period distribution summary."""
    lines = ["Figure 18 - DRAM idle period lengths (multi-core, non-RNG workloads)"]
    lines.append(f"{'group':>10} {'periods':>8} {'median':>8} {'q3':>8} {'<198cyc':>8}")
    for row in data["series"]:
        lines.append(
            f"{row['group']:>10} {row['num_periods']:>8} {row['box']['median']:>8.0f} "
            f"{row['box']['q3']:>8.0f} {row['fraction_below_64bit']:>8.2f}"
        )
    return "\n".join(lines)
