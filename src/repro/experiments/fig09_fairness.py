"""Figure 9: system fairness of the three designs on dual-core workloads.

Reuses the Figure 6 runs and reports the unfairness index per workload
and the average fairness improvement of DR-STRaNGe over the baseline and
over the Greedy Idle design.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..sim.runner import AloneRunCache
from ..workloads.spec import ApplicationSpec, DEFAULT_RNG_THROUGHPUT_MBPS
from .common import DEFAULT_INSTRUCTIONS
from . import fig06_dualcore_performance


def run(
    apps: Optional[Sequence[ApplicationSpec]] = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    rng_throughput_mbps: float = DEFAULT_RNG_THROUGHPUT_MBPS,
    full: bool = False,
    cache: Optional[AloneRunCache] = None,
) -> Dict:
    """Run the fairness comparison (shares runs with Figure 6)."""
    data = fig06_dualcore_performance.run(
        apps=apps,
        instructions=instructions,
        rng_throughput_mbps=rng_throughput_mbps,
        full=full,
        cache=cache,
    )
    averages = data["averages"]
    baseline_unfairness = averages["rng-oblivious"]["unfairness"]
    greedy_unfairness = averages["greedy"]["unfairness"]
    drstrange_unfairness = averages["dr-strange"]["unfairness"]
    return {
        "figure": "9",
        "workloads": [
            {
                "workload": row["workload"],
                "unfairness": {label: d["unfairness"] for label, d in row["designs"].items()},
            }
            for row in data["workloads"]
        ],
        "average_unfairness": {label: row["unfairness"] for label, row in averages.items()},
        "fairness_improvement_vs_baseline": 1.0 - drstrange_unfairness / baseline_unfairness,
        "fairness_improvement_vs_greedy": 1.0 - drstrange_unfairness / greedy_unfairness,
    }


def format_table(data: Dict) -> str:
    """Render the per-design average unfairness."""
    lines = ["Figure 9 - system fairness (dual-core)"]
    for label, unfairness in data["average_unfairness"].items():
        lines.append(f"{label:>15}: average unfairness {unfairness:.3f}")
    lines.append(
        "DR-STRaNGe improves fairness by %.1f%% vs baseline and %.1f%% vs greedy"
        % (
            100 * data["fairness_improvement_vs_baseline"],
            100 * data["fairness_improvement_vs_greedy"],
        )
    )
    return "\n".join(lines)
