"""Figure 8: slowdown of RNG applications in multi-core workloads.

Same workload groups as Figure 7; the reported metric is the slowdown of
the RNG application relative to running alone on the single-core
baseline, under the RNG-oblivious baseline, the Greedy Idle design and
DR-STRaNGe.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..sim.runner import AloneRunCache
from .common import DEFAULT_INSTRUCTIONS
from . import fig07_multicore_speedup


def run(
    instructions: int = DEFAULT_INSTRUCTIONS,
    workloads_per_group: int = 2,
    core_counts: Sequence[int] = (8,),
    include_four_core_groups: bool = True,
    cache: Optional[AloneRunCache] = None,
    config_overrides: Optional[Dict] = None,
    seed: int = 0,
) -> Dict:
    """Run the multi-core RNG-slowdown study (shares runs with Figure 7)."""
    data = fig07_multicore_speedup.run(
        instructions=instructions,
        workloads_per_group=workloads_per_group,
        core_counts=core_counts,
        include_four_core_groups=include_four_core_groups,
        cache=cache,
        config_overrides=config_overrides,
        seed=seed,
    )
    return {
        "figure": "8",
        "four_core_groups": [
            {"group": row["group"], "rng_slowdown": row["rng_slowdown"]}
            for row in data["four_core_groups"]
        ],
        "multi_core_groups": [
            {"group": row["group"], "rng_slowdown": row["rng_slowdown"]}
            for row in data["multi_core_groups"]
        ],
    }


def format_table(data: Dict) -> str:
    """Render RNG application slowdowns per workload group and design."""
    lines = ["Figure 8 - RNG application slowdown in multi-core workloads"]
    lines.append(f"{'group':>12} {'rng-oblivious':>14} {'greedy':>10} {'dr-strange':>12}")
    for row in data["four_core_groups"] + data["multi_core_groups"]:
        slowdown = row["rng_slowdown"]
        lines.append(
            f"{row['group']:>12} {slowdown['rng-oblivious']:>14.3f} "
            f"{slowdown['greedy']:>10.3f} {slowdown['dr-strange']:>12.3f}"
        )
    return "\n".join(lines)
