"""Figure 11: impact of the memory request scheduler (no buffer).

Compares three schedulers on dual-core workloads with the random number
buffer disabled, isolating the scheduling effect:

* FR-FCFS with a column cap of 16 (the RNG-oblivious baseline),
* BLISS (blacklisting threshold 4, clearing interval 10 000 cycles),
* the RNG-aware scheduler (DR-STRaNGe with a 0-entry buffer).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.config import DRStrangeConfig
from ..sim.config import baseline_config, drstrange_config
from ..sim.runner import AloneRunCache, compare_designs
from ..workloads.mixes import dual_core_mixes
from ..workloads.spec import ApplicationSpec
from .common import DEFAULT_INSTRUCTIONS, average, select_applications


def run(
    apps: Optional[Sequence[ApplicationSpec]] = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    full: bool = False,
    cache: Optional[AloneRunCache] = None,
) -> Dict:
    """Compare FR-FCFS+Cap, BLISS and the RNG-aware scheduler (no buffer)."""
    applications = select_applications(apps, full=full)
    configs = {
        "fr-fcfs+cap": baseline_config(),
        "bliss": baseline_config(scheduler="bliss"),
        "rng-aware": drstrange_config(drstrange=DRStrangeConfig(buffer_entries=0)),
    }

    workloads: List[Dict] = []
    for mix in dual_core_mixes(applications):
        evaluations = compare_designs(mix, configs, instructions=instructions, cache=cache)
        row: Dict = {"workload": mix.name, "schedulers": {}}
        for label, evaluation in evaluations.items():
            row["schedulers"][label] = {
                "non_rng_slowdown": evaluation.non_rng_slowdown,
                "rng_slowdown": evaluation.rng_slowdown,
                "unfairness": evaluation.unfairness,
            }
        workloads.append(row)

    averages = {
        label: {
            "non_rng_slowdown": average(w["schedulers"][label]["non_rng_slowdown"] for w in workloads),
            "rng_slowdown": average(w["schedulers"][label]["rng_slowdown"] for w in workloads),
            "unfairness": average(w["schedulers"][label]["unfairness"] for w in workloads),
        }
        for label in configs
    }

    return {
        "figure": "11",
        "applications": [app.name for app in applications],
        "workloads": workloads,
        "averages": averages,
    }


def format_table(data: Dict) -> str:
    """Render per-scheduler averages."""
    lines = ["Figure 11 - scheduler comparison (no random number buffer)"]
    lines.append(f"{'scheduler':>13} {'non-RNG slowdown':>18} {'RNG slowdown':>14} {'unfairness':>12}")
    for label, row in data["averages"].items():
        lines.append(
            f"{label:>13} {row['non_rng_slowdown']:>18.3f} {row['rng_slowdown']:>14.3f} "
            f"{row['unfairness']:>12.3f}"
        )
    return "\n".join(lines)
