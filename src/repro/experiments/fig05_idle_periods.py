"""Figure 5: distribution of DRAM idle-period lengths (single core).

Runs each non-RNG application alone on the baseline system and collects
the lengths of the idle periods observed on every DRAM channel.  The
paper's observation is that a significant portion of idle periods are
shorter than the ~198 cycles needed to generate a 64-bit random number,
which motivates generating random numbers in small (8-bit) batches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..dram.address import AddressMapping
from ..metrics.stats import box_stats
from ..sim.config import baseline_config
from ..sim.runner import simulate_traces
from ..workloads.spec import ApplicationSpec
from ..workloads.synthetic import generate_application_trace
from .common import DEFAULT_INSTRUCTIONS, select_applications

#: Bus cycles needed to generate one 64-bit random number with D-RaNGe.
CYCLES_PER_64BIT = 198

#: The period threshold used for 8-bit batches (Section 5.1).
CYCLES_PER_8BIT = 40


def run(
    apps: Optional[Sequence[ApplicationSpec]] = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    full: bool = False,
    cache=None,
) -> Dict:
    """Collect the idle-period length distribution of single-core runs."""
    applications = select_applications(apps, full=full)
    config = baseline_config()
    mapping = AddressMapping(config.organization)

    series: List[Dict] = []
    for app in applications:
        trace = generate_application_trace(app, instructions, seed=1, mapping=mapping)
        result = simulate_traces([trace], config)
        periods = result.all_idle_periods
        if not periods:
            periods = [0]
        fraction_long_64 = sum(1 for p in periods if p >= CYCLES_PER_64BIT) / len(periods)
        fraction_long_8 = sum(1 for p in periods if p >= CYCLES_PER_8BIT) / len(periods)
        series.append(
            {
                "application": app.name,
                "mpki": app.mpki,
                "num_periods": len(periods),
                "box": box_stats(periods).as_dict(),
                "fraction_at_least_64bit": fraction_long_64,
                "fraction_at_least_8bit": fraction_long_8,
            }
        )

    return {
        "figure": "5",
        "threshold_64bit_cycles": CYCLES_PER_64BIT,
        "threshold_8bit_cycles": CYCLES_PER_8BIT,
        "series": series,
    }


def format_table(data: Dict) -> str:
    """Render the idle-period distribution summary."""
    lines = ["Figure 5 - DRAM idle period lengths (single-core, baseline)"]
    lines.append(
        f"{'application':>14} {'periods':>8} {'median':>8} {'q3':>8} "
        f"{'>=198cyc':>9} {'>=40cyc':>8}"
    )
    for row in data["series"]:
        lines.append(
            f"{row['application']:>14} {row['num_periods']:>8} "
            f"{row['box']['median']:>8.0f} {row['box']['q3']:>8.0f} "
            f"{row['fraction_at_least_64bit']:>9.2f} {row['fraction_at_least_8bit']:>8.2f}"
        )
    return "\n".join(lines)
