"""Figure 17 (appendix): RNG applications with a 10 Gb/s requirement.

Repeats the dual-core three-design comparison with an RNG benchmark that
requires 10 Gb/s of random number throughput; DR-STRaNGe's benefits grow
because the baseline interference is even larger.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..sim.runner import AloneRunCache
from ..workloads.spec import ApplicationSpec
from .common import DEFAULT_INSTRUCTIONS
from . import fig06_dualcore_performance

#: 10 Gb/s in Mb/s.
HIGH_THROUGHPUT_MBPS = 10_240.0


def run(
    apps: Optional[Sequence[ApplicationSpec]] = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    full: bool = False,
    cache: Optional[AloneRunCache] = None,
) -> Dict:
    """Run the dual-core design comparison at 10 Gb/s required throughput."""
    data = fig06_dualcore_performance.run(
        apps=apps,
        instructions=instructions,
        rng_throughput_mbps=HIGH_THROUGHPUT_MBPS,
        full=full,
        cache=cache,
    )
    data["figure"] = "17"
    return data


def format_table(data: Dict) -> str:
    """Render the 10 Gb/s comparison."""
    table = fig06_dualcore_performance.format_table(data)
    return table.replace("Figure 6", "Figure 17 (10 Gb/s RNG applications)")
