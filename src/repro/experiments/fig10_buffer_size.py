"""Figure 10: impact of the random number buffer size.

Sweeps the random number buffer size (no buffer, 1, 4, 16, 64 entries)
with the *simple buffering mechanism* (no idleness predictor, Section
5.1.1) and reports, per buffer size, the average non-RNG and RNG
application slowdowns and the buffer serve rate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.config import DRStrangeConfig
from ..sim.config import drstrange_config
from ..sim.runner import AloneRunCache, run_workload
from ..workloads.mixes import dual_core_mixes
from ..workloads.spec import ApplicationSpec
from .common import DEFAULT_INSTRUCTIONS, average, select_applications

#: Buffer sizes of Figure 10 (in 64-bit entries; 0 = no buffer).
DEFAULT_BUFFER_SIZES: Sequence[int] = (0, 1, 4, 16, 64)


def run(
    apps: Optional[Sequence[ApplicationSpec]] = None,
    buffer_sizes: Sequence[int] = DEFAULT_BUFFER_SIZES,
    instructions: int = DEFAULT_INSTRUCTIONS,
    full: bool = False,
    cache: Optional[AloneRunCache] = None,
) -> Dict:
    """Run the buffer-size sweep with the simple buffering mechanism."""
    applications = select_applications(apps, full=full)
    mixes = dual_core_mixes(applications)

    series: List[Dict] = []
    for entries in buffer_sizes:
        drs = DRStrangeConfig(buffer_entries=entries, predictor="none")
        config = drstrange_config(drstrange=drs)
        per_workload: List[Dict] = []
        for mix in mixes:
            evaluation = run_workload(mix, config, instructions=instructions, cache=cache)
            per_workload.append(
                {
                    "workload": mix.name,
                    "non_rng_slowdown": evaluation.non_rng_slowdown,
                    "rng_slowdown": evaluation.rng_slowdown,
                    "buffer_serve_rate": evaluation.buffer_serve_rate,
                }
            )
        series.append(
            {
                "buffer_entries": entries,
                "workloads": per_workload,
                "avg_non_rng_slowdown": average(w["non_rng_slowdown"] for w in per_workload),
                "avg_rng_slowdown": average(w["rng_slowdown"] for w in per_workload),
                "avg_buffer_serve_rate": average(w["buffer_serve_rate"] for w in per_workload),
            }
        )

    return {
        "figure": "10",
        "applications": [app.name for app in applications],
        "series": series,
    }


def format_table(data: Dict) -> str:
    """Render the buffer-size sweep averages."""
    lines = ["Figure 10 - impact of the random number buffer size (simple buffering)"]
    lines.append(f"{'entries':>8} {'non-RNG slowdown':>18} {'RNG slowdown':>14} {'serve rate':>12}")
    for row in data["series"]:
        lines.append(
            f"{row['buffer_entries']:>8} {row['avg_non_rng_slowdown']:>18.3f} "
            f"{row['avg_rng_slowdown']:>14.3f} {row['avg_buffer_serve_rate']:>12.3f}"
        )
    return "\n".join(lines)
