"""Figure 16: DR-STRaNGe with QUAC-TRNG.

Repeats the dual-core three-design comparison of Figures 6 and 9 with the
QUAC-TRNG mechanism model (higher throughput, higher 64-bit latency than
D-RaNGe), showing that DR-STRaNGe's benefits are mechanism-independent.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..sim.runner import AloneRunCache
from ..workloads.spec import ApplicationSpec, DEFAULT_RNG_THROUGHPUT_MBPS
from .common import DEFAULT_INSTRUCTIONS
from . import fig06_dualcore_performance


def run(
    apps: Optional[Sequence[ApplicationSpec]] = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    rng_throughput_mbps: float = DEFAULT_RNG_THROUGHPUT_MBPS,
    full: bool = False,
    cache: Optional[AloneRunCache] = None,
) -> Dict:
    """Run the dual-core design comparison with QUAC-TRNG."""
    data = fig06_dualcore_performance.run(
        apps=apps,
        instructions=instructions,
        rng_throughput_mbps=rng_throughput_mbps,
        full=full,
        cache=cache,
        config_overrides={"trng_name": "quac-trng"},
    )
    data["figure"] = "16"
    data["trng"] = "quac-trng"
    return data


def format_table(data: Dict) -> str:
    """Render the QUAC-TRNG comparison."""
    table = fig06_dualcore_performance.format_table(data)
    return table.replace("Figure 6", "Figure 16 (QUAC-TRNG)")
