"""Figure 7: weighted speedup of non-RNG applications in multi-core workloads.

Four-core workload groups (LLLS / LLHS / LHHS / HHHS) and 4/8/16-core
groups of a single memory-intensity category (L/M/H) are simulated under
the Greedy Idle design and DR-STRaNGe; the reported metric is the
weighted speedup of the non-RNG applications normalised to the
RNG-oblivious baseline (higher is better, 1.0 = baseline).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sim.runner import AloneRunCache, compare_designs
from ..workloads.mixes import four_core_group_mixes, multi_core_group_mixes
from ..workloads.spec import WorkloadMix
from .common import DEFAULT_INSTRUCTIONS, average, standard_design_configs


def _evaluate_groups(
    groups: Dict[str, List[WorkloadMix]],
    instructions: int,
    cache: Optional[AloneRunCache],
    config_overrides: Optional[Dict],
) -> List[Dict]:
    configs = standard_design_configs(**(config_overrides or {}))
    rows: List[Dict] = []
    for group_name, mixes in groups.items():
        speedups = {label: [] for label in configs}
        rng_slowdowns = {label: [] for label in configs}
        for mix in mixes:
            evaluations = compare_designs(mix, configs, instructions=instructions, cache=cache)
            for label, evaluation in evaluations.items():
                speedups[label].append(evaluation.non_rng_weighted_speedup)
                rng_slowdowns[label].append(evaluation.rng_slowdown)
        baseline_speedup = average(speedups["rng-oblivious"])
        row = {
            "group": group_name,
            "num_workloads": len(mixes),
            "weighted_speedup": {label: average(values) for label, values in speedups.items()},
            "rng_slowdown": {label: average(values) for label, values in rng_slowdowns.items()},
            "normalized_weighted_speedup": {
                label: (average(values) / baseline_speedup if baseline_speedup else 0.0)
                for label, values in speedups.items()
            },
        }
        rows.append(row)
    return rows


def run(
    instructions: int = DEFAULT_INSTRUCTIONS,
    workloads_per_group: int = 2,
    core_counts: Sequence[int] = (8,),
    include_four_core_groups: bool = True,
    cache: Optional[AloneRunCache] = None,
    config_overrides: Optional[Dict] = None,
    seed: int = 0,
) -> Dict:
    """Run the multi-core weighted-speedup study.

    ``workloads_per_group`` and ``core_counts`` default to a scaled-down
    configuration; the paper uses 10 workloads per group and 4/8/16 cores.
    """
    four_core_rows: List[Dict] = []
    if include_four_core_groups:
        groups = four_core_group_mixes(workloads_per_group=workloads_per_group, seed=seed)
        four_core_rows = _evaluate_groups(groups, instructions, cache, config_overrides)

    multi_core_rows: List[Dict] = []
    for cores in core_counts:
        groups = multi_core_group_mixes(
            cores, workloads_per_group=workloads_per_group, seed=seed
        )
        rows = _evaluate_groups(groups, instructions, cache, config_overrides)
        for row in rows:
            row["cores"] = cores
            row["group"] = f"{row['group']} ({cores})"
        multi_core_rows.extend(rows)

    return {
        "figure": "7",
        "four_core_groups": four_core_rows,
        "multi_core_groups": multi_core_rows,
    }


def format_table(data: Dict) -> str:
    """Render normalised weighted speedups per workload group."""
    lines = ["Figure 7 - normalised weighted speedup of non-RNG applications"]
    lines.append(f"{'group':>12} {'greedy':>10} {'dr-strange':>12}")
    for row in data["four_core_groups"] + data["multi_core_groups"]:
        norm = row["normalized_weighted_speedup"]
        lines.append(f"{row['group']:>12} {norm['greedy']:>10.3f} {norm['dr-strange']:>12.3f}")
    return "\n".join(lines)
