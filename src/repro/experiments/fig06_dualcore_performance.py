"""Figure 6: dual-core performance of baseline, Greedy Idle and DR-STRaNGe.

Every two-core workload (one non-RNG application + the 5 Gb/s RNG
benchmark) is simulated under the three designs; reported per design:

* slowdown of the non-RNG application vs. running alone (Figure 6 top),
* slowdown of the RNG application vs. running alone (Figure 6 bottom),
* the unfairness index (reused by Figure 9).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sim.runner import AloneRunCache, compare_designs
from ..workloads.mixes import dual_core_mixes
from ..workloads.spec import ApplicationSpec, DEFAULT_RNG_THROUGHPUT_MBPS
from .common import DEFAULT_INSTRUCTIONS, average, select_applications, standard_design_configs


def run(
    apps: Optional[Sequence[ApplicationSpec]] = None,
    instructions: int = DEFAULT_INSTRUCTIONS,
    rng_throughput_mbps: float = DEFAULT_RNG_THROUGHPUT_MBPS,
    full: bool = False,
    cache: Optional[AloneRunCache] = None,
    config_overrides: Optional[Dict] = None,
) -> Dict:
    """Compare the three designs on dual-core workloads."""
    applications = select_applications(apps, full=full)
    configs = standard_design_configs(**(config_overrides or {}))

    workloads: List[Dict] = []
    for mix in dual_core_mixes(applications, rng_throughput_mbps=rng_throughput_mbps):
        evaluations = compare_designs(mix, configs, instructions=instructions, cache=cache)
        row: Dict = {"workload": mix.name, "application": mix.slots[0].name, "designs": {}}
        for label, evaluation in evaluations.items():
            row["designs"][label] = {
                "non_rng_slowdown": evaluation.non_rng_slowdown,
                "rng_slowdown": evaluation.rng_slowdown,
                "unfairness": evaluation.unfairness,
                "buffer_serve_rate": evaluation.buffer_serve_rate,
                "energy_nj": evaluation.energy_nj,
                "memory_busy_cycles": evaluation.memory_busy_cycles,
            }
        workloads.append(row)

    averages = {}
    for label in configs:
        averages[label] = {
            "non_rng_slowdown": average(w["designs"][label]["non_rng_slowdown"] for w in workloads),
            "rng_slowdown": average(w["designs"][label]["rng_slowdown"] for w in workloads),
            "unfairness": average(w["designs"][label]["unfairness"] for w in workloads),
            "buffer_serve_rate": average(
                w["designs"][label]["buffer_serve_rate"] for w in workloads
            ),
        }

    baseline = averages["rng-oblivious"]
    drstrange = averages["dr-strange"]
    improvements = {
        "non_rng_improvement": 1.0 - drstrange["non_rng_slowdown"] / baseline["non_rng_slowdown"],
        "rng_improvement": 1.0 - drstrange["rng_slowdown"] / baseline["rng_slowdown"],
        "fairness_improvement": 1.0 - drstrange["unfairness"] / baseline["unfairness"],
    }

    return {
        "figure": "6",
        "rng_throughput_mbps": rng_throughput_mbps,
        "applications": [app.name for app in applications],
        "workloads": workloads,
        "averages": averages,
        "improvements": improvements,
    }


def format_table(data: Dict) -> str:
    """Render the per-design averages and headline improvements."""
    lines = [f"Figure 6 - dual-core designs at {data['rng_throughput_mbps']:.0f} Mb/s required RNG throughput"]
    lines.append(f"{'design':>15} {'non-RNG slowdown':>18} {'RNG slowdown':>14} {'unfairness':>12} {'serve rate':>12}")
    for label, row in data["averages"].items():
        lines.append(
            f"{label:>15} {row['non_rng_slowdown']:>18.3f} {row['rng_slowdown']:>14.3f} "
            f"{row['unfairness']:>12.3f} {row['buffer_serve_rate']:>12.3f}"
        )
    imp = data["improvements"]
    lines.append(
        "DR-STRaNGe vs baseline: non-RNG %+.1f%%, RNG %+.1f%%, fairness %+.1f%%"
        % (
            100 * imp["non_rng_improvement"],
            100 * imp["rng_improvement"],
            100 * imp["fairness_improvement"],
        )
    )
    return "\n".join(lines)
