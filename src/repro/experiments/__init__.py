"""Per-figure experiment modules (see DESIGN.md for the experiment index).

Every module exposes ``run(...) -> dict`` and ``format_table(data) -> str``.
The defaults are scaled down (a handful of applications, short synthetic
traces); pass ``full=True`` and a larger ``instructions`` count to
approximate the paper's full workload set.
"""

from . import (
    common,
    fig01_motivation,
    fig02_trng_throughput,
    fig05_idle_periods,
    fig06_dualcore_performance,
    fig07_multicore_speedup,
    fig08_multicore_rng,
    fig09_fairness,
    fig10_buffer_size,
    fig11_scheduler,
    fig12_priority,
    fig13_predictor,
    fig14_predictor_accuracy,
    fig15_low_utilization,
    fig16_quac,
    fig17_high_throughput,
    fig18_multicore_idle,
    sec88_low_intensity,
    sec89_energy_area,
)

#: Experiment registry: figure/section id -> module.
EXPERIMENTS = {
    "fig1": fig01_motivation,
    "fig2": fig02_trng_throughput,
    "fig5": fig05_idle_periods,
    "fig6": fig06_dualcore_performance,
    "fig7": fig07_multicore_speedup,
    "fig8": fig08_multicore_rng,
    "fig9": fig09_fairness,
    "fig10": fig10_buffer_size,
    "fig11": fig11_scheduler,
    "fig12": fig12_priority,
    "fig13": fig13_predictor,
    "fig14": fig14_predictor_accuracy,
    "fig15": fig15_low_utilization,
    "fig16": fig16_quac,
    "fig17": fig17_high_throughput,
    "fig18": fig18_multicore_idle,
    "sec8.8": sec88_low_intensity,
    "sec8.9": sec89_energy_area,
}

__all__ = ["EXPERIMENTS", "common"] + sorted(
    name for name in dir() if name.startswith(("fig", "sec")) and not name.startswith("__")
)
