"""Shared helpers for the per-figure experiment modules.

Every experiment module exposes a ``run(...)`` function that returns a
plain dictionary of rows/series (so results can be printed, asserted on in
benchmarks, or dumped to JSON) and a ``format_table(data)`` helper that
renders the same rows the paper reports.

All experiments accept two scaling knobs:

* ``apps`` / ``num_apps`` — which (or how many) non-RNG applications to
  pair with the RNG benchmark.  The default is a small intensity-diverse
  subset so a full figure regenerates in seconds; pass ``full=True`` to
  use the complete roster the paper uses.
* ``instructions`` — per-core instruction count of the synthetic traces.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..sim.config import SimulationConfig, baseline_config, drstrange_config, greedy_config
from ..sim.runner import AloneRunCache, GLOBAL_ALONE_CACHE
from ..workloads.spec import ApplicationSpec
from ..workloads.suites import ALL_APPLICATIONS, representative_subset

#: Default per-core instruction count of the scaled-down experiments.
#: The RNG benchmark issues one burst of requests every
#: ``burst_length * instructions_between_requests`` (= 10 000 at 5 Gb/s)
#: instructions, so runs need a few tens of thousands of instructions to
#: contain enough bursts for stable buffer and scheduler statistics.
DEFAULT_INSTRUCTIONS = 40_000

#: Default number of applications in the scaled-down experiments.
DEFAULT_NUM_APPS = 6


def select_applications(
    apps: Optional[Sequence[ApplicationSpec]] = None,
    num_apps: int = DEFAULT_NUM_APPS,
    full: bool = False,
) -> List[ApplicationSpec]:
    """Choose the non-RNG applications an experiment runs with."""
    if apps is not None:
        return list(apps)
    if full:
        return list(ALL_APPLICATIONS)
    return representative_subset(num_apps)


def standard_design_configs(**overrides) -> Dict[str, SimulationConfig]:
    """The three designs compared throughout Section 8."""
    return {
        "rng-oblivious": baseline_config(**overrides),
        "greedy": greedy_config(**overrides),
        "dr-strange": drstrange_config(**overrides),
    }


def average(values: Iterable[float]) -> float:
    """Arithmetic mean of an iterable (0.0 for an empty one)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def format_row(label: str, values: Dict[str, float], width: int = 22) -> str:
    """Format one result row as ``label  key=value  key=value ...``."""
    cells = "  ".join(f"{key}={value:.3f}" for key, value in values.items())
    return f"{label:<{width}} {cells}"


def fresh_cache() -> AloneRunCache:
    """A private alone-run cache (used by tests that must not share state)."""
    return AloneRunCache()


def shared_cache() -> AloneRunCache:
    """The process-wide alone-run cache."""
    return GLOBAL_ALONE_CACHE


def persistent_cache(cache_dir) -> AloneRunCache:
    """An alone-run cache backed by the on-disk result store at ``cache_dir``.

    Unlike :func:`shared_cache`, entries survive across processes, CLI
    invocations and benchmark sessions (see :mod:`repro.orchestration`).
    The import is deferred because :mod:`repro.orchestration` imports the
    experiment registry.
    """
    from ..orchestration import persistent_alone_cache

    return persistent_alone_cache(cache_dir)
