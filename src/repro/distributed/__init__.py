"""Distributed execution: coordinator/worker sharding of simulation points.

This subsystem turns the orchestrator's execute phase into a cluster
run.  A :class:`~repro.distributed.coordinator.Coordinator` serves an
experiment's pending simulation points over a JSON-lines TCP protocol;
:func:`~repro.distributed.worker.run_worker` processes — on the same
machine or any machine that can reach the coordinator — lease points,
simulate them through the existing engine, and stream results back.
The coordinator commits results to the content-addressed result store,
so a distributed sweep replays bit-identically to a serial one.

Everything is standard library only (``socket`` + ``threading`` +
``json``): no broker, no serialization framework, no install step on
worker machines beyond the repository itself.

Public surface:

* :class:`~repro.distributed.service.SweepService` — the persistent
  multi-tenant daemon behind ``repro serve``: submit/poll/cancel over
  the same protocol, BLISS-fair scheduling across jobs, one shared
  worker fleet, per-job run manifests.
* :class:`~repro.distributed.client.SweepClient` — submit → job id →
  poll → results, the programmatic face of ``repro submit``.
* :class:`~repro.distributed.fairness.TenantScheduler` — the
  consecutive-service/blacklist/clearing policy object.
* :class:`~repro.distributed.executor.DistributedExecutor` — plug into
  :func:`repro.orchestration.sweep.sweep_experiments`'s ``executor=``.
* :class:`~repro.distributed.coordinator.Coordinator` — the one-shot
  work queue (leases, heartbeats, bounded retries, straggler re-issue).
* :func:`~repro.distributed.worker.run_worker` — the worker loop behind
  ``python -m repro worker --connect HOST:PORT`` (identical against a
  coordinator or a service).
* :mod:`~repro.distributed.protocol` — message framing and the unit /
  config / trace / result wire codecs.
"""

from .client import JobStatus, ServiceError, SweepClient, WatchClient
from .coordinator import Coordinator
from .executor import DistributedExecutor, spawn_local_worker
from .fairness import TenantScheduler
from .protocol import (
    PROTOCOL_VERSION,
    SERVICE_FEATURES,
    parse_address,
    unit_from_wire,
    unit_to_wire,
)
from .service import SweepService
from .worker import WorkerStats, run_worker

__all__ = [
    "Coordinator",
    "DistributedExecutor",
    "JobStatus",
    "PROTOCOL_VERSION",
    "SERVICE_FEATURES",
    "ServiceError",
    "SweepClient",
    "SweepService",
    "TenantScheduler",
    "WatchClient",
    "WorkerStats",
    "parse_address",
    "run_worker",
    "spawn_local_worker",
    "unit_from_wire",
    "unit_to_wire",
]
