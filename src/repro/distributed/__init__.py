"""Distributed execution: coordinator/worker sharding of simulation points.

This subsystem turns the orchestrator's execute phase into a cluster
run.  A :class:`~repro.distributed.coordinator.Coordinator` serves an
experiment's pending simulation points over a JSON-lines TCP protocol;
:func:`~repro.distributed.worker.run_worker` processes — on the same
machine or any machine that can reach the coordinator — lease points,
simulate them through the existing engine, and stream results back.
The coordinator commits results to the content-addressed result store,
so a distributed sweep replays bit-identically to a serial one.

Everything is standard library only (``socket`` + ``threading`` +
``json``): no broker, no serialization framework, no install step on
worker machines beyond the repository itself.

Public surface:

* :class:`~repro.distributed.executor.DistributedExecutor` — plug into
  :func:`repro.orchestration.sweep.sweep_experiments`'s ``executor=``.
* :class:`~repro.distributed.coordinator.Coordinator` — the work queue
  (leases, heartbeats, bounded retries, straggler re-issue).
* :func:`~repro.distributed.worker.run_worker` — the worker loop behind
  ``python -m repro worker --connect HOST:PORT``.
* :mod:`~repro.distributed.protocol` — message framing and the unit /
  config / trace / result wire codecs.
"""

from .coordinator import Coordinator
from .executor import DistributedExecutor, spawn_local_worker
from .protocol import PROTOCOL_VERSION, parse_address, unit_from_wire, unit_to_wire
from .worker import WorkerStats, run_worker

__all__ = [
    "Coordinator",
    "DistributedExecutor",
    "PROTOCOL_VERSION",
    "WorkerStats",
    "parse_address",
    "run_worker",
    "spawn_local_worker",
    "unit_from_wire",
    "unit_to_wire",
]
