"""Sweep-as-a-service: a persistent, multi-tenant experiment daemon.

Where the :class:`~repro.distributed.coordinator.Coordinator` serves one
pre-planned batch of points and exits, :class:`SweepService` runs
forever: clients submit :class:`~repro.orchestration.request.SweepRequest`s
over the same JSON-lines protocol (``submit``/``poll``/``cancel``/
``jobs``, negotiated via the welcome's ``features`` like the telemetry
messages), the service decomposes each into simulation points with the
existing planner, and one shared worker fleet drains the points of
*every* live job.

Three properties carry over from the one-shot pipeline by construction:

* **Bit-identity.**  Results are committed to the same content-addressed
  store and each job's figures are reassembled by replaying the figure
  module through a :class:`~repro.orchestration.sweep.CacheServingBackend`
  — the replay *is* the serial code path, so a job's data dicts are
  byte-identical to a serial run of the same request.
* **Cross-tenant memoisation.**  Points are registered by content key:
  a point two jobs both need is simulated once and credited to both, and
  a point already in the store (from any past tenant) is never
  re-simulated at all.
* **Fault tolerance.**  Leases, heartbeats, bounded retries and
  straggler re-issue are the coordinator's, unchanged — a worker that
  dies mid-point affects which *attempt* commits, never the bytes.

Fairness is the new piece: lease grants are arbitrated by the
BLISS-inspired :class:`~repro.distributed.fairness.TenantScheduler`
(consecutive-service streaks, blacklisting at the service quantum,
periodic clearing), so a 43-app ``--full`` batch job cannot starve an
interactive two-figure request — the paper's own DRAM scheduling idea,
one level up.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from .. import telemetry
from ..orchestration.cache import ResultCache
from ..orchestration.executors import store_put
from ..orchestration.report import canonical_data
from ..orchestration.request import SweepRequest
from ..orchestration.sweep import (
    CacheServingBackend,
    SimulationUnit,
    filter_run_kwargs,
    installed_backend,
    plan_experiment,
    resolve_experiment,
    supported_run_kwargs,
)
from ..sim.runner import AloneRunCache, engine_override
from ..telemetry import logs
from ..telemetry.manifest import write_manifest
from ..telemetry.trace import TraceJournal, read_journal, traces_dir
from .coordinator import (
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_RETRY_SECONDS,
    DEFAULT_STRAGGLER_TIMEOUT,
    DEFAULT_WATCH_QUEUE,
)
from .fairness import DEFAULT_CLEARING_INTERVAL, DEFAULT_SERVICE_QUANTUM, TenantScheduler
from .protocol import (
    PROTOCOL_VERSION,
    SERVICE_FEATURES,
    encode_message,
    read_message,
    result_from_wire,
    unit_to_wire,
)

#: Job lifecycle.  ``planning`` → ``running`` → ``finalizing`` → ``done``
#: on the happy path; ``failed``/``cancelled`` are terminal from any
#: earlier state.
PLANNING = "planning"
RUNNING = "running"
FINALIZING = "finalizing"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: The daemon's own event journal under ``<cache-dir>/traces/``.  It is
#: both the durable trace (``repro trace export --run service``) and the
#: restart log: on construction the service replays its ``job.state``
#: events so the jobs table survives a daemon restart.
SERVICE_JOURNAL = "service.jsonl"


class _Lease:
    """One worker's claim on one point, attributed to the job it served."""

    __slots__ = ("connection_id", "worker", "deadline", "started", "job")

    def __init__(
        self,
        connection_id: int,
        worker: str,
        deadline: float,
        started: float,
        job: Optional[str],
    ) -> None:
        self.connection_id = connection_id
        self.worker = worker
        self.deadline = deadline
        self.started = started
        self.job = job


class _ServicePoint:
    """Queue state of one simulation point, shared by its subscriber jobs."""

    __slots__ = (
        "unit", "figure", "attempts", "done", "failed", "committing",
        "leases", "jobs", "queued", "_wire",
    )

    def __init__(self, unit: SimulationUnit) -> None:
        self.unit = unit
        self.figure = getattr(unit, "figure", None)
        self.attempts = 0
        self.done = False
        self.failed: Optional[str] = None
        self.committing = False
        self.leases: Dict[int, _Lease] = {}
        #: Job ids that need this point.  Commit credits every live
        #: subscriber, which is what makes cross-tenant sharing exact:
        #: the point runs once, every job's ``remaining`` shrinks.
        self.jobs: Set[str] = set()
        #: Leasable right now.  The key may sit in several jobs' queues
        #: (each subscriber lists it); the first pop that finds ``queued``
        #: set wins and clears it, later pops skip the stale entry.
        self.queued = False
        self._wire: Optional[Dict] = None

    def wire(self) -> Optional[Dict]:
        """Serialised unit, computed once, outside the service lock (see
        :meth:`Coordinator._lease` for why)."""
        unit = self.unit
        if unit is None:
            return None
        wire = self._wire
        if wire is None:
            wire = unit_to_wire(unit)
            self._wire = wire
        return wire


class _Job:
    """One submitted sweep and everything needed to answer polls on it."""

    __slots__ = (
        "job_id", "tenant", "request", "state", "error", "queue", "remaining",
        "total", "executed", "reused", "results", "submitted_at", "finished_at",
    )

    def __init__(self, job_id: str, tenant: str, request: SweepRequest) -> None:
        self.job_id = job_id
        self.tenant = tenant
        self.request = request
        self.state = PLANNING
        self.error: Optional[str] = None
        #: Keys awaiting a lease, in planning order (stale entries — for
        #: points another job's lease already took — are skipped on pop).
        self.queue: deque[str] = deque()
        #: Keys not yet committed for this job.
        self.remaining: Set[str] = set()
        self.total = 0
        #: Points simulated under this job's own lease grants.
        self.executed = 0
        #: Points satisfied without this job simulating them: already in
        #: the store at submit, or committed via another job's lease.
        self.reused = 0
        self.results: Optional[Dict[str, Dict]] = None
        self.submitted_at = time.time()
        self.finished_at: Optional[float] = None

    def payload(self, include_results: bool = False) -> Dict:
        """The ``poll``/``jobs`` reply body for this job."""
        finished = self.finished_at
        body = {
            "type": "job",
            "job": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            "priority": self.request.priority,
            "experiments": list(self.request.experiments),
            "tags": list(self.request.tags),
            "points": self.total,
            "pending": len(self.remaining),
            "completed": self.total - len(self.remaining),
            "executed": self.executed,
            "reused": self.reused,
            "submitted_at": self.submitted_at,
            "elapsed_seconds": (finished or time.time()) - self.submitted_at,
        }
        if self.error is not None:
            body["error"] = self.error
        if include_results and self.state == DONE and self.results is not None:
            body["results"] = self.results
        return body


class SweepService:
    """A long-lived daemon multiplexing many sweeps over one worker fleet."""

    def __init__(
        self,
        store,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        straggler_timeout: float = DEFAULT_STRAGGLER_TIMEOUT,
        retry_seconds: float = DEFAULT_RETRY_SECONDS,
        service_quantum: int = DEFAULT_SERVICE_QUANTUM,
        clearing_interval: float = DEFAULT_CLEARING_INTERVAL,
    ) -> None:
        self._store = store
        self._requested_host = host
        self._requested_port = port
        self.lease_timeout = lease_timeout
        self.max_attempts = max_attempts
        self.straggler_timeout = straggler_timeout
        self.retry_seconds = retry_seconds

        self._lock = threading.Lock()
        self._shutdown = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._connections: Dict[int, socket.socket] = {}
        self._connection_seq = 0
        self._peers: Dict[int, Dict] = {}

        self._jobs: Dict[str, _Job] = {}
        self._job_seq = 0
        self._points: Dict[str, _ServicePoint] = {}
        self._scheduler = TenantScheduler(
            service_quantum=service_quantum, clearing_interval=clearing_interval
        )
        #: The daemon's private event bus: ``watch`` subscribers and the
        #: service journal hang off it.  Private (not the process bus) so
        #: co-located services and in-process tests never cross-talk.
        self.events = telemetry.EventBus()
        self._scheduler.on_blacklist = self._on_blacklist
        self._scheduler.on_clear = self._on_cleared

        # Lifetime totals: completed/failed points are *deleted* from
        # ``_points`` (the store answers future submits, and a daemon
        # must not hold every trace it ever planned), so status counts
        # come from counters, not the live dict.
        self._points_registered = 0
        self._points_completed = 0
        self._points_failed = 0

        self._started_monotonic = time.monotonic()
        self._metrics = telemetry.MetricsRegistry()
        self._worker_stats: Dict[str, Dict] = {}
        self._worker_snapshots: Dict[str, Dict] = {}
        self._figures: Dict[str, Dict[str, int]] = {}
        #: Where per-job run manifests land (persistent stores only).
        self._manifest_dir = store.cache_dir if isinstance(store, ResultCache) else None
        self._log = logs.get_logger("service")
        #: Durable event journal (persistent stores only).  Replaying it
        #: before attaching makes the jobs table survive a restart.
        self._journal: Optional[TraceJournal] = None
        if self._manifest_dir is not None:
            journal_path = traces_dir(self._manifest_dir) / SERVICE_JOURNAL
            self._restore_jobs(journal_path)
            self._journal = TraceJournal(journal_path)
            self.events.add_sink(self._journal.write)

    # ------------------------------------------------------------- events

    def _emit_job(self, job: _Job) -> None:
        """One ``job.state`` event per transition, carrying the full poll
        payload — which is what makes the journal a restart log: the last
        ``job.state`` per job id *is* that job's record."""
        self.events.emit(
            "job.state",
            job=job.job_id,
            tenant=job.tenant,
            state=job.state,
            payload=job.payload(),
        )

    def _on_blacklist(self, job_id: str) -> None:
        job = self._jobs.get(job_id)
        self.events.emit(
            "tenant.blacklist", job=job_id, tenant=job.tenant if job else None
        )

    def _on_cleared(self, job_ids: List[str]) -> None:
        self.events.emit("tenant.cleared", jobs=list(job_ids))

    def _restore_jobs(self, journal_path) -> None:
        """Rebuild the jobs table from a previous daemon's journal.

        Terminal jobs come back exactly as they ended (minus the result
        payloads, which live in the store, not the journal).  A job that
        was live when the daemon died lost its points and leases with the
        process, so it is restored as ``failed`` — an honest record, and
        a resubmit replans it from the warm store anyway.
        """
        last_state: Dict[str, Dict] = {}
        for event in read_journal(journal_path):
            if event.get("kind") != "job.state":
                continue
            job_id = event.get("job")
            payload = event.get("payload")
            if isinstance(job_id, str) and isinstance(payload, dict):
                last_state[job_id] = payload
        restored = 0
        for job_id, payload in sorted(last_state.items()):
            try:
                request = SweepRequest(
                    experiments=tuple(payload.get("experiments") or ()),
                    priority=str(payload.get("priority") or "interactive"),
                    tags=tuple(payload.get("tags") or ()),
                )
                job = _Job(job_id, str(payload.get("tenant") or "?"), request)
                job.state = str(payload.get("state") or RUNNING)
                job.error = payload.get("error")
                job.total = int(payload.get("points") or 0)
                job.executed = int(payload.get("executed") or 0)
                job.reused = int(payload.get("reused") or 0)
                job.submitted_at = float(payload.get("submitted_at") or time.time())
                elapsed = float(payload.get("elapsed_seconds") or 0.0)
            except (TypeError, ValueError):
                continue  # a torn or foreign record must not block startup
            if job.state not in TERMINAL_STATES:
                job.state = FAILED
                job.error = "daemon restarted mid-job"
            job.finished_at = job.submitted_at + elapsed
            self._jobs[job_id] = job
            restored += 1
            _, _, digits = job_id.rpartition("-")
            if digits.isdigit():
                # New submissions continue the id sequence instead of
                # colliding with restored history.
                self._job_seq = max(self._job_seq, int(digits))
        if restored:
            self._log.info(
                "restored %d job record(s) from %s", restored, journal_path
            )

    # ------------------------------------------------------------- lifecycle

    def start(self) -> Tuple[str, int]:
        """Bind, start serving, and return the actual ``(host, port)``."""
        listener = socket.create_server(
            (self._requested_host, self._requested_port), backlog=64, reuse_port=False
        )
        listener.settimeout(0.2)
        self._listener = listener
        accept = threading.Thread(target=self._accept_loop, daemon=True, name="service-accept")
        reaper = threading.Thread(target=self._reaper_loop, daemon=True, name="service-reaper")
        self._threads += [accept, reaper]
        accept.start()
        reaper.start()
        self._log.info("sweep service listening on %s:%s", *self.address)
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        if self._listener is None:
            raise RuntimeError("service is not started")
        host, port = self._listener.getsockname()[:2]
        return host, port

    def serve_forever(self, poll_seconds: float = 0.5) -> None:
        """Block until :meth:`stop` (or ``KeyboardInterrupt`` upstream)."""
        while not self._shutdown.wait(poll_seconds):
            pass

    def stop(self) -> None:
        """Stop accepting and serving; idempotent.

        Closing the connections is what shuts the fleet down: a worker
        whose socket drops exits its loop, so no ``done`` broadcast is
        needed.
        """
        self._shutdown.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            open_connections = list(self._connections.values())
        for connection in open_connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        for thread in list(self._threads):
            thread.join(timeout=2.0)
        if self._journal is not None:
            self.events.remove_sink(self._journal.write)
            self._journal.close()

    # ------------------------------------------------------------- serving

    def _accept_loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                connection, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._lock:
                self._connection_seq += 1
                connection_id = self._connection_seq
                self._connections[connection_id] = connection
            self._threads = [thread for thread in self._threads if thread.is_alive()]
            thread = threading.Thread(
                target=self._serve_connection,
                args=(connection, connection_id),
                daemon=True,
                name=f"service-conn-{connection_id}",
            )
            self._threads.append(thread)
            thread.start()

    def _serve_connection(self, connection: socket.socket, connection_id: int) -> None:
        stream = connection.makefile("rb")
        # One send lock per connection: request/reply and a watch sender
        # thread share the socket (see Coordinator._serve_connection).
        send_lock = threading.Lock()
        watch_state: Dict = {}
        try:
            while True:
                try:
                    message = read_message(stream)
                except ValueError:
                    break
                if message is None:
                    break
                kind = message.get("type")
                if kind == "watch":
                    self._start_watch(connection, send_lock, watch_state, message)
                    continue
                if kind == "unwatch":
                    self._stop_watch(watch_state)
                    with send_lock:
                        connection.sendall(encode_message({"type": "unwatched"}))
                    continue
                reply = self._handle(message, connection_id)
                if reply is _GOODBYE:
                    break
                if reply is not None:
                    with send_lock:
                        connection.sendall(encode_message(reply))
        except OSError:
            pass
        finally:
            self._stop_watch(watch_state)
            self._release_connection(connection_id)
            with self._lock:
                self._connections.pop(connection_id, None)
            try:
                stream.close()
                connection.close()
            except OSError:
                pass

    # ------------------------------------------------------------- watch

    def _start_watch(
        self,
        connection: socket.socket,
        send_lock: threading.Lock,
        watch_state: Dict,
        message: Dict,
    ) -> None:
        """Subscribe this connection to the event stream (same contract
        as :meth:`Coordinator._start_watch`: the ``watching`` ack goes out
        before the sender thread starts, so events arrive strictly after
        it, in ``seq`` order)."""
        if watch_state.get("queue") is not None:
            with send_lock:
                connection.sendall(
                    encode_message({"type": "watching", "seq": self.events.seq})
                )
            return
        # No ``from_seq`` field means live-only; an explicit value (0
        # included) replays buffered events with seq > from_seq first.
        raw_from_seq = message.get("from_seq")
        try:
            from_seq = None if raw_from_seq is None else int(raw_from_seq)
        except (TypeError, ValueError):
            from_seq = None
        status = self.status_payload()
        subscriber = self.events.subscribe(maxsize=DEFAULT_WATCH_QUEUE, from_seq=from_seq)
        try:
            with send_lock:
                connection.sendall(
                    encode_message(
                        {"type": "watching", "seq": self.events.seq, "status": status}
                    )
                )
        except OSError:
            self.events.unsubscribe(subscriber)
            raise
        thread = threading.Thread(
            target=self._watch_sender,
            args=(connection, send_lock, subscriber),
            daemon=True,
            name="service-watch-sender",
        )
        watch_state["queue"] = subscriber
        watch_state["thread"] = thread
        thread.start()

    def _watch_sender(
        self, connection: socket.socket, send_lock: threading.Lock, subscriber
    ) -> None:
        while True:
            event = subscriber.get()
            if event is None:  # _stop_watch's sentinel
                return
            try:
                with send_lock:
                    connection.sendall(encode_message({"type": "event", "event": event}))
            except OSError:
                return

    def _stop_watch(self, watch_state: Dict) -> None:
        subscriber = watch_state.pop("queue", None)
        thread = watch_state.pop("thread", None)
        if subscriber is not None:
            self.events.unsubscribe(subscriber)
            subscriber.put(None)
        if thread is not None:
            thread.join(timeout=2.0)

    def _handle(self, message: Dict, connection_id: int):
        kind = message.get("type")
        if kind not in ("hello", "status"):
            self._touch_worker(connection_id)
        if kind == "hello":
            return self._hello(message, connection_id)
        if kind == "submit":
            return self._submit(message, connection_id)
        if kind == "poll":
            return self._poll(message)
        if kind == "cancel":
            return self._cancel(message)
        if kind == "jobs":
            return self._list_jobs()
        if kind == "lease":
            return self._lease(connection_id)
        if kind == "result":
            return self._commit(message, connection_id)
        if kind == "error":
            self._requeue(
                message.get("key", ""),
                connection_id,
                reason=str(message.get("error", "worker error")),
            )
            return {"type": "ack"}
        if kind == "heartbeat":
            self._renew(message.get("key", ""), connection_id)
            return None
        if kind == "metrics":
            snapshot = message.get("snapshot")
            if isinstance(snapshot, dict):
                with self._lock:
                    name = self._peers.get(connection_id, {}).get("worker") or str(
                        message.get("worker") or f"conn-{connection_id}"
                    )
                    self._worker_snapshots[name] = snapshot
            return None
        if kind == "status":
            return self.status_payload()
        if kind == "goodbye":
            return _GOODBYE
        return {"type": "error", "error": f"unknown message type {kind!r}"}

    def _hello(self, message: Dict, connection_id: int) -> Dict:
        if message.get("protocol") != PROTOCOL_VERSION:
            return {
                "type": "done",
                "error": f"protocol mismatch (service speaks {PROTOCOL_VERSION})",
            }
        name = str(message.get("worker") or f"conn-{connection_id}")
        role = str(message.get("role") or "worker")
        with self._lock:
            self._peers[connection_id] = {
                "worker": name, "pid": message.get("pid"), "role": role
            }
            if role == "worker":
                stats = self._worker_stats.setdefault(
                    name, {"pid": message.get("pid"), "completed": 0, "leases": 0}
                )
                stats["pid"] = message.get("pid")
                stats["last_seen"] = time.monotonic()
            points = len(self._points)
        self._log.info("%s %s connected (pid %s)", role, name, message.get("pid"))
        self.events.emit(
            "worker.connect", worker=name, pid=message.get("pid"), role=role
        )
        return {
            "type": "welcome",
            "protocol": PROTOCOL_VERSION,
            "points": points,
            "features": list(SERVICE_FEATURES),
        }

    def _touch_worker(self, connection_id: int) -> None:
        with self._lock:
            name = self._peers.get(connection_id, {}).get("worker")
            if name is not None and name in self._worker_stats:
                self._worker_stats[name]["last_seen"] = time.monotonic()

    # ------------------------------------------------------------- job intake

    def _submit(self, message: Dict, connection_id: int) -> Dict:
        if self._shutdown.is_set():
            return {"type": "error", "error": "service is shutting down"}
        try:
            request = SweepRequest.from_wire(message.get("request") or {})
            for experiment in request.experiments:
                resolve_experiment(experiment)
        except (KeyError, TypeError, ValueError) as exc:
            self._metrics.counter("service.rejected_submissions")
            return {"type": "error", "error": f"invalid request: {exc}"}
        with self._lock:
            tenant = str(
                message.get("tenant")
                or self._peers.get(connection_id, {}).get("worker")
                or f"conn-{connection_id}"
            )
            self._job_seq += 1
            job = _Job(f"job-{self._job_seq:04d}", tenant, request)
            self._jobs[job.job_id] = job
        self._metrics.counter("service.submissions")
        self._emit_job(job)
        self._log.info(
            "job %s submitted by %s: %s (priority %s)",
            job.job_id, tenant, ",".join(request.experiments), request.priority,
        )
        planner = threading.Thread(
            target=self._plan_job, args=(job,), daemon=True,
            name=f"service-plan-{job.job_id}",
        )
        self._threads.append(planner)
        planner.start()
        return job.payload()

    def _plan_job(self, job: _Job) -> None:
        """Decompose one job into points and register them (own thread).

        Planning is trace-generation cost only, but for a ``--full``
        roster that is still seconds — hence off the connection thread,
        so submits return immediately and pollers see ``planning``.
        """
        request = job.request
        try:
            with engine_override(request.engine):
                units: Dict[str, SimulationUnit] = {}
                for label in request.experiments:
                    for unit in plan_experiment(label, label=label, **request.run_kwargs()):
                        units.setdefault(unit.key, unit)
        except Exception as exc:  # a broken experiment module fails its job only
            with self._lock:
                self._fail_job_locked(job, f"planning failed: {type(exc).__name__}: {exc}")
            return
        # Probe the store *outside* the lock (disk reads); re-checked
        # under the lock below, where it matters.
        missing: Dict[str, SimulationUnit] = {}
        reused = 0
        for key, unit in units.items():
            if self._store.get(key) is not None:
                reused += 1
            else:
                missing[key] = unit
        finalize = False
        with self._lock:
            if job.state != PLANNING:  # cancelled while planning
                return
            job.total = len(units)
            job.reused = reused
            for key, unit in missing.items():
                point = self._points.get(key)
                if point is None:
                    # Re-check under the lock: another job's commit may
                    # have landed (and dropped its point) since the probe
                    # above — without this a shared point would be
                    # simulated twice in that window.
                    if self._store.contains(key):
                        job.reused += 1
                        continue
                    point = _ServicePoint(unit)
                    self._points[key] = point
                    self._points_registered += 1
                    point.queued = True
                    label = point.figure or "(unlabeled)"
                    bucket = self._figures.setdefault(label, {"points": 0, "completed": 0})
                    bucket["points"] += 1
                point.jobs.add(job.job_id)
                job.remaining.add(key)
                job.queue.append(key)
            self._metrics.counter("service.points_planned", len(job.remaining))
            if job.remaining:
                job.state = RUNNING
                self._scheduler.add_job(job.job_id, priority=request.priority)
            else:
                # Everything was already in the store (a fully warm
                # resubmit): straight to replay.
                job.state = FINALIZING
                finalize = True
        self._log.info(
            "job %s planned: %d points (%d to simulate, %d reused)",
            job.job_id, job.total, len(job.remaining), job.reused,
        )
        self._emit_job(job)
        if finalize:
            self._spawn_finalize(job)

    # ------------------------------------------------------------- leasing

    def _lease(self, connection_id: int) -> Dict:
        while True:
            now = time.monotonic()
            with self._lock:
                if self._shutdown.is_set():
                    return {"type": "done"}
                job_id, point = self._next_point_locked()
                if point is None:
                    point = self._straggler_candidate(connection_id, now)
                    if point is not None:
                        # Attribute the duplicate lease to any live
                        # subscriber (reporting only); it is *not* a
                        # scheduler service — duplicating a straggler's
                        # tail must not advance anyone's streak.
                        job_id = next(iter(sorted(point.jobs)), None)
                if point is None:
                    return {"type": "wait", "seconds": self.retry_seconds}
                worker = self._peers.get(connection_id, {}).get(
                    "worker", f"conn-{connection_id}"
                )
                point.leases[connection_id] = _Lease(
                    connection_id, worker, deadline=now + self.lease_timeout,
                    started=now, job=job_id,
                )
                if worker in self._worker_stats:
                    self._worker_stats[worker]["leases"] += 1
            self._metrics.counter("service.lease_grants")
            wire = point.wire()  # outside the lock (large payloads)
            if wire is not None and not point.done:
                self.events.emit(
                    "lease.grant",
                    point=wire.get("key"),
                    worker=worker,
                    job=job_id,
                    figure=point.figure,
                )
                reply = {"type": "work", "unit": wire}
                if job_id is not None:
                    reply["job"] = job_id
                return reply
            with self._lock:
                point.leases.pop(connection_id, None)

    def _next_point_locked(self) -> Tuple[Optional[str], Optional[_ServicePoint]]:
        """Fair pick: ask the scheduler for a job, pop its next live key.

        A job whose queue holds only stale entries (shared points another
        job's lease already took) is drained and excluded, then the
        scheduler is asked again — so staleness can never eat a quantum.
        """
        exhausted: Set[str] = set()
        while True:
            backlog = {
                job_id: len(job.queue)
                for job_id, job in self._jobs.items()
                if job.state == RUNNING and job.queue and job_id not in exhausted
            }
            job_id = self._scheduler.select(backlog)
            if job_id is None:
                return None, None
            job = self._jobs[job_id]
            while job.queue:
                key = job.queue.popleft()
                point = self._points.get(key)
                if (
                    point is None or point.done or point.failed is not None
                    or not point.queued
                ):
                    continue
                point.queued = False
                self._scheduler.record_service(job_id)
                return job_id, point
            exhausted.add(job_id)

    def _straggler_candidate(
        self, connection_id: int, now: float
    ) -> Optional[_ServicePoint]:
        oldest: Optional[Tuple[float, _ServicePoint]] = None
        for point in self._points.values():
            if point.done or point.failed is not None or point.committing:
                continue
            if point.queued or not point.leases:
                continue
            if connection_id in point.leases:
                continue
            started = min(lease.started for lease in point.leases.values())
            if now - started < self.straggler_timeout:
                continue
            if oldest is None or started < oldest[0]:
                oldest = (started, point)
        return None if oldest is None else oldest[1]

    # ------------------------------------------------------------- commits

    def _commit(self, message: Dict, connection_id: int) -> Dict:
        key = message.get("key", "")
        try:
            result = result_from_wire(message["result"])
        except (KeyError, TypeError, ValueError) as exc:
            self._requeue(key, connection_id, reason=f"undecodable result: {exc}")
            return {"type": "ack"}
        with self._lock:
            point = self._points.get(key)
            if point is None:
                return {"type": "ack"}
            lease = point.leases.pop(connection_id, None)
            if point.done or point.committing:
                return {"type": "ack"}
            point.committing = True
            lease_job = lease.job if lease is not None else None
        try:
            # Commit outside the lock — a disk write must not serialise
            # every other connection (see Coordinator._commit).
            store_put(self._store, key, result, point.figure)
        except BaseException:
            with self._lock:
                point.committing = False
                point.attempts += 1
                self._settle_or_requeue(point, key, "result store commit failed")
            raise
        finalize: List[_Job] = []
        with self._lock:
            point.committing = False
            point.done = True
            self._points_completed += 1
            bucket = self._figures.get(point.figure or "(unlabeled)")
            if bucket is not None:
                bucket["completed"] += 1
            worker = self._peers.get(connection_id, {}).get("worker")
            if worker in self._worker_stats:
                self._worker_stats[worker]["completed"] += 1
            for job_id in point.jobs:
                job = self._jobs.get(job_id)
                if job is None or job.state != RUNNING or key not in job.remaining:
                    continue
                job.remaining.discard(key)
                if job_id == lease_job:
                    job.executed += 1
                else:
                    job.reused += 1
                if not job.remaining:
                    job.state = FINALIZING
                    self._scheduler.remove_job(job_id)
                    finalize.append(job)
            # The store answers everything from here on; drop the point
            # (and its traces) so a long-lived daemon's memory tracks the
            # *live* backlog, not its history.
            del self._points[key]
        self._metrics.counter("service.results_committed")
        self.events.emit(
            "point.commit",
            point=key,
            worker=worker,
            job=lease_job,
            figure=point.figure,
        )
        for job in finalize:
            self._emit_job(job)
            self._spawn_finalize(job)
        return {"type": "ack"}

    def _requeue(self, key: str, connection_id: int, reason: str) -> None:
        with self._lock:
            point = self._points.get(key)
            if point is None or point.done:
                return
            point.leases.pop(connection_id, None)
            self._record_attempt(point, key, reason)

    def _record_attempt(self, point: _ServicePoint, key: str, reason: str) -> None:
        """Count one failed attempt, then settle or requeue.  Lock held."""
        point.attempts += 1
        self._metrics.counter("service.retries")
        self._log.warning("point %s attempt failed: %s", key[:12], reason)
        self._settle_or_requeue(point, key, reason)
        if point.failed is not None:
            self.events.emit(
                "point.fail",
                point=key,
                figure=point.figure,
                reason=reason,
                attempts=point.attempts,
            )
        elif point.queued:
            self.events.emit(
                "point.requeue",
                point=key,
                figure=point.figure,
                reason=reason,
                attempts=point.attempts,
            )

    def _settle_or_requeue(self, point: _ServicePoint, key: str, reason: str) -> None:
        """Resolve a point after a failed attempt.  Lock held.

        Same invariant as the coordinator's: never settle while another
        live lease or an in-flight commit might still complete the
        point.  Requeueing re-lists the key with *every* live subscriber
        so whichever job the scheduler favours next can carry it.
        """
        if point.done or point.failed is not None:
            return
        if point.leases or point.committing:
            return
        if point.attempts >= self.max_attempts:
            self._fail_point_locked(point, key, reason)
        elif not point.queued:
            point.queued = True
            for job_id in point.jobs:
                job = self._jobs.get(job_id)
                if job is not None and job.state == RUNNING:
                    job.queue.append(key)

    def _fail_point_locked(self, point: _ServicePoint, key: str, reason: str) -> None:
        """A point exhausted its attempts: fail every subscribed job.

        The point is removed rather than kept failed forever — a later
        resubmit replans it from scratch with a fresh attempt budget
        (transient infrastructure failures should not poison a daemon).
        """
        point.failed = reason
        self._points_failed += 1
        bucket = self._figures.get(point.figure or "(unlabeled)")
        if bucket is not None:
            bucket["points"] -= 1
        self._metrics.counter("service.points_failed")
        for job_id in list(point.jobs):
            job = self._jobs.get(job_id)
            if job is not None:
                self._fail_job_locked(job, f"point {key[:12]} failed: {reason}")
        self._points.pop(key, None)

    def _fail_job_locked(self, job: _Job, reason: str) -> None:
        if job.state in TERMINAL_STATES:
            return
        job.state = FAILED
        job.error = reason
        job.finished_at = time.time()
        self._scheduler.remove_job(job.job_id)
        job.queue.clear()
        self._drop_subscriptions_locked(job)
        self._metrics.counter("service.jobs_failed")
        self._log.warning("job %s failed: %s", job.job_id, reason)
        self._emit_job(job)

    def _drop_subscriptions_locked(self, job: _Job) -> None:
        """Unsubscribe a dead job; drop points nobody else needs.

        A point still leased (or mid-commit) is left to finish — its
        result is a store entry future submits will reuse — and the
        commit path drops it.
        """
        for key in list(job.remaining):
            point = self._points.get(key)
            if point is None:
                continue
            point.jobs.discard(job.job_id)
            if not point.jobs and not point.leases and not point.committing:
                bucket = self._figures.get(point.figure or "(unlabeled)")
                if bucket is not None:
                    bucket["points"] -= 1
                self._points.pop(key, None)
        job.remaining.clear()

    def _renew(self, key: str, connection_id: int) -> None:
        now = time.monotonic()
        with self._lock:
            point = self._points.get(key)
            if point is None:
                return
            lease = point.leases.get(connection_id)
            if lease is not None:
                lease.deadline = now + self.lease_timeout

    def _release_connection(self, connection_id: int) -> None:
        with self._lock:
            info = self._peers.pop(connection_id, None)
        if info is not None:
            self._log.info("%s %s disconnected", info.get("role", "peer"), info.get("worker"))
            self.events.emit("worker.disconnect", worker=info.get("worker"))
        with self._lock:
            for key, point in list(self._points.items()):
                if connection_id in point.leases and not point.done:
                    point.leases.pop(connection_id)
                    if not point.leases:
                        self._record_attempt(point, key, "worker connection lost")

    def _reaper_loop(self) -> None:
        interval = min(1.0, max(0.05, self.lease_timeout / 4))
        while not self._shutdown.wait(interval):
            now = time.monotonic()
            with self._lock:
                for key, point in list(self._points.items()):
                    if point.done or point.failed is not None:
                        continue
                    expired = [
                        lease_id
                        for lease_id, lease in point.leases.items()
                        if lease.deadline < now
                    ]
                    for lease_id in expired:
                        lease = point.leases.pop(lease_id)
                        self._metrics.counter("service.lease_expired")
                        self.events.emit(
                            "lease.expire",
                            point=key,
                            worker=lease.worker,
                            job=lease.job,
                            figure=point.figure,
                        )
                        self._record_attempt(point, key, "lease expired (missed heartbeats)")

    # ------------------------------------------------------------- job queries

    def _poll(self, message: Dict) -> Dict:
        job_id = str(message.get("job", ""))
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return {"type": "error", "error": f"unknown job {job_id!r}"}
            return job.payload(include_results=bool(message.get("results")))

    def _cancel(self, message: Dict) -> Dict:
        job_id = str(message.get("job", ""))
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return {"type": "error", "error": f"unknown job {job_id!r}"}
            if job.state not in TERMINAL_STATES:
                job.state = CANCELLED
                job.error = "cancelled by client"
                job.finished_at = time.time()
                self._scheduler.remove_job(job_id)
                job.queue.clear()
                self._drop_subscriptions_locked(job)
                self._metrics.counter("service.jobs_cancelled")
                self._log.info("job %s cancelled", job_id)
                self._emit_job(job)
            return job.payload()

    def _list_jobs(self) -> Dict:
        with self._lock:
            return {
                "type": "jobs",
                "jobs": {job_id: job.payload() for job_id, job in self._jobs.items()},
            }

    # ------------------------------------------------------------- finalize

    def _spawn_finalize(self, job: _Job) -> None:
        thread = threading.Thread(
            target=self._finalize_job, args=(job,), daemon=True,
            name=f"service-final-{job.job_id}",
        )
        self._threads.append(thread)
        thread.start()

    def _finalize_job(self, job: _Job) -> None:
        """Replay one finished job's figures from the store (own thread).

        The replay is the serial code path over a fully warmed store —
        the same construction the one-shot pipeline uses — so the data
        dicts are byte-identical to a serial run.  The backend and the
        engine override are thread-local, so several jobs (even on
        different engines) finalize concurrently without interference.
        """
        request = job.request
        try:
            data: Dict[str, Dict] = {}
            with engine_override(request.engine):
                backend = CacheServingBackend(self._store)
                with installed_backend(backend):
                    for label in request.experiments:
                        backend.figure = label
                        module = resolve_experiment(label)
                        call_kwargs = filter_run_kwargs(module, request.run_kwargs())
                        if "cache" in supported_run_kwargs(module):
                            call_kwargs["cache"] = AloneRunCache()
                        data[label] = module.run(**call_kwargs)
            # Canonicalise now so a poll's wire round-trip cannot change
            # the bytes a client exports (see report.canonical_data).
            results = canonical_data(data)
        except Exception as exc:
            with self._lock:
                self._fail_job_locked(job, f"replay failed: {type(exc).__name__}: {exc}")
            return
        with self._lock:
            if job.state in TERMINAL_STATES:  # cancelled during replay
                return
            job.results = results
            job.state = DONE
            job.finished_at = time.time()
        self._metrics.counter("service.jobs_completed")
        self._emit_job(job)
        self._log.info(
            "job %s done: %d points (%d executed, %d reused) in %.1fs",
            job.job_id, job.total, job.executed, job.reused,
            job.finished_at - job.submitted_at,
        )
        self._write_job_manifest(job)

    def _write_job_manifest(self, job: _Job) -> None:
        """One run manifest per completed job, best-effort."""
        if self._manifest_dir is None:
            return
        request = job.request
        kwargs = dict(request.run_kwargs())
        kwargs.update(
            {
                "job_id": job.job_id,
                "tenant": job.tenant,
                "priority": request.priority,
                "tags": list(request.tags),
            }
        )
        try:
            write_manifest(
                self._manifest_dir,
                experiments=request.experiments,
                started_at=job.submitted_at,
                finished_at=job.finished_at,
                kwargs=kwargs,
                executor="service",
                engine=request.engine,
                stats={
                    "planned": job.total,
                    "executed": job.executed,
                    "reused": job.reused,
                    "elapsed": (job.finished_at or time.time()) - job.submitted_at,
                },
                cache=self._store.stats() if hasattr(self._store, "stats") else None,
                metrics=self._metrics.snapshot(),
            )
        except OSError:
            self._log.warning("job %s: manifest write failed", job.job_id)

    # ------------------------------------------------------------- status

    def status_payload(self) -> Dict:
        """The live ``status`` reply, coordinator-shaped plus a jobs table
        and the fairness scheduler's state."""
        now = time.monotonic()
        elapsed = max(1e-9, now - self._started_monotonic)
        with self._lock:
            active_leases = sum(
                len(point.leases) for point in self._points.values() if not point.done
            )
            pending = sum(1 for point in self._points.values() if point.queued)
            rate = self._points_completed / elapsed
            figures = {}
            for label, bucket in sorted(self._figures.items()):
                remaining = bucket["points"] - bucket["completed"]
                figures[label] = {
                    "points": bucket["points"],
                    "completed": bucket["completed"],
                    "eta_seconds": (remaining / rate) if rate > 0 and remaining else (
                        None if remaining else 0.0
                    ),
                }
            workers = {}
            for name, stats in self._worker_stats.items():
                last_seen = stats.get("last_seen")
                workers[name] = {
                    "pid": stats.get("pid"),
                    "leases": stats.get("leases", 0),
                    "completed": stats.get("completed", 0),
                    "last_seen_seconds": None if last_seen is None else now - last_seen,
                }
            jobs = {job_id: job.payload() for job_id, job in self._jobs.items()}
            scheduler = self._scheduler.snapshot()
            worker_snapshots = list(self._worker_snapshots.values())
            completed = self._points_completed
            failed = self._points_failed
            points = self._points_registered
        merged = telemetry.merge_snapshots(self._metrics.snapshot(), *worker_snapshots)
        return {
            "type": "status",
            "protocol": PROTOCOL_VERSION,
            "points": points,
            "pending": pending,
            "completed": completed,
            "failed": failed,
            "leases": active_leases,
            "workers": workers,
            "elapsed_seconds": elapsed,
            "points_per_second": rate,
            "cache": {
                "hits": getattr(self._store, "hits", 0),
                "misses": getattr(self._store, "misses", 0),
            },
            "figures": figures,
            "metrics": merged,
            "jobs": jobs,
            "scheduler": scheduler,
        }


#: Sentinel handler return: close the connection without replying.
_GOODBYE = object()
