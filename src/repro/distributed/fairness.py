"""BLISS-inspired fair scheduling across tenants of the sweep service.

The source paper's scheduling problem recurs one level up: in DRAM,
BLISS keeps a request-streak-heavy application from starving the others
by counting *consecutive services* per application, blacklisting an
application that exceeds the threshold, and clearing all blacklists
periodically so the heavy application still makes progress.  Here the
"applications" are submitted sweep jobs and the "requests" are
simulation-point leases: a 43-app ``--full`` batch sweep holds thousands
of points, and without fairness it would monopolise the worker fleet for
the whole run while a two-figure interactive request waits behind it.

:class:`TenantScheduler` transplants the exact BLISS mechanism:

* a *consecutive-service counter* per job, incremented on every lease
  granted to the same job and reset when a different job is served;
* a *blacklist*: a job whose streak reaches the service quantum is
  deprioritised (never blocked — if only blacklisted jobs have work,
  one of them is still served, exactly like BLISS under a single-app
  workload);
* *periodic clearing*: every ``clearing_interval`` seconds all
  blacklists and streaks are wiped, bounding how long any job can be
  deprioritised and guaranteeing an interactive job's points are
  interleaved within one interval of submission.

Priorities layer on top: among equally-(non-)blacklisted jobs,
``interactive`` beats ``batch``, and ties fall to the job served
longest ago (round-robin), then submission order.  The scheduler is a
pure policy object — no locks, no threads; the service calls it under
its own lock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from .. import telemetry
from ..orchestration.request import PRIORITIES

#: A job is blacklisted after this many consecutive leases (BLISS's
#: ``Blacklisting Threshold``; the paper uses 4 consecutive requests).
DEFAULT_SERVICE_QUANTUM = 4

#: Seconds between blacklist clearings (BLISS clears every 10 000
#: cycles; wall-clock seconds are the service's natural time base).
DEFAULT_CLEARING_INTERVAL = 5.0


@dataclass
class _Tenant:
    """Per-job scheduling state."""

    priority: str
    arrival_seq: int
    last_served_seq: int = 0
    streak: int = 0
    blacklisted: bool = False
    grants: int = 0
    blacklist_events: int = 0

    def snapshot(self) -> Dict:
        return {
            "priority": self.priority,
            "blacklisted": self.blacklisted,
            "streak": self.streak,
            "grants": self.grants,
            "blacklist_events": self.blacklist_events,
        }


@dataclass
class TenantScheduler:
    """BLISS-style fair lease scheduling across concurrent jobs.

    ``clock`` is injectable so fairness tests can drive clearing
    deterministically instead of sleeping.
    """

    service_quantum: int = DEFAULT_SERVICE_QUANTUM
    clearing_interval: float = DEFAULT_CLEARING_INTERVAL
    clock: Callable[[], float] = time.monotonic
    #: Observer hooks (both optional, called under the owner's lock):
    #: ``on_blacklist(job_id)`` fires when a streak crosses the quantum,
    #: ``on_clear(job_ids)`` when a clearing interval wipes the listed
    #: blacklists.  The service uses them to emit trace events.
    on_blacklist: Optional[Callable[[str], None]] = None
    on_clear: Optional[Callable[[list], None]] = None
    _tenants: Dict[str, _Tenant] = field(default_factory=dict)
    _arrivals: int = 0
    _serves: int = 0
    _last_clear: Optional[float] = None
    clear_events: int = 0

    def __post_init__(self) -> None:
        if self.service_quantum < 1:
            raise ValueError(f"service quantum must be >= 1, got {self.service_quantum}")
        if self.clearing_interval <= 0:
            raise ValueError(
                f"clearing interval must be positive, got {self.clearing_interval}"
            )

    # ----------------------------------------------------------- membership

    def add_job(self, job_id: str, priority: str = "interactive") -> None:
        if priority not in PRIORITIES:
            raise ValueError(f"priority must be one of {PRIORITIES}, got {priority!r}")
        if job_id in self._tenants:
            return
        self._arrivals += 1
        self._tenants[job_id] = _Tenant(priority=priority, arrival_seq=self._arrivals)

    def remove_job(self, job_id: str) -> None:
        self._tenants.pop(job_id, None)

    # ----------------------------------------------------------- scheduling

    def maybe_clear(self) -> bool:
        """Clear every blacklist if a clearing interval has elapsed.

        The first call only arms the timer (matching BLISS, whose first
        clearing happens one full interval after reset).
        """
        now = self.clock()
        if self._last_clear is None:
            self._last_clear = now
            return False
        if now - self._last_clear < self.clearing_interval:
            return False
        self._last_clear = now
        self.clear_events += 1
        telemetry.counter("scheduler.clearings")
        cleared = [
            job_id for job_id, tenant in self._tenants.items() if tenant.blacklisted
        ]
        for tenant in self._tenants.values():
            tenant.blacklisted = False
            tenant.streak = 0
        if cleared and self.on_clear is not None:
            self.on_clear(cleared)
        return True

    def select(self, pending: Dict[str, int]) -> Optional[str]:
        """Pick the job to lease the next point from.

        ``pending`` maps job id → number of leasable points; jobs with
        nothing pending are skipped.  Selection order: non-blacklisted
        before blacklisted, then interactive before batch, then the job
        served longest ago, then submission order.  A blacklisted job
        with the only pending work is still selected — blacklisting
        deprioritises, it never blocks.
        """
        self.maybe_clear()
        best_id: Optional[str] = None
        best_rank = None
        for job_id, backlog in pending.items():
            if backlog <= 0:
                continue
            tenant = self._tenants.get(job_id)
            if tenant is None:
                continue
            rank = (
                1 if tenant.blacklisted else 0,
                PRIORITIES.index(tenant.priority),
                tenant.last_served_seq,
                tenant.arrival_seq,
            )
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_id = job_id
        return best_id

    def record_service(self, job_id: str) -> None:
        """Account one granted lease to ``job_id`` (BLISS's streak update)."""
        tenant = self._tenants.get(job_id)
        if tenant is None:
            return
        self._serves += 1
        tenant.grants += 1
        tenant.last_served_seq = self._serves
        for other_id, other in self._tenants.items():
            if other_id != job_id:
                other.streak = 0
        tenant.streak += 1
        if not tenant.blacklisted and tenant.streak >= self.service_quantum:
            tenant.blacklisted = True
            tenant.blacklist_events += 1
            telemetry.counter("scheduler.blacklistings")
            if self.on_blacklist is not None:
                self.on_blacklist(job_id)

    # ----------------------------------------------------------- reporting

    def snapshot(self) -> Dict:
        """JSON-safe scheduler state for status payloads and tests."""
        return {
            "service_quantum": self.service_quantum,
            "clearing_interval": self.clearing_interval,
            "clear_events": self.clear_events,
            "jobs": {job_id: tenant.snapshot() for job_id, tenant in self._tenants.items()},
        }
