"""Wire protocol of the coordinator/worker subsystem.

Messages are newline-delimited JSON objects (UTF-8) over a plain TCP
stream — trivially debuggable with ``nc`` and dependency-free.  Every
message carries a ``type``:

worker → coordinator
    ``hello``      introduce the worker (name, pid, protocol version)
    ``lease``      ask for one simulation point
    ``result``     deliver a finished point (coordinator replies ``ack``)
    ``error``      report a point that raised (coordinator replies ``ack``)
    ``heartbeat``  renew the lease on the point being simulated (no reply)
    ``metrics``    periodic telemetry snapshot (no reply; only sent when
                   the welcome advertised the ``"metrics"`` feature)
    ``checkpoint`` mid-simulation snapshot of the leased point (no
                   reply; only sent when the welcome advertised the
                   ``"checkpoint"`` feature).  The coordinator keeps the
                   latest one per point and attaches it to any re-lease,
                   so a killed worker loses at most one checkpoint
                   interval of progress.
    ``goodbye``    clean disconnect (no reply)

coordinator → worker
    ``welcome``    accepts the hello (``features`` lists optional message
                   kinds this coordinator understands)
    ``work``       one leased point: ``key`` plus the serialised unit,
                   plus an optional ``checkpoint`` (cycle + base64
                   snapshot) to resume from instead of restarting
    ``wait``       nothing leasable right now; retry after ``seconds``
    ``done``       the run is complete (or failed); the worker should exit
    ``ack``        result/error committed

observer → coordinator
    ``status``     request one live status payload (the coordinator
                   replies with ``type: "status"``; used by
                   ``repro status`` and the telemetry smoke tests)
    ``watch``      subscribe to the event stream (only when the welcome
                   advertised ``"watch"``).  The peer replies
                   ``type: "watching"`` (carrying its current event
                   ``seq`` and a status snapshot to seed the view) and
                   then pushes one ``type: "event"`` frame per state
                   transition — point started/committed/requeued, lease
                   churn, blacklist transitions, job state changes —
                   until the connection closes or ``unwatch`` is sent.
                   An optional ``from_seq`` replays buffered events
                   after that sequence number first.
    ``unwatch``    end the subscription (reply ``type: "unwatched"``);
                   the connection stays usable for other requests.

client → service (only when the welcome advertised ``"jobs"``)
    ``submit``     submit one :class:`~repro.orchestration.request.SweepRequest`
                   (the service replies ``type: "job"`` with the job id)
    ``poll``       ask for one job's state/progress (reply ``type: "job"``;
                   ``results: true`` attaches the data dicts when done)
    ``cancel``     cancel a job (reply ``type: "job"``)
    ``jobs``       list every job the service knows (reply ``type: "jobs"``)

Feature negotiation keeps the protocol version-tolerant without a
version bump: optional message kinds (``metrics``, ``status``, the
``jobs`` submit/poll family) are advertised in the welcome's
``features`` list, old workers simply never send them, and new workers
talking to an old coordinator (no ``features`` field) fall back to the
original message set.

Payload serialisation round-trips the exact objects the orchestrator
works with: a :class:`~repro.orchestration.sweep.SimulationUnit` is its
key plus full trace content and every configuration field (nested
dataclasses included), and results reuse the cache's canonical
JSON codec — the same one the content-addressed store writes — so a
result streamed over the wire is bit-identical to one computed locally.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from ..controller.config import ControllerConfig
from ..core.config import DRStrangeConfig
from ..cpu.core import CoreConfig
from ..cpu.trace import Trace, TraceEntry
from ..dram.timing import DRAMOrganization, DRAMTiming
from ..orchestration.cache import result_from_dict, result_to_dict
from ..orchestration.sweep import SimulationUnit
from ..sim.config import SimulationConfig
from ..sim.results import SimulationResult

#: Bumped on any incompatible message or payload change; the coordinator
#: rejects workers speaking a different version during the hello.
PROTOCOL_VERSION = 1

#: Optional message kinds this build's coordinator understands,
#: advertised in every welcome (see the module docstring on feature
#: negotiation).  ``watch`` covers the streaming subscribe/event/unwatch
#: family; peers that never saw it advertised fall back to one-shot
#: ``status`` polling.
FEATURES = ("metrics", "status", "watch", "checkpoint")

#: What the long-lived sweep *service* additionally understands: the
#: ``jobs`` feature covers the submit/poll/cancel/jobs message family.
#: A :class:`~repro.distributed.client.SweepClient` refuses peers whose
#: welcome lacks it (a plain one-shot coordinator, for instance).
SERVICE_FEATURES = FEATURES + ("jobs",)

#: Hard cap on one serialised message.  Sized for the largest realistic
#: ``work`` payload (every entry of every trace of a full-roster
#: multi-core point is a few tens of MB); a line longer than this
#: indicates a corrupt or hostile peer, not a real simulation point.
#: :func:`read_message` enforces the cap *while reading*, so an
#: oversized line never gets buffered whole.
MAX_MESSAGE_BYTES = 256 * 1024 * 1024


def encode_message(payload: Dict) -> bytes:
    """One wire frame: compact JSON plus the terminating newline."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Dict:
    """Parse one wire frame (raises ``ValueError`` on garbage)."""
    if len(line) > MAX_MESSAGE_BYTES:
        raise ValueError(f"message of {len(line)} bytes exceeds protocol maximum")
    payload = json.loads(line.decode("utf-8"))
    if not isinstance(payload, dict) or "type" not in payload:
        raise ValueError("protocol messages must be JSON objects with a 'type'")
    return payload


def read_message(stream) -> Optional[Dict]:
    """Read one frame from a buffered binary stream.

    Returns ``None`` on a clean EOF.  Raises ``ValueError`` on an
    oversized or truncated line — the size limit is applied to the
    ``readline`` call itself, so at most ``MAX_MESSAGE_BYTES`` of a
    runaway line are ever held in memory.
    """
    line = stream.readline(MAX_MESSAGE_BYTES + 1)
    if not line:
        return None
    if not line.endswith(b"\n"):
        if len(line) > MAX_MESSAGE_BYTES:
            raise ValueError(f"message exceeds protocol maximum of {MAX_MESSAGE_BYTES} bytes")
        raise ValueError("connection closed mid-message")
    return decode_message(line)


# ----------------------------------------------------------------- traces


def trace_to_wire(trace: Trace) -> Dict:
    """Full trace content: name, metadata and every entry."""
    return {
        "name": trace.name,
        "metadata": trace.metadata,
        "entries": [
            [entry.bubbles, entry.address, entry.write_address, entry.rng_bits]
            for entry in trace.entries
        ],
    }


def trace_from_wire(payload: Dict) -> Trace:
    entries = [
        TraceEntry(bubbles=bubbles, address=address, write_address=write_address, rng_bits=rng_bits)
        for bubbles, address, write_address, rng_bits in payload["entries"]
    ]
    return Trace(entries, name=payload["name"], metadata=payload["metadata"])


# ----------------------------------------------------------------- configs


def config_to_wire(config: SimulationConfig) -> Dict:
    """Every configuration field, nested dataclasses flattened to dicts."""
    import dataclasses

    return dataclasses.asdict(config)


def config_from_wire(payload: Dict) -> SimulationConfig:
    fields = dict(payload)
    return SimulationConfig(
        drstrange=DRStrangeConfig(**fields.pop("drstrange")),
        controller=ControllerConfig(**fields.pop("controller")),
        core=CoreConfig(**fields.pop("core")),
        timing=DRAMTiming(**fields.pop("timing")),
        organization=DRAMOrganization(**fields.pop("organization")),
        **fields,
    )


# ----------------------------------------------------------------- units & results


def unit_to_wire(unit: SimulationUnit) -> Dict:
    payload = {
        "key": unit.key,
        "traces": [trace_to_wire(trace) for trace in unit.traces],
        "config": config_to_wire(unit.config),
    }
    if unit.figure is not None:
        payload["figure"] = unit.figure
    return payload


def unit_from_wire(payload: Dict) -> SimulationUnit:
    return SimulationUnit(
        key=payload["key"],
        traces=[trace_from_wire(trace) for trace in payload["traces"]],
        config=config_from_wire(payload["config"]),
        figure=payload.get("figure"),
    )


def result_to_wire(result: SimulationResult) -> Dict:
    return result_to_dict(result)


def result_from_wire(payload: Dict) -> SimulationResult:
    return result_from_dict(payload)


def parse_address(address: str) -> tuple[str, int]:
    """Split a ``HOST:PORT`` string (IPv4/hostname) into its parts."""
    host, separator, port = address.rpartition(":")
    if not separator or not host:
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return host, int(port)


def hello_message(worker: str, pid: Optional[int] = None, role: Optional[str] = None) -> Dict:
    """The introduction frame.  ``role`` distinguishes submit/poll
    clients from workers on a service (old peers omit it and default to
    workers, which is what they are)."""
    message = {"type": "hello", "worker": worker, "pid": pid, "protocol": PROTOCOL_VERSION}
    if role is not None:
        message["role"] = role
    return message


def metrics_message(worker: str, snapshot: Dict) -> Dict:
    """A worker's periodic telemetry snapshot (fire-and-forget)."""
    return {"type": "metrics", "worker": worker, "snapshot": snapshot}


def checkpoint_message(worker: str, key: str, cycle: int, data: bytes) -> Dict:
    """A mid-simulation snapshot of the leased point (fire-and-forget).

    The snapshot bytes (:func:`repro.sim.checkpoint.snapshot`) ride the
    JSON-lines framing base64-encoded; only sent when the welcome
    advertised the ``"checkpoint"`` feature.
    """
    import base64

    return {
        "type": "checkpoint",
        "worker": worker,
        "key": key,
        "cycle": cycle,
        "data": base64.b64encode(data).decode("ascii"),
    }


def checkpoint_from_wire(payload: Optional[Dict]) -> Optional[tuple[int, bytes]]:
    """Decode the ``checkpoint`` field of a ``work`` (or the body of a
    ``checkpoint`` message) into ``(cycle, snapshot_bytes)``; ``None``
    or a malformed payload decodes to ``None`` (fresh start)."""
    import base64
    import binascii

    if not isinstance(payload, dict):
        return None
    try:
        cycle = int(payload["cycle"])
        data = base64.b64decode(payload["data"], validate=True)
    except (KeyError, TypeError, ValueError, binascii.Error):
        return None
    return cycle, data


def peer_features(welcome: Dict) -> frozenset:
    """The optional message kinds a welcome advertises.

    Pre-telemetry coordinators send no ``features`` field at all; the
    empty set they map to is exactly the original message set, so new
    workers degrade cleanly.
    """
    features = welcome.get("features")
    if not isinstance(features, (list, tuple)):
        return frozenset()
    return frozenset(feature for feature in features if isinstance(feature, str))
