"""Work-queue coordinator: leases simulation points to remote workers.

The coordinator owns the full list of pending
:class:`~repro.orchestration.sweep.SimulationUnit`s and serves them over
the JSON-lines TCP protocol (:mod:`repro.distributed.protocol`).  Each
accepted connection gets its own thread; shared queue state sits behind
one lock.  Completed results are committed straight into the result
store (the content-addressed :class:`~repro.orchestration.cache.ResultCache`
or an in-memory equivalent), which is what keeps a distributed run
bit-identical to a serial one: the replay phase reads the same store
either way.

Fault tolerance:

* **Leases expire.**  A leased point must be renewed by heartbeats;
  when ``lease_timeout`` passes without one (worker wedged, network
  partition) the lease is revoked and the point goes back to the queue.
* **Dead connections requeue immediately.**  A worker that is killed
  (or whose machine reboots) drops its TCP connection; every point it
  held is requeued without waiting for the lease to time out.
* **Retries are bounded.**  Each revocation or reported error counts an
  attempt; a point that fails ``max_attempts`` times is marked failed
  and the run finishes with an error instead of looping forever.
* **Checkpoints survive their workers.**  Workers running with a
  checkpoint interval stream periodic snapshots of the leased point
  (``checkpoint`` messages); the coordinator keeps the newest one per
  point and attaches it to any re-lease, so a SIGKILLed worker costs at
  most one checkpoint interval of simulation — the replacement resumes
  bit-identically instead of restarting.
* **Stragglers are re-issued.**  Once the queue is empty, an idle
  worker asking for work is handed a *duplicate* lease on the
  longest-running point older than ``straggler_timeout``.  Simulations
  are deterministic and the store is content-addressed, so whichever
  copy finishes first wins and the loser's commit is a harmless
  overwrite with identical bytes.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from .. import telemetry
from ..orchestration.executors import store_put
from ..orchestration.sweep import SimulationUnit
from ..telemetry import logs
from .protocol import (
    FEATURES,
    PROTOCOL_VERSION,
    encode_message,
    read_message,
    result_from_wire,
    unit_to_wire,
)

#: Seconds a lease survives without a heartbeat before it is revoked.
DEFAULT_LEASE_TIMEOUT = 15.0
#: How many times one point may fail (revocation or error) before the
#: whole run is declared failed.
DEFAULT_MAX_ATTEMPTS = 3
#: Lease age after which an idle worker may duplicate a tail point.
DEFAULT_STRAGGLER_TIMEOUT = 60.0
#: Sleep the coordinator suggests to workers when nothing is leasable.
DEFAULT_RETRY_SECONDS = 0.5
#: Per-watcher event queue depth.  A subscriber that falls this far
#: behind starts losing events (delivery is best-effort by design — a
#: wedged observer must never apply backpressure to the fleet).
DEFAULT_WATCH_QUEUE = 4096


class _Lease:
    """One worker's claim on one point."""

    __slots__ = ("connection_id", "worker", "deadline", "started")

    def __init__(self, connection_id: int, worker: str, deadline: float, started: float) -> None:
        self.connection_id = connection_id
        self.worker = worker
        self.deadline = deadline
        self.started = started


class _Point:
    """Queue state of one simulation point."""

    __slots__ = (
        "unit", "figure", "attempts", "done", "failed", "committing", "leases", "_wire",
        "checkpoint",
    )

    def __init__(self, unit: SimulationUnit) -> None:
        self.unit = unit
        # Figure attribution outlives the unit payload (released on
        # completion), so status reporting keeps working to the end.
        self.figure = getattr(unit, "figure", None)
        self.attempts = 0
        self.done = False
        self.failed: Optional[str] = None
        #: A result for this point is being written to the store right now.
        self.committing = False
        self.leases: Dict[int, _Lease] = {}
        self._wire: Optional[Dict] = None
        #: Latest mid-simulation snapshot a worker streamed for this
        #: point, kept in wire form (``{"cycle": int, "data": base64}``)
        #: and attached to any re-lease so the next worker resumes
        #: instead of restarting.  Dropped on completion.
        self.checkpoint: Optional[Dict] = None

    def wire(self) -> Optional[Dict]:
        """Serialised unit, computed once and reused for duplicate leases.

        ``None`` once the payload has been released (point completed).
        Called *outside* the coordinator lock: serialising a large unit
        must not stall the other connection threads.  The unit is read
        into a local exactly once so a concurrent :meth:`release_payload`
        can never null it between the check and the use.
        """
        unit = self.unit
        if unit is None:
            return None
        wire = self._wire
        if wire is None:
            wire = unit_to_wire(unit)
            self._wire = wire
        return wire

    def release_payload(self) -> None:
        """Drop the unit, its wire form and any checkpoint once the point
        can never be leased again, so a long sweep does not hold every
        trace twice (checkpoints are full kernel snapshots — larger)."""
        self.unit = None
        self._wire = None
        self.checkpoint = None


class Coordinator:
    """Serves a fixed set of simulation points to workers over TCP."""

    def __init__(
        self,
        units: Iterable[SimulationUnit],
        store,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        straggler_timeout: float = DEFAULT_STRAGGLER_TIMEOUT,
        retry_seconds: float = DEFAULT_RETRY_SECONDS,
        events: Optional[telemetry.EventBus] = None,
    ) -> None:
        self._points: Dict[str, _Point] = {}
        self._pending: deque[str] = deque()
        for unit in units:
            if unit.key not in self._points:
                self._points[unit.key] = _Point(unit)
                self._pending.append(unit.key)
        self._store = store
        self._requested_host = host
        self._requested_port = port
        self.lease_timeout = lease_timeout
        self.max_attempts = max_attempts
        self.straggler_timeout = straggler_timeout
        self.retry_seconds = retry_seconds

        #: The causal event stream: lease churn, commits, requeues,
        #: worker connects — everything the streaming ``watch`` protocol
        #: pushes and trace journals record.  Callers (the distributed
        #: executor) pass the process bus so a run's journal sees fleet
        #: events; a private bus keeps co-located instances isolated.
        self.events = events if events is not None else telemetry.EventBus()
        self._lock = threading.Lock()
        self._finished = threading.Event()
        self._shutdown = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._connections: Dict[int, socket.socket] = {}
        self._connection_seq = 0
        self._workers: Dict[int, Dict] = {}
        self.results_committed = 0
        #: Resume accounting, keyed by point: which cycle each committed
        #: result resumed from and how many cycles the committing worker
        #: actually simulated.  Populated from the result message's
        #: optional ``resumed_from``/``simulated_cycles`` fields; the
        #: distributed tests use it to prove a re-leased point continued
        #: from its checkpoint rather than restarting.
        self.resume_log: Dict[str, Dict] = {}

        # --- telemetry (observe-only; nothing here feeds back into
        # leasing decisions or the committed results) -----------------
        self._started_monotonic = time.monotonic()
        #: Coordinator-side counters (lease churn, commits, retries),
        #: kept in a private registry so fleet aggregation is explicit.
        self._metrics = telemetry.MetricsRegistry()
        #: Per-worker liveness/progress, keyed by worker *name* so it
        #: survives reconnects of flaky workers.
        self._worker_stats: Dict[str, Dict] = {}
        #: Latest telemetry snapshot each worker reported (snapshots are
        #: cumulative, so only the newest per worker is retained).
        self._worker_snapshots: Dict[str, Dict] = {}
        #: Per-figure totals for progress/ETA reporting.
        self._figures: Dict[str, Dict[str, int]] = {}
        for point in self._points.values():
            label = point.figure or "(unlabeled)"
            bucket = self._figures.setdefault(label, {"points": 0, "completed": 0})
            bucket["points"] += 1
        self._log = logs.get_logger("coordinator")

        if not self._points:
            self._finished.set()

    # ------------------------------------------------------------- lifecycle

    def start(self) -> Tuple[str, int]:
        """Bind, start serving, and return the actual ``(host, port)``."""
        listener = socket.create_server(
            (self._requested_host, self._requested_port), backlog=64, reuse_port=False
        )
        listener.settimeout(0.2)
        self._listener = listener
        accept_thread = threading.Thread(target=self._accept_loop, daemon=True, name="coord-accept")
        reaper_thread = threading.Thread(target=self._reaper_loop, daemon=True, name="coord-reaper")
        self._threads += [accept_thread, reaper_thread]
        accept_thread.start()
        reaper_thread.start()
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        if self._listener is None:
            raise RuntimeError("coordinator is not started")
        host, port = self._listener.getsockname()[:2]
        return host, port

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every point is done or failed (or ``timeout`` passes)."""
        return self._finished.wait(timeout)

    def stop(self) -> None:
        """Stop accepting and serving; idempotent."""
        self._shutdown.set()
        self._finished.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            open_connections = list(self._connections.values())
        for connection in open_connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        for thread in list(self._threads):
            thread.join(timeout=2.0)

    # ------------------------------------------------------------- inspection

    @property
    def failed_keys(self) -> Dict[str, str]:
        """Keys that exhausted their retries, mapped to the last reason."""
        with self._lock:
            return {
                key: point.failed for key, point in self._points.items() if point.failed is not None
            }

    def snapshot(self) -> Dict:
        """Thread-safe view of queue state (for tests, logging, CLIs)."""
        with self._lock:
            leases = [
                {"key": key, "worker": lease.worker, "started": lease.started}
                for key, point in self._points.items()
                for lease in point.leases.values()
                if not point.done
            ]
            return {
                "points": len(self._points),
                "pending": len(self._pending),
                "completed": sum(1 for point in self._points.values() if point.done),
                "failed": sum(1 for point in self._points.values() if point.failed is not None),
                "leases": leases,
                "workers": [dict(info) for info in self._workers.values()],
            }

    def status_payload(self) -> Dict:
        """The live ``status`` reply: fleet progress, per-worker liveness,
        per-figure ETA, cache accounting, merged telemetry.

        ETAs are naive linear extrapolations from the whole-run commit
        rate — honest enough for a progress surface, deliberately not a
        scheduling input.
        """
        now = time.monotonic()
        elapsed = max(1e-9, now - self._started_monotonic)
        with self._lock:
            completed = sum(1 for point in self._points.values() if point.done)
            failed = sum(1 for point in self._points.values() if point.failed is not None)
            active_leases = sum(
                len(point.leases) for point in self._points.values() if not point.done
            )
            pending = len(self._pending)
            points = len(self._points)
            rate = completed / elapsed
            figures = {}
            for label, bucket in sorted(self._figures.items()):
                remaining = bucket["points"] - bucket["completed"]
                figures[label] = {
                    "points": bucket["points"],
                    "completed": bucket["completed"],
                    "eta_seconds": (remaining / rate) if rate > 0 and remaining else (
                        None if remaining else 0.0
                    ),
                }
            workers = {}
            for name, stats in self._worker_stats.items():
                last_seen = stats.get("last_seen")
                workers[name] = {
                    "pid": stats.get("pid"),
                    "leases": stats.get("leases", 0),
                    "completed": stats.get("completed", 0),
                    "last_seen_seconds": None if last_seen is None else now - last_seen,
                }
            worker_snapshots = list(self._worker_snapshots.values())
        merged = telemetry.merge_snapshots(self._metrics.snapshot(), *worker_snapshots)
        return {
            "type": "status",
            "protocol": PROTOCOL_VERSION,
            "points": points,
            "pending": pending,
            "completed": completed,
            "failed": failed,
            "leases": active_leases,
            "workers": workers,
            "elapsed_seconds": elapsed,
            "points_per_second": rate,
            "cache": {
                "hits": getattr(self._store, "hits", 0),
                "misses": getattr(self._store, "misses", 0),
            },
            "figures": figures,
            "metrics": merged,
        }

    def fleet_metrics(self) -> Dict:
        """Coordinator counters merged with every worker's last snapshot
        (for run manifests and post-run aggregation)."""
        with self._lock:
            worker_snapshots = list(self._worker_snapshots.values())
        return telemetry.merge_snapshots(self._metrics.snapshot(), *worker_snapshots)

    def worker_snapshots(self) -> Dict[str, Dict]:
        """The latest telemetry snapshot each worker reported, by name."""
        with self._lock:
            return {name: dict(snap) for name, snap in self._worker_snapshots.items()}

    # ------------------------------------------------------------- serving

    def _accept_loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                connection, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._lock:
                self._connection_seq += 1
                connection_id = self._connection_seq
                self._connections[connection_id] = connection
            # Long-lived coordinators see many short-lived connections
            # (flaky workers reconnecting); drop finished threads so the
            # list cannot grow without bound.
            self._threads = [thread for thread in self._threads if thread.is_alive()]
            thread = threading.Thread(
                target=self._serve_connection,
                args=(connection, connection_id),
                daemon=True,
                name=f"coord-conn-{connection_id}",
            )
            self._threads.append(thread)
            thread.start()

    def _serve_connection(self, connection: socket.socket, connection_id: int) -> None:
        stream = connection.makefile("rb")
        # One send lock per connection: the request/reply path and a
        # watch sender thread share the socket, and interleaved partial
        # writes would corrupt the JSON-lines framing.
        send_lock = threading.Lock()
        watch_state: Dict = {}
        try:
            while True:
                try:
                    message = read_message(stream)
                except ValueError:
                    break
                if message is None:
                    break
                kind = message.get("type")
                if kind == "watch":
                    self._start_watch(connection, send_lock, watch_state, message)
                    continue
                if kind == "unwatch":
                    self._stop_watch(watch_state)
                    with send_lock:
                        connection.sendall(encode_message({"type": "unwatched"}))
                    continue
                reply = self._handle(message, connection_id)
                if reply is _GOODBYE:
                    break
                if reply is not None:
                    with send_lock:
                        connection.sendall(encode_message(reply))
        except OSError:
            pass
        finally:
            self._stop_watch(watch_state)
            self._release_connection(connection_id)
            with self._lock:
                self._connections.pop(connection_id, None)
            try:
                stream.close()
                connection.close()
            except OSError:
                pass

    # ------------------------------------------------------------- watch

    def _start_watch(
        self,
        connection: socket.socket,
        send_lock: threading.Lock,
        watch_state: Dict,
        message: Dict,
    ) -> None:
        """Subscribe this connection to the event stream.

        The ``watching`` reply (current ``seq`` plus a status snapshot to
        seed the view) is sent *before* the sender thread starts, so the
        client always sees the acknowledgement first and events — replayed
        ones included — strictly after it, in ``seq`` order.
        """
        if watch_state.get("queue") is not None:
            # Already watching: re-acknowledge, keep the existing stream.
            with send_lock:
                connection.sendall(
                    encode_message({"type": "watching", "seq": self.events.seq})
                )
            return
        # No ``from_seq`` field means live-only; an explicit value (0
        # included) replays buffered events with seq > from_seq first.
        raw_from_seq = message.get("from_seq")
        try:
            from_seq = None if raw_from_seq is None else int(raw_from_seq)
        except (TypeError, ValueError):
            from_seq = None
        status = self.status_payload()
        subscriber = self.events.subscribe(maxsize=DEFAULT_WATCH_QUEUE, from_seq=from_seq)
        try:
            with send_lock:
                connection.sendall(
                    encode_message(
                        {"type": "watching", "seq": self.events.seq, "status": status}
                    )
                )
        except OSError:
            self.events.unsubscribe(subscriber)
            raise
        thread = threading.Thread(
            target=self._watch_sender,
            args=(connection, send_lock, subscriber),
            daemon=True,
            name="coord-watch-sender",
        )
        watch_state["queue"] = subscriber
        watch_state["thread"] = thread
        thread.start()

    def _watch_sender(
        self, connection: socket.socket, send_lock: threading.Lock, subscriber
    ) -> None:
        while True:
            event = subscriber.get()
            if event is None:  # _stop_watch's sentinel
                return
            try:
                with send_lock:
                    connection.sendall(encode_message({"type": "event", "event": event}))
            except OSError:
                return

    def _stop_watch(self, watch_state: Dict) -> None:
        subscriber = watch_state.pop("queue", None)
        thread = watch_state.pop("thread", None)
        if subscriber is not None:
            self.events.unsubscribe(subscriber)
            subscriber.put(None)
        if thread is not None:
            thread.join(timeout=2.0)

    def _handle(self, message: Dict, connection_id: int):
        kind = message.get("type")
        if kind != "hello" and kind != "status":
            self._touch_worker(connection_id)
        if kind == "hello":
            if message.get("protocol") != PROTOCOL_VERSION:
                return {
                    "type": "done",
                    "error": f"protocol mismatch (coordinator speaks {PROTOCOL_VERSION})",
                }
            name = str(message.get("worker") or f"conn-{connection_id}")
            with self._lock:
                self._workers[connection_id] = {"worker": name, "pid": message.get("pid")}
                stats = self._worker_stats.setdefault(
                    name, {"pid": message.get("pid"), "completed": 0, "leases": 0}
                )
                stats["pid"] = message.get("pid")
                stats["last_seen"] = time.monotonic()
            self._log.info("worker %s connected (pid %s)", name, message.get("pid"))
            self.events.emit(
                "worker.connect",
                worker=name,
                pid=message.get("pid"),
                role=message.get("role") or "worker",
            )
            return {
                "type": "welcome",
                "protocol": PROTOCOL_VERSION,
                "points": len(self._points),
                "features": list(FEATURES),
            }
        if kind == "lease":
            return self._lease(connection_id)
        if kind == "result":
            return self._commit(message, connection_id)
        if kind == "error":
            self._requeue(
                message.get("key", ""),
                connection_id,
                reason=str(message.get("error", "worker error")),
            )
            return {"type": "ack"}
        if kind == "heartbeat":
            self._renew(message.get("key", ""), connection_id)
            return None
        if kind == "checkpoint":
            self._store_checkpoint(message, connection_id)
            return None
        if kind == "metrics":
            snapshot = message.get("snapshot")
            if isinstance(snapshot, dict):
                with self._lock:
                    name = self._workers.get(connection_id, {}).get("worker") or str(
                        message.get("worker") or f"conn-{connection_id}"
                    )
                    self._worker_snapshots[name] = snapshot
            return None
        if kind == "status":
            return self.status_payload()
        if kind == "goodbye":
            return _GOODBYE
        return {"type": "done", "error": f"unknown message type {kind!r}"}

    def _store_checkpoint(self, message: Dict, connection_id: int) -> None:
        """Keep the newest snapshot a worker streamed for a live point."""
        key = str(message.get("key", ""))
        data = message.get("data")
        try:
            cycle = int(message.get("cycle"))
        except (TypeError, ValueError):
            return
        if not isinstance(data, str) or not data:
            return
        with self._lock:
            point = self._points.get(key)
            if point is None or point.done or point.failed is not None:
                return
            previous = point.checkpoint
            if previous is not None and previous["cycle"] >= cycle:
                return  # a straggler duplicate lagging behind the leader
            point.checkpoint = {"cycle": cycle, "data": data}
            worker = self._workers.get(connection_id, {}).get("worker")
            figure = point.figure
        self._metrics.counter("coordinator.checkpoints")
        self.events.emit(
            "point.checkpoint", point=key, worker=worker, figure=figure, cycle=cycle
        )

    def _touch_worker(self, connection_id: int) -> None:
        """Record liveness for the worker behind ``connection_id``."""
        with self._lock:
            name = self._workers.get(connection_id, {}).get("worker")
            if name is not None and name in self._worker_stats:
                self._worker_stats[name]["last_seen"] = time.monotonic()

    # ------------------------------------------------------------- queue ops

    def _lease(self, connection_id: int) -> Dict:
        while True:
            now = time.monotonic()
            with self._lock:
                if self._shutdown.is_set() or self._all_settled():
                    return {"type": "done"}
                point = None
                while self._pending:
                    key = self._pending.popleft()
                    candidate = self._points[key]
                    if not (candidate.done or candidate.failed is not None):
                        point = candidate
                        break
                if point is None:
                    key, point = self._straggler_candidate(connection_id, now)
                if point is None:
                    return {"type": "wait", "seconds": self.retry_seconds}
                worker = self._workers.get(connection_id, {}).get(
                    "worker", f"conn-{connection_id}"
                )
                point.leases[connection_id] = _Lease(
                    connection_id, worker, deadline=now + self.lease_timeout, started=now
                )
                if worker in self._worker_stats:
                    self._worker_stats[worker]["leases"] += 1
                checkpoint = point.checkpoint
            self._metrics.counter("coordinator.lease_grants")
            # Serialise outside the lock: a multi-MB unit must not stall
            # the other connection threads (or heartbeat renewal).
            wire = point.wire()
            if wire is not None and not point.done:
                self.events.emit(
                    "lease.grant", point=key, worker=worker, figure=point.figure
                )
                reply = {"type": "work", "unit": wire}
                if checkpoint is not None:
                    # Re-lease of a point a (possibly dead) worker already
                    # advanced: hand over the snapshot so the new worker
                    # resumes instead of restarting.
                    reply["checkpoint"] = checkpoint
                return reply
            # The point completed while we were granting it; drop the
            # speculative lease and pick something else.
            with self._lock:
                point.leases.pop(connection_id, None)

    def _straggler_candidate(
        self, connection_id: int, now: float
    ) -> Tuple[Optional[str], Optional[_Point]]:
        oldest: Optional[Tuple[float, str, _Point]] = None
        for key, point in self._points.items():
            if point.done or point.failed is not None or point.committing or not point.leases:
                continue
            if connection_id in point.leases:
                continue
            started = min(lease.started for lease in point.leases.values())
            if now - started < self.straggler_timeout:
                continue
            if oldest is None or started < oldest[0]:
                oldest = (started, key, point)
        return (None, None) if oldest is None else (oldest[1], oldest[2])

    def _commit(self, message: Dict, connection_id: int) -> Dict:
        key = message.get("key", "")
        try:
            result = result_from_wire(message["result"])
        except (KeyError, TypeError, ValueError) as exc:
            self._requeue(key, connection_id, reason=f"undecodable result: {exc}")
            return {"type": "ack"}
        with self._lock:
            point = self._points.get(key)
            if point is None:
                return {"type": "ack"}
            point.leases.pop(connection_id, None)
            if point.done or point.committing:
                # A straggler duplicate finished second; its (identical)
                # result is already committed or being committed.
                self._check_finished()
                return {"type": "ack"}
            point.committing = True
        try:
            # Commit outside the lock: a disk write must not serialise the
            # other connection threads.  The point is only flagged done
            # *after* the write lands, so the finished event can never
            # fire while a result is still in flight.
            store_put(self._store, key, result, point.figure)
        except BaseException:
            with self._lock:
                point.committing = False
                # Count the failed commit as an attempt AND re-check
                # settlement: a lease that died *while* the commit was in
                # flight deferred its own settlement to the commit (see
                # _settle_or_requeue), so the failure path must resolve
                # the point — requeue it or declare it failed — or
                # nothing ever would and _check_finished would hang the
                # run with the point permanently unsettled.
                point.attempts += 1
                self._settle_or_requeue(point, key, "result store commit failed")
                self._check_finished()
            raise
        with self._lock:
            point.committing = False
            point.done = True
            point.failed = None
            point.release_payload()
            self.results_committed += 1
            resumed_from = message.get("resumed_from")
            if isinstance(resumed_from, int):
                self.resume_log[key] = {
                    "resumed_from": resumed_from,
                    "simulated_cycles": message.get("simulated_cycles"),
                    "worker": self._workers.get(connection_id, {}).get("worker"),
                }
                if resumed_from > 0:
                    self._metrics.counter("coordinator.points_resumed")
            bucket = self._figures.get(point.figure or "(unlabeled)")
            if bucket is not None:
                bucket["completed"] += 1
            worker = self._workers.get(connection_id, {}).get("worker")
            if worker in self._worker_stats:
                self._worker_stats[worker]["completed"] += 1
            self._check_finished()
        self._metrics.counter("coordinator.results_committed")
        self.events.emit("point.commit", point=key, worker=worker, figure=point.figure)
        return {"type": "ack"}

    def _requeue(self, key: str, connection_id: int, reason: str) -> None:
        with self._lock:
            point = self._points.get(key)
            if point is None or point.done:
                return
            point.leases.pop(connection_id, None)
            self._record_attempt(point, key, reason)
            self._check_finished()

    def _record_attempt(self, point: _Point, key: str, reason: str) -> None:
        """Count one failed attempt, then settle or requeue.  Lock held."""
        point.attempts += 1
        self._metrics.counter("coordinator.retries")
        self._log.warning("point %s attempt failed: %s", key[:12], reason)
        self._settle_or_requeue(point, key, reason)
        if point.failed is not None:
            self.events.emit(
                "point.fail", point=key, figure=point.figure, reason=reason,
                attempts=point.attempts,
            )
        else:
            self.events.emit(
                "point.requeue", point=key, figure=point.figure, reason=reason,
                attempts=point.attempts,
            )

    def _settle_or_requeue(self, point: _Point, key: str, reason: str) -> None:
        """Resolve a point after an attempt was recorded.  Lock held.

        A point is never declared failed — nor requeued — while another
        worker still holds a live lease on it (straggler duplicate) or a
        result for it is being committed: that copy may land moments
        later, and requeueing under an in-flight commit would burn a
        duplicate simulation of a point that is about to complete.
        Whatever blocked the settlement re-enters here when it resolves:
        a dying lease through its revocation, a failing commit through
        :meth:`_commit`'s failure path — so a point can never be left
        permanently unsettled.
        """
        if point.done or point.failed is not None:
            return
        if point.leases or point.committing:
            return
        if point.attempts >= self.max_attempts:
            point.failed = reason
        elif key not in self._pending:
            self._pending.append(key)

    def _renew(self, key: str, connection_id: int) -> None:
        now = time.monotonic()
        with self._lock:
            point = self._points.get(key)
            if point is None:
                return
            lease = point.leases.get(connection_id)
            if lease is not None:
                lease.deadline = now + self.lease_timeout

    def _release_connection(self, connection_id: int) -> None:
        """A connection died: requeue everything it still holds."""
        with self._lock:
            info = self._workers.pop(connection_id, None)
        if info is not None:
            self._log.info("worker %s disconnected", info.get("worker"))
            self.events.emit("worker.disconnect", worker=info.get("worker"))
        with self._lock:
            for key, point in self._points.items():
                if connection_id in point.leases and not point.done:
                    point.leases.pop(connection_id)
                    if not point.leases:
                        self._record_attempt(point, key, "worker connection lost")
            self._check_finished()

    def _reaper_loop(self) -> None:
        interval = min(1.0, max(0.05, self.lease_timeout / 4))
        while not self._shutdown.is_set():
            # Block *on the finished event*, not in a plain sleep: the
            # thread then exits the moment the last commit lands (or
            # ``stop`` is called), instead of holding the process — and
            # the listener port — for up to a full interval after the
            # run is over.
            if self._finished.wait(interval):
                return
            now = time.monotonic()
            with self._lock:
                for key, point in self._points.items():
                    if point.done or point.failed is not None:
                        continue
                    expired = [
                        lease_id
                        for lease_id, lease in point.leases.items()
                        if lease.deadline < now
                    ]
                    for lease_id in expired:
                        lease = point.leases.pop(lease_id)
                        self._metrics.counter("coordinator.lease_expired")
                        self.events.emit(
                            "lease.expire", point=key, worker=lease.worker,
                            figure=point.figure,
                        )
                        self._record_attempt(point, key, "lease expired (missed heartbeats)")
                self._check_finished()

    def _all_settled(self) -> bool:
        return all(point.done or point.failed is not None for point in self._points.values())

    def _check_finished(self) -> None:
        """Lock held: flip the completion event once every point settles."""
        if self._all_settled():
            self._finished.set()


#: Sentinel handler return: close the connection without replying.
_GOODBYE = object()
