"""Client side of the sweep service: submit → job id → poll → results.

:class:`SweepClient` is the programmatic face of ``repro submit``/
``repro jobs``: it connects to a running
:class:`~repro.distributed.service.SweepService`, introduces itself with
``role: "client"`` (so the service never mistakes it for a worker), and
drives the ``submit``/``poll``/``cancel``/``jobs`` message family the
service advertises via the ``"jobs"`` welcome feature.  A plain
one-shot coordinator does not advertise the feature, and the client
refuses it up front instead of failing obscurely on the first submit.

One connection serves any number of requests; messages are strictly
request/reply, so the client is trivially usable from a ``with`` block::

    with SweepClient("127.0.0.1:7777") as client:
        job = client.submit(SweepRequest(experiments=("fig5", "fig6")))
        status = client.wait(job)
        data = client.results(job)
"""

from __future__ import annotations

import os
import socket
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..orchestration.request import SweepRequest
from .protocol import (
    encode_message,
    hello_message,
    parse_address,
    peer_features,
    read_message,
)

#: Socket timeout for one request/reply round trip.  Replies are small
#: except a ``results: true`` poll, which still encodes in well under
#: a second; planning/simulating time is absorbed by polling, never by
#: one blocking read.
DEFAULT_TIMEOUT = 30.0

#: Seconds between polls in :meth:`SweepClient.wait`.
DEFAULT_POLL_INTERVAL = 0.2

#: Connect/handshake timeout for :class:`WatchClient` (the event stream
#: itself is unbounded — a quiet fleet pushes nothing for minutes).
DEFAULT_CONNECT_TIMEOUT = 10.0


class ServiceError(RuntimeError):
    """The service rejected a request or the conversation broke down."""


@dataclass
class JobStatus:
    """One poll's view of a job, decoded tolerantly from the wire."""

    job_id: str
    state: str
    points: int = 0
    completed: int = 0
    executed: int = 0
    reused: int = 0
    pending: int = 0
    priority: str = "interactive"
    tenant: Optional[str] = None
    error: Optional[str] = None
    results: Optional[Dict[str, Dict]] = None
    experiments: Tuple[str, ...] = ()
    elapsed_seconds: float = 0.0
    raw: Dict = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    @classmethod
    def from_payload(cls, payload: Dict) -> "JobStatus":
        """Decode a ``type: "job"`` reply; unknown fields are kept in
        ``raw`` so newer services never break older clients."""

        def _int(name: str) -> int:
            value = payload.get(name, 0)
            return value if isinstance(value, int) else 0

        return cls(
            job_id=str(payload.get("job", "")),
            state=str(payload.get("state", "unknown")),
            points=_int("points"),
            completed=_int("completed"),
            executed=_int("executed"),
            reused=_int("reused"),
            pending=_int("pending"),
            priority=str(payload.get("priority", "interactive")),
            tenant=payload.get("tenant"),
            error=payload.get("error"),
            results=payload.get("results"),
            experiments=tuple(payload.get("experiments", ())),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0) or 0.0),
            raw=payload,
        )


class WatchClient:
    """Streaming observer of a coordinator's or service's event feed.

    Connects with ``role: "observer"`` and, when the peer's welcome
    advertises the ``"watch"`` feature, subscribes to the event stream:
    ``status`` then holds the seeding snapshot the ``watching`` ack
    carried, and :meth:`events` yields one event dict per push until the
    connection closes.

    Version tolerance is explicit: against a pre-``watch`` peer the
    constructor still succeeds but leaves ``supports_watch`` false —
    callers (``repro watch``) degrade to one-shot ``status`` polling
    with a notice instead of erroring out.
    """

    def __init__(
        self,
        target: Union[str, Tuple[str, int]],
        *,
        from_seq: Optional[int] = None,
        timeout: float = DEFAULT_CONNECT_TIMEOUT,
    ) -> None:
        address = parse_address(target) if isinstance(target, str) else tuple(target)
        self.name = f"watch-{socket.gethostname()}-{os.getpid()}"
        self.status: Optional[Dict] = None
        self.seq = 0
        self.supports_watch = False
        self._connection = socket.create_connection(address, timeout=timeout)
        self._stream = self._connection.makefile("rb")
        try:
            self._connection.sendall(
                encode_message(hello_message(self.name, pid=os.getpid(), role="observer"))
            )
            welcome = read_message(self._stream)
            if welcome is None or welcome.get("type") != "welcome":
                error = (welcome or {}).get("error", "peer refused the hello")
                raise ServiceError(f"handshake failed: {error}")
            self.supports_watch = "watch" in peer_features(welcome)
            if self.supports_watch:
                subscribe: Dict = {"type": "watch"}
                # None = live-only; an explicit value (0 included)
                # replays buffered history — mirror the wire semantics.
                if from_seq is not None:
                    subscribe["from_seq"] = int(from_seq)
                self._connection.sendall(encode_message(subscribe))
                ack = read_message(self._stream)
                if ack is None or ack.get("type") != "watching":
                    raise ServiceError(f"watch subscription refused: {ack!r}")
                self.seq = int(ack.get("seq") or 0)
                status = ack.get("status")
                self.status = status if isinstance(status, dict) else None
                # The stream blocks until the fleet does something; only
                # the connect/handshake above is deadline-bound.
                self._connection.settimeout(None)
        except BaseException:
            self.close()
            raise

    def events(self):
        """Yield pushed event dicts; returns when the peer hangs up."""
        if not self.supports_watch:
            return
        while True:
            try:
                message = read_message(self._stream)
            except (OSError, ValueError):
                return
            if message is None:
                return
            if message.get("type") != "event":
                continue
            event = message.get("event")
            if isinstance(event, dict):
                self.seq = int(event.get("seq") or self.seq)
                yield event

    def close(self) -> None:
        try:
            self._stream.close()
            self._connection.close()
        except OSError:
            pass

    def __enter__(self) -> "WatchClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SweepClient:
    """Submit/poll/cancel sweeps against a running :class:`SweepService`."""

    def __init__(
        self,
        target: Union[str, Tuple[str, int]],
        *,
        tenant: Optional[str] = None,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        address = parse_address(target) if isinstance(target, str) else tuple(target)
        self.tenant = tenant or f"client-{socket.gethostname()}-{os.getpid()}"
        self._connection = socket.create_connection(address, timeout=timeout)
        self._stream = self._connection.makefile("rb")
        try:
            self._connection.sendall(
                encode_message(hello_message(self.tenant, pid=os.getpid(), role="client"))
            )
            welcome = read_message(self._stream)
            if welcome is None or welcome.get("type") != "welcome":
                error = (welcome or {}).get("error", "service refused the hello")
                raise ServiceError(f"handshake failed: {error}")
            if "jobs" not in peer_features(welcome):
                raise ServiceError(
                    "peer does not accept job submissions (a one-shot coordinator, "
                    "or a service older than the 'jobs' feature)"
                )
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------- transport

    def _rpc(self, payload: Dict) -> Dict:
        try:
            self._connection.sendall(encode_message(payload))
            reply = read_message(self._stream)
        except (OSError, ValueError) as exc:
            raise ServiceError(f"service connection failed: {exc}") from exc
        if reply is None:
            raise ServiceError("service closed the connection")
        if reply.get("type") == "error":
            raise ServiceError(str(reply.get("error", "service error")))
        return reply

    def close(self) -> None:
        try:
            self._connection.sendall(encode_message({"type": "goodbye"}))
        except OSError:
            pass
        try:
            self._stream.close()
            self._connection.close()
        except OSError:
            pass

    def __enter__(self) -> "SweepClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- job API

    def submit(self, request: SweepRequest) -> str:
        """Submit one sweep; returns the job id immediately (planning and
        simulation proceed on the service)."""
        if not isinstance(request, SweepRequest):
            raise TypeError(f"submit takes a SweepRequest, got {type(request).__name__}")
        reply = self._rpc(
            {"type": "submit", "request": request.to_wire(), "tenant": self.tenant}
        )
        status = JobStatus.from_payload(reply)
        if not status.job_id:
            raise ServiceError(f"service returned no job id: {reply!r}")
        return status.job_id

    def poll(self, job_id: str, include_results: bool = False) -> JobStatus:
        """One snapshot of a job's progress."""
        payload: Dict = {"type": "poll", "job": job_id}
        if include_results:
            payload["results"] = True
        return JobStatus.from_payload(self._rpc(payload))

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        interval: float = DEFAULT_POLL_INTERVAL,
    ) -> JobStatus:
        """Poll until the job reaches a terminal state.

        Raises ``TimeoutError`` after ``timeout`` seconds (``None`` waits
        forever).  The terminal status is returned as-is — callers decide
        what a ``failed``/``cancelled`` end state means to them.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.poll(job_id)
            if status.finished:
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status.state} after {timeout:.1f}s "
                    f"({status.completed}/{status.points} points)"
                )
            time.sleep(interval)

    def results(self, job_id: str) -> Dict[str, Dict]:
        """The finished job's figure data dicts (label → data).

        The payload was canonicalised by the service, so exporting it
        with :func:`repro.orchestration.report.dump_json` is
        byte-identical to a local serial run of the same request.
        """
        status = self.poll(job_id, include_results=True)
        if status.state != "done":
            raise ServiceError(
                f"job {job_id} has no results (state {status.state}"
                + (f": {status.error}" if status.error else "")
                + ")"
            )
        if status.results is None:
            raise ServiceError(f"job {job_id} is done but returned no results")
        return status.results

    def run(self, request: SweepRequest, timeout: Optional[float] = None) -> Dict[str, Dict]:
        """Submit and block until the results are in (convenience)."""
        job_id = self.submit(request)
        status = self.wait(job_id, timeout=timeout)
        if status.state != "done":
            raise ServiceError(
                f"job {job_id} {status.state}"
                + (f": {status.error}" if status.error else "")
            )
        return self.results(job_id)

    def cancel(self, job_id: str) -> JobStatus:
        return JobStatus.from_payload(self._rpc({"type": "cancel", "job": job_id}))

    def jobs(self) -> List[JobStatus]:
        """Every job the service knows, newest last."""
        reply = self._rpc({"type": "jobs"})
        table = reply.get("jobs")
        if not isinstance(table, dict):
            raise ServiceError(f"malformed jobs reply: {reply!r}")
        statuses = [JobStatus.from_payload(dict(body, job=job_id))
                    for job_id, body in sorted(table.items())]
        return statuses
