"""Worker loop: lease points from a coordinator, simulate, stream results.

A worker is stateless — it holds nothing but the point it is currently
simulating.  While a simulation runs, a background thread sends
heartbeats so the coordinator keeps the lease alive; the simulation
itself goes through :func:`repro.sim.runner.simulate_traces` (the
repository-wide choke point), so a worker honours the same engine
selection and produces the same bits as an in-process run.

Run one from the CLI on any machine that can reach the coordinator::

    PYTHONPATH=src python -m repro worker --connect HOST:PORT

The worker exits when the coordinator reports the run complete (or the
connection drops).
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass
from typing import Optional

from .. import telemetry
from ..sim.runner import simulate_traces
from ..telemetry import logs
from .protocol import (
    encode_message,
    hello_message,
    metrics_message,
    parse_address,
    peer_features,
    read_message,
    result_to_wire,
    unit_from_wire,
)

#: Seconds between lease-renewal heartbeats while a point simulates.
DEFAULT_HEARTBEAT_INTERVAL = 2.0


@dataclass
class WorkerStats:
    """What one worker did over its lifetime."""

    simulated: int = 0
    errors: int = 0
    waits: int = 0


class _Heartbeat:
    """Background lease renewal for the point currently simulating."""

    def __init__(self, connection: socket.socket, send_lock: threading.Lock, key: str,
                 interval: float) -> None:
        self._connection = connection
        self._send_lock = send_lock
        self._key = key
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True, name="worker-heartbeat")

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=self._interval + 1.0)

    def _run(self) -> None:
        message = encode_message({"type": "heartbeat", "key": self._key})
        while not self._stop.wait(self._interval):
            try:
                with self._send_lock:
                    self._connection.sendall(message)
            except OSError:
                return


def run_worker(
    connect: str,
    worker_id: Optional[str] = None,
    *,
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    log=None,
) -> WorkerStats:
    """Serve one coordinator until it reports the run done.

    ``connect`` is ``HOST:PORT``.  Returns the worker's tally; raises
    ``OSError`` if the coordinator cannot be reached at all.
    """
    host, port = parse_address(connect)
    worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    log = log or logs.get_logger("worker", worker_id).info
    stats = WorkerStats()
    # Worker-side telemetry.  ``registry`` holds the worker's own tallies;
    # snapshots sent to the coordinator additionally fold in the process
    # registry, which carries the engine/cache metrics recorded by the
    # simulations themselves (a dedicated worker process records nothing
    # else into it; in-process test workers share it, which merely makes
    # their snapshots a superset).
    registry = telemetry.MetricsRegistry()

    connection = socket.create_connection((host, port))
    send_lock = threading.Lock()
    stream = connection.makefile("rb")

    def send(payload: dict) -> None:
        with send_lock:
            connection.sendall(encode_message(payload))

    def receive() -> Optional[dict]:
        # Bounded read; raises ValueError on an oversized/garbled frame.
        return read_message(stream)

    try:
        send(hello_message(worker_id, pid=os.getpid()))
        welcome = receive()
        if welcome is None or welcome.get("type") != "welcome":
            error = (welcome or {}).get("error", "coordinator refused the hello")
            raise ConnectionError(f"handshake failed: {error}")
        # Feature negotiation: only coordinators that advertised the
        # ``metrics`` kind receive telemetry snapshots — an old
        # coordinator answers unknown kinds with ``done``, which would
        # shut this worker down mid-run.
        send_metrics = "metrics" in peer_features(welcome)
        log(f"connected to {host}:{port} ({welcome.get('points', '?')} points in the run)")

        def report_metrics() -> None:
            if not send_metrics:
                return
            snapshot = telemetry.merge_snapshots(registry.snapshot(), telemetry.snapshot())
            try:
                send(metrics_message(worker_id, snapshot))
            except OSError:
                pass

        while True:
            send({"type": "lease"})
            reply = receive()
            if reply is None:
                log("coordinator hung up")
                break
            kind = reply.get("type")
            if kind == "done":
                report_metrics()
                send({"type": "goodbye"})
                break
            if kind == "wait":
                stats.waits += 1
                registry.counter("worker.waits")
                time.sleep(float(reply.get("seconds", 0.5)))
                continue
            if kind != "work":
                log(f"unexpected reply {kind!r}; exiting")
                break

            key = str((reply.get("unit") or {}).get("key", ""))
            started = time.perf_counter()
            try:
                unit = unit_from_wire(reply["unit"])
                with _Heartbeat(connection, send_lock, key, heartbeat_interval):
                    with telemetry.figure_scope(getattr(unit, "figure", None)):
                        result = simulate_traces(unit.traces, unit.config)
            except Exception as exc:  # bad payload or simulation bug: report, keep serving
                stats.errors += 1
                registry.counter("worker.errors")
                send({"type": "error", "key": key, "error": f"{type(exc).__name__}: {exc}"})
            else:
                stats.simulated += 1
                registry.counter("worker.points")
                registry.observe("worker.point_seconds", time.perf_counter() - started)
                send({"type": "result", "key": key, "result": result_to_wire(result)})
            ack = receive()
            if ack is None:
                log("coordinator hung up before acknowledging")
                break
            report_metrics()
    except ValueError as exc:
        # A garbled or oversized frame: the stream is unrecoverable, but
        # the worker should exit cleanly (the coordinator requeues the
        # leased point when the connection drops) rather than traceback.
        log(f"protocol error, disconnecting: {exc}")
    finally:
        try:
            stream.close()
            connection.close()
        except OSError:
            pass
    log(f"done: {stats.simulated} simulated, {stats.errors} errors")
    return stats
