"""Worker loop: lease points from a coordinator, simulate, stream results.

A worker is stateless — it holds nothing but the point it is currently
simulating.  While a simulation runs, a background thread sends
heartbeats so the coordinator keeps the lease alive; the simulation
itself goes through :func:`repro.sim.runner.simulate_traces` (the
repository-wide choke point), so a worker honours the same engine
selection and produces the same bits as an in-process run.

Run one from the CLI on any machine that can reach the coordinator::

    PYTHONPATH=src python -m repro worker --connect HOST:PORT

The worker exits when the coordinator reports the run complete (or the
connection drops).
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
from dataclasses import dataclass
from typing import Optional

from .. import telemetry
from ..sim import checkpoint as ckpt
from ..sim.runner import checkpointing, simulate_traces
from ..telemetry import logs
from .protocol import (
    checkpoint_from_wire,
    checkpoint_message,
    encode_message,
    hello_message,
    metrics_message,
    parse_address,
    peer_features,
    read_message,
    result_to_wire,
    unit_from_wire,
)

#: Seconds between lease-renewal heartbeats while a point simulates.
DEFAULT_HEARTBEAT_INTERVAL = 2.0


@dataclass
class WorkerStats:
    """What one worker did over its lifetime."""

    simulated: int = 0
    errors: int = 0
    waits: int = 0


class _Heartbeat:
    """Background lease renewal for the point currently simulating."""

    def __init__(self, connection: socket.socket, send_lock: threading.Lock, key: str,
                 interval: float) -> None:
        self._connection = connection
        self._send_lock = send_lock
        self._key = key
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True, name="worker-heartbeat")

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=self._interval + 1.0)

    def _run(self) -> None:
        message = encode_message({"type": "heartbeat", "key": self._key})
        while not self._stop.wait(self._interval):
            try:
                with self._send_lock:
                    self._connection.sendall(message)
            except OSError:
                return


class _Interrupted(Exception):
    """The worker was told to stop (SIGTERM) mid-simulation; the final
    checkpoint has already been streamed to the coordinator."""


class _WireCheckpointStore:
    """Checkpoint ``resume``/``put`` interface that streams to the
    coordinator instead of a directory.

    One instance serves one leased point: ``resume`` rehydrates the
    snapshot the coordinator attached to the ``work`` reply (falling
    back to a fresh start if it does not match this unit), and ``put``
    sends each periodic snapshot as a fire-and-forget ``checkpoint``
    message.  After streaming a snapshot it raises :class:`_Interrupted`
    if a stop was requested — the coordinator then holds everything the
    worker knew, so exiting loses nothing.
    """

    def __init__(self, send, worker_id: str, key: str, resume_payload, stop: threading.Event) -> None:
        self._send = send
        self._worker = worker_id
        self._key = key
        self._resume_payload = resume_payload
        self._stop = stop
        self.resumed_from = 0

    def resume(self, traces, config):
        decoded = checkpoint_from_wire(self._resume_payload)
        if decoded is None:
            return None
        _cycle, data = decoded
        try:
            system = ckpt.restore(data, traces=traces, config=config)
        except ckpt.CheckpointError:
            # A stale or mismatched snapshot (coordinator restarted with
            # different points, version skew): restart from scratch.
            telemetry.counter("worker.checkpoint_rejects")
            return None
        self.resumed_from = system.cycle
        return system

    def put(self, traces, config, system) -> None:
        try:
            self._send(checkpoint_message(self._worker, self._key, system.cycle, ckpt.snapshot(system)))
        except OSError:
            pass  # connection gone; the lease reaper will requeue the point
        if self._stop.is_set():
            raise _Interrupted()


def run_worker(
    connect: str,
    worker_id: Optional[str] = None,
    *,
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    checkpoint_interval: Optional[int] = None,
    log=None,
) -> WorkerStats:
    """Serve one coordinator until it reports the run done.

    ``connect`` is ``HOST:PORT``.  Returns the worker's tally; raises
    ``OSError`` if the coordinator cannot be reached at all.

    With ``checkpoint_interval`` set (simulated cycles), the worker
    streams a snapshot of the running point to the coordinator every
    interval and resumes from any snapshot attached to its lease, so a
    killed worker loses at most one interval of simulation.  SIGTERM is
    honoured cooperatively: the worker finishes the current interval,
    streams one final checkpoint, and disconnects.
    """
    host, port = parse_address(connect)
    worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    log = log or logs.get_logger("worker", worker_id).info
    stats = WorkerStats()
    # Worker-side telemetry.  ``registry`` holds the worker's own tallies;
    # snapshots sent to the coordinator additionally fold in the process
    # registry, which carries the engine/cache metrics recorded by the
    # simulations themselves (a dedicated worker process records nothing
    # else into it; in-process test workers share it, which merely makes
    # their snapshots a superset).
    registry = telemetry.MetricsRegistry()

    connection = socket.create_connection((host, port))
    send_lock = threading.Lock()
    stream = connection.makefile("rb")

    def send(payload: dict) -> None:
        with send_lock:
            connection.sendall(encode_message(payload))

    def receive() -> Optional[dict]:
        # Bounded read; raises ValueError on an oversized/garbled frame.
        return read_message(stream)

    # Cooperative SIGTERM: set a flag, let the simulation reach its next
    # checkpoint boundary, stream the final snapshot, exit.  Installing a
    # handler only works from the main thread; in-process test workers
    # run on daemon threads and are stopped by their caller instead.
    stop_requested = threading.Event()
    previous_sigterm = None
    try:
        previous_sigterm = signal.signal(signal.SIGTERM, lambda _signum, _frame: stop_requested.set())
    except ValueError:
        pass

    try:
        send(hello_message(worker_id, pid=os.getpid()))
        welcome = receive()
        if welcome is None or welcome.get("type") != "welcome":
            error = (welcome or {}).get("error", "coordinator refused the hello")
            raise ConnectionError(f"handshake failed: {error}")
        # Feature negotiation: only coordinators that advertised the
        # ``metrics`` kind receive telemetry snapshots — an old
        # coordinator answers unknown kinds with ``done``, which would
        # shut this worker down mid-run.  Checkpoint streaming is gated
        # the same way: against an old coordinator the worker simply
        # runs every point straight through.
        features = peer_features(welcome)
        send_metrics = "metrics" in features
        send_checkpoints = checkpoint_interval is not None and "checkpoint" in features
        log(f"connected to {host}:{port} ({welcome.get('points', '?')} points in the run)")

        def report_metrics() -> None:
            if not send_metrics:
                return
            snapshot = telemetry.merge_snapshots(registry.snapshot(), telemetry.snapshot())
            try:
                send(metrics_message(worker_id, snapshot))
            except OSError:
                pass

        while True:
            send({"type": "lease"})
            reply = receive()
            if reply is None:
                log("coordinator hung up")
                break
            kind = reply.get("type")
            if kind == "done":
                report_metrics()
                send({"type": "goodbye"})
                break
            if kind == "wait":
                stats.waits += 1
                registry.counter("worker.waits")
                time.sleep(float(reply.get("seconds", 0.5)))
                continue
            if kind != "work":
                log(f"unexpected reply {kind!r}; exiting")
                break

            key = str((reply.get("unit") or {}).get("key", ""))
            started = time.perf_counter()
            store: Optional[_WireCheckpointStore] = None
            try:
                unit = unit_from_wire(reply["unit"])
                with _Heartbeat(connection, send_lock, key, heartbeat_interval):
                    with telemetry.figure_scope(getattr(unit, "figure", None)):
                        if send_checkpoints:
                            store = _WireCheckpointStore(
                                send, worker_id, key, reply.get("checkpoint"), stop_requested
                            )
                            with checkpointing(store, checkpoint_interval):
                                result = simulate_traces(unit.traces, unit.config)
                        else:
                            result = simulate_traces(unit.traces, unit.config)
            except _Interrupted:
                # The final checkpoint is already with the coordinator;
                # disconnect cleanly so the point is requeued promptly.
                log("stop requested; final checkpoint streamed, exiting")
                registry.counter("worker.interrupted")
                send({"type": "goodbye"})
                break
            except Exception as exc:  # bad payload or simulation bug: report, keep serving
                stats.errors += 1
                registry.counter("worker.errors")
                send({"type": "error", "key": key, "error": f"{type(exc).__name__}: {exc}"})
            else:
                stats.simulated += 1
                registry.counter("worker.points")
                registry.observe("worker.point_seconds", time.perf_counter() - started)
                message = {"type": "result", "key": key, "result": result_to_wire(result)}
                if store is not None:
                    # Resume accounting: lets the coordinator (and the
                    # resume regression tests) verify a re-leased point
                    # continued rather than restarted.
                    message["resumed_from"] = store.resumed_from
                    message["simulated_cycles"] = result.total_cycles - store.resumed_from
                send(message)
            ack = receive()
            if ack is None:
                log("coordinator hung up before acknowledging")
                break
            report_metrics()
            if stop_requested.is_set():
                log("stop requested; exiting between leases")
                send({"type": "goodbye"})
                break
    except ValueError as exc:
        # A garbled or oversized frame: the stream is unrecoverable, but
        # the worker should exit cleanly (the coordinator requeues the
        # leased point when the connection drops) rather than traceback.
        log(f"protocol error, disconnecting: {exc}")
    finally:
        if previous_sigterm is not None:
            try:
                signal.signal(signal.SIGTERM, previous_sigterm)
            except ValueError:
                pass
        try:
            stream.close()
            connection.close()
        except OSError:
            pass
    log(f"done: {stats.simulated} simulated, {stats.errors} errors")
    return stats
