"""Distributed executor: the orchestrator's bridge to the coordinator.

:class:`DistributedExecutor` plugs into
:func:`repro.orchestration.sweep.execute_units` like any other
:class:`~repro.orchestration.executors.Executor`: it starts a
:class:`~repro.distributed.coordinator.Coordinator` over the pending
points, optionally self-spawns localhost worker processes, and blocks
until every point is committed to the result store.  Remote workers on
other machines join the same run with::

    PYTHONPATH=src python -m repro worker --target HOST:PORT

Because results land in the same content-addressed store the replay
phase reads, a distributed sweep's output is bit-identical to a serial
run — including when workers die mid-run (the coordinator requeues
their points).
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from .. import telemetry
from ..orchestration.executors import Executor
from ..telemetry import logs
from .coordinator import (
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_STRAGGLER_TIMEOUT,
    Coordinator,
)


def spawn_local_worker(
    host: str, port: int, index: int = 0, checkpoint_interval: Optional[int] = None
) -> subprocess.Popen:
    """Start ``python -m repro worker`` as a detached localhost process.

    The child inherits the environment with this package's ``src`` root
    prepended to ``PYTHONPATH``, so self-spawned workers run the exact
    code of the coordinating process without an install step.  (No
    engine forwarding is needed: the engine selection travels inside
    each leased unit's config.)
    """
    import repro

    src_root = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = str(src_root) + (os.pathsep + existing if existing else "")
    command = [
        sys.executable,
        "-m",
        "repro",
        "worker",
        "--target",
        f"{host}:{port}",
        "--id",
        f"local-{index}",
    ]
    if checkpoint_interval is not None:
        command += ["--checkpoint-interval", str(checkpoint_interval)]
    return subprocess.Popen(command, env=env)


#: Wildcard listen addresses cannot be *connected to*; self-spawned
#: workers use loopback and the announced join command uses the
#: machine's hostname instead.
_WILDCARD_HOSTS = ("0.0.0.0", "::", "")


class DistributedExecutor(Executor):
    """Shards pending simulation points across coordinator-fed workers."""

    name = "distributed"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        spawn_workers: int = 0,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        straggler_timeout: float = DEFAULT_STRAGGLER_TIMEOUT,
        timeout: Optional[float] = None,
        checkpoint_interval: Optional[int] = None,
        announce=None,
    ) -> None:
        self.host = host
        self.port = port
        self.spawn_workers = max(0, int(spawn_workers))
        self.lease_timeout = lease_timeout
        self.max_attempts = max_attempts
        self.straggler_timeout = straggler_timeout
        self.timeout = timeout
        #: Simulated-cycle interval at which self-spawned workers stream
        #: checkpoints to the coordinator (``None`` = no checkpointing).
        #: External workers choose their own via ``--checkpoint-interval``.
        self.checkpoint_interval = checkpoint_interval
        self._announce = announce or logs.get_logger("distributed").info
        #: Last run's coordinator (exposed for tests and diagnostics).
        self.last_coordinator: Optional[Coordinator] = None
        #: Merged fleet metrics of the last run (coordinator counters +
        #: every worker's final snapshot), for manifests and reporting.
        self.last_fleet_metrics: Optional[dict] = None
        #: Per-worker final snapshots of the last run, by worker name.
        self.last_worker_snapshots: dict = {}

    def execute(self, units: Sequence, store) -> int:
        units = list(units)
        coordinator = Coordinator(
            units,
            store,
            host=self.host,
            port=self.port,
            lease_timeout=self.lease_timeout,
            max_attempts=self.max_attempts,
            straggler_timeout=self.straggler_timeout,
            # The process bus: lease/commit/requeue events from this run
            # land in the same journal as the sweep's own point events.
            events=telemetry.bus(),
        )
        self.last_coordinator = coordinator
        host, port = coordinator.start()
        # A wildcard bind address is a listen-only concept: workers on
        # this machine connect via loopback, and the join command shown
        # to the operator names the host so it works from other machines.
        connect_host = "127.0.0.1" if host in _WILDCARD_HOSTS else host
        join_host = socket.gethostname() if host in _WILDCARD_HOSTS else host
        workers: List[subprocess.Popen] = []
        try:
            for index in range(self.spawn_workers):
                workers.append(
                    spawn_local_worker(
                        connect_host, port, index, checkpoint_interval=self.checkpoint_interval
                    )
                )
            if not self.spawn_workers:
                self._announce(
                    f"[distributed] coordinator listening on {host}:{port}; waiting for workers "
                    f"(start one with: python -m repro worker --target {join_host}:{port})"
                )
            else:
                self._announce(
                    f"[distributed] coordinator on {host}:{port}, "
                    f"{self.spawn_workers} localhost worker(s), {len(units)} point(s)"
                )
            self._wait(coordinator, workers, len(units))
            # Fold the fleet's telemetry into this process before the
            # coordinator goes away: the sweep's manifest and any final
            # report read the process registry.
            self.last_fleet_metrics = coordinator.fleet_metrics()
            self.last_worker_snapshots = coordinator.worker_snapshots()
            telemetry.merge_into_process(self.last_fleet_metrics)
            failed = coordinator.failed_keys
            if failed:
                key, reason = next(iter(failed.items()))
                raise RuntimeError(
                    f"{len(failed)} simulation point(s) exhausted their retries "
                    f"(first: {key[:12]}…: {reason})"
                )
        finally:
            # Stop the coordinator first: it drops every worker connection,
            # so self-spawned workers exit immediately instead of each
            # eating the full reap timeout on the error/timeout path.
            coordinator.stop()
            self._reap(workers)
        return len(units)

    def _wait(
        self, coordinator: Coordinator, workers: List[subprocess.Popen], total: int
    ) -> None:
        """Block until the run settles, the deadline passes, or — when every
        worker was self-spawned — the whole fleet has died.

        Without the fleet check, losing all self-spawned workers would
        requeue their points into a queue nobody serves and the run would
        hang forever instead of erroring.  External workers may still join
        at any time, so the check only fires while none are connected.
        """
        deadline = None if self.timeout is None else time.monotonic() + self.timeout
        while not coordinator.wait(0.5):
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"distributed run did not finish within {self.timeout} s "
                    f"({coordinator.snapshot()['completed']}/{total} points committed)"
                )
            if workers and all(worker.poll() is not None for worker in workers):
                if coordinator.wait(0):
                    return  # the fleet exited because the run just finished
                snapshot = coordinator.snapshot()
                if not snapshot["workers"]:
                    codes = [worker.returncode for worker in workers]
                    raise RuntimeError(
                        f"all {len(workers)} self-spawned worker(s) exited "
                        f"(return codes {codes}) with "
                        f"{snapshot['completed']}/{total} points committed and "
                        "no external workers connected"
                    )

    def _reap(self, workers: List[subprocess.Popen]) -> None:
        """Give self-spawned workers a moment to exit cleanly, then kill."""
        for worker in workers:
            try:
                worker.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                worker.kill()
                try:
                    worker.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    pass
