"""Small statistics helpers used by experiments and result reporting."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values."""
    if not values:
        raise ValueError("values must be non-empty")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    """Arithmetic mean."""
    if not values:
        raise ValueError("values must be non-empty")
    return sum(values) / len(values)


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile (``fraction`` in [0, 1])."""
    if not values:
        raise ValueError("values must be non-empty")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return ordered[low]
    weight = position - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary used for the paper's box-and-whisker figures."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @property
    def interquartile_range(self) -> float:
        return self.q3 - self.q1

    @property
    def upper_whisker(self) -> float:
        """Largest value within 1.5 IQR above Q3 (outlier threshold)."""
        return self.q3 + 1.5 * self.interquartile_range

    def as_dict(self) -> Dict[str, float]:
        return {
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
        }


def box_stats(values: Sequence[float]) -> BoxStats:
    """Compute the five-number summary of ``values``."""
    if not values:
        raise ValueError("values must be non-empty")
    return BoxStats(
        minimum=min(values),
        q1=percentile(values, 0.25),
        median=percentile(values, 0.5),
        q3=percentile(values, 0.75),
        maximum=max(values),
    )


def relative_improvement(baseline: float, new: float) -> float:
    """Relative improvement of ``new`` over ``baseline`` for lower-is-better metrics."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (baseline - new) / baseline
