"""Performance, fairness and statistics metrics."""

from .fairness import (
    execution_slowdown,
    fairness_improvement,
    memory_slowdown,
    unfairness_index,
)
from .speedup import harmonic_speedup, normalized_weighted_speedup, weighted_speedup
from .stats import (
    BoxStats,
    arithmetic_mean,
    box_stats,
    geometric_mean,
    percentile,
    relative_improvement,
)

__all__ = [
    "BoxStats",
    "arithmetic_mean",
    "box_stats",
    "execution_slowdown",
    "fairness_improvement",
    "geometric_mean",
    "harmonic_speedup",
    "memory_slowdown",
    "normalized_weighted_speedup",
    "percentile",
    "relative_improvement",
    "unfairness_index",
    "weighted_speedup",
]
