"""Fairness and slowdown metrics (Section 7).

The paper measures per-application *memory slowdown* as the memory stall
cycles per instruction (MCPI) when the memory system is shared, divided by
the MCPI when the application runs alone.  The workload-level *unfairness
index* is the ratio of the maximum to the minimum memory slowdown across
the applications of the workload: 1 means every application suffers the
same relative slowdown, larger values mean the memory scheduler favours
some applications over others.
"""

from __future__ import annotations

from typing import Sequence


def memory_slowdown(mcpi_shared: float, mcpi_alone: float, epsilon: float = 1e-9) -> float:
    """Memory-related slowdown of one application.

    ``epsilon`` guards against applications with (near-)zero stall time
    when running alone: such applications are assigned the shared MCPI
    scaled by the guard, which keeps the metric finite while still
    reflecting that any added stall time is pure interference.
    """
    if mcpi_shared < 0 or mcpi_alone < 0:
        raise ValueError("MCPI values must be non-negative")
    return (mcpi_shared + epsilon) / (mcpi_alone + epsilon)


def unfairness_index(slowdowns: Sequence[float]) -> float:
    """Unfairness index: max memory slowdown / min memory slowdown."""
    if not slowdowns:
        raise ValueError("slowdowns must be non-empty")
    if any(s <= 0 for s in slowdowns):
        raise ValueError("slowdowns must be positive")
    return max(slowdowns) / min(slowdowns)


def execution_slowdown(cycles_shared: float, cycles_alone: float) -> float:
    """Execution-time slowdown (shared / alone) for the same instruction count."""
    if cycles_shared <= 0 or cycles_alone <= 0:
        raise ValueError("cycle counts must be positive")
    return cycles_shared / cycles_alone


def fairness_improvement(unfairness_baseline: float, unfairness_new: float) -> float:
    """Relative fairness improvement of a design over a baseline.

    Both inputs are unfairness indices (>= 1); the improvement is the
    relative reduction of the excess unfairness is *not* used by the
    paper — the paper reports the plain relative reduction of the index,
    which is what this function returns.
    """
    if unfairness_baseline <= 0 or unfairness_new <= 0:
        raise ValueError("unfairness indices must be positive")
    return (unfairness_baseline - unfairness_new) / unfairness_baseline
