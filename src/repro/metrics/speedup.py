"""Multi-programmed performance metrics (weighted / harmonic speedup)."""

from __future__ import annotations

from typing import Sequence


def weighted_speedup(ipc_shared: Sequence[float], ipc_alone: Sequence[float]) -> float:
    """Weighted speedup: sum of per-application IPC_shared / IPC_alone.

    The standard system-throughput metric for multi-programmed workloads
    (Snavely & Tullsen), used by the paper for multi-core non-RNG results.
    """
    _validate(ipc_shared, ipc_alone)
    return sum(s / a for s, a in zip(ipc_shared, ipc_alone))


def normalized_weighted_speedup(
    ipc_shared: Sequence[float], ipc_alone: Sequence[float]
) -> float:
    """Weighted speedup divided by the number of applications (in [0, 1])."""
    _validate(ipc_shared, ipc_alone)
    return weighted_speedup(ipc_shared, ipc_alone) / len(ipc_shared)


def harmonic_speedup(ipc_shared: Sequence[float], ipc_alone: Sequence[float]) -> float:
    """Harmonic mean of speedups: balances throughput and fairness."""
    _validate(ipc_shared, ipc_alone)
    return len(ipc_shared) / sum(a / s for s, a in zip(ipc_shared, ipc_alone))


def _validate(ipc_shared: Sequence[float], ipc_alone: Sequence[float]) -> None:
    if not ipc_shared or not ipc_alone:
        raise ValueError("IPC sequences must be non-empty")
    if len(ipc_shared) != len(ipc_alone):
        raise ValueError("IPC sequences must have the same length")
    if any(value <= 0 for value in ipc_shared) or any(value <= 0 for value in ipc_alone):
        raise ValueError("IPC values must be positive")
