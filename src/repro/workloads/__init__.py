"""Workload specifications, synthetic trace generators and workload mixes."""

from .mixes import (
    ROW_OFFSET_STRIDE,
    build_traces,
    dual_core_mixes,
    four_core_group_mixes,
    motivation_mixes,
    multi_core_group_mixes,
)
from .rng_benchmark import generate_rng_trace
from .spec import (
    DEFAULT_RNG_THROUGHPUT_MBPS,
    MOTIVATION_RNG_THROUGHPUTS_MBPS,
    ApplicationSpec,
    RNGBenchmarkSpec,
    WorkloadMix,
    standard_rng_benchmark,
)
from .suites import (
    ALL_APPLICATIONS,
    APPLICATIONS_BY_NAME,
    PAPER_FIGURE_APPS,
    application,
    applications_by_category,
    representative_subset,
)
from .synthetic import generate_application_trace, generate_streaming_trace

__all__ = [
    "ALL_APPLICATIONS",
    "APPLICATIONS_BY_NAME",
    "ApplicationSpec",
    "DEFAULT_RNG_THROUGHPUT_MBPS",
    "MOTIVATION_RNG_THROUGHPUTS_MBPS",
    "PAPER_FIGURE_APPS",
    "ROW_OFFSET_STRIDE",
    "RNGBenchmarkSpec",
    "WorkloadMix",
    "application",
    "applications_by_category",
    "build_traces",
    "dual_core_mixes",
    "four_core_group_mixes",
    "generate_application_trace",
    "generate_rng_trace",
    "generate_streaming_trace",
    "motivation_mixes",
    "multi_core_group_mixes",
    "representative_subset",
    "standard_rng_benchmark",
]
