"""Multi-programmed workload mixes (Tables 2 and 3 of the paper).

* 2-core motivation mixes: every non-RNG application paired with RNG
  benchmarks of 640/1280/2560/5120 Mb/s required throughput (Table 2,
  172 workloads with the full roster).
* 2-core evaluation mixes: every non-RNG application paired with the
  5 Gb/s RNG benchmark (43 workloads).
* 4-core groups LLLS / LLHS / LHHS / HHHS: three non-RNG applications of
  the indicated memory-intensity categories plus one RNG benchmark, ten
  workloads per group.
* 8- and 16-core groups L / M / H: seven or fifteen non-RNG applications
  of one category plus one RNG benchmark, ten workloads per group.

Mixes can be materialised into per-core traces with :func:`build_traces`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cpu.trace import Trace
from ..dram.address import AddressMapping
from .rng_benchmark import generate_rng_trace
from .spec import (
    ApplicationSpec,
    DEFAULT_RNG_THROUGHPUT_MBPS,
    MOTIVATION_RNG_THROUGHPUTS_MBPS,
    RNGBenchmarkSpec,
    WorkloadMix,
    standard_rng_benchmark,
)
from .suites import ALL_APPLICATIONS, PAPER_FIGURE_APPS, applications_by_category
from .synthetic import generate_application_trace

#: Row offset separation between cores so that co-running applications
#: touch disjoint rows (but share channels and banks).
ROW_OFFSET_STRIDE = 4096


def dual_core_mixes(
    applications: Optional[Sequence[ApplicationSpec]] = None,
    rng_throughput_mbps: float = DEFAULT_RNG_THROUGHPUT_MBPS,
) -> List[WorkloadMix]:
    """One 2-core mix per application: (non-RNG app, RNG benchmark)."""
    applications = list(applications) if applications is not None else list(PAPER_FIGURE_APPS)
    rng_spec = standard_rng_benchmark(rng_throughput_mbps)
    return [
        WorkloadMix(name=f"{app.name}+{rng_spec.name}", slots=[app, rng_spec])
        for app in applications
    ]


def motivation_mixes(
    applications: Optional[Sequence[ApplicationSpec]] = None,
    throughputs_mbps: Sequence[float] = MOTIVATION_RNG_THROUGHPUTS_MBPS,
) -> List[WorkloadMix]:
    """The Table 2 motivation workloads: every app x every RNG throughput."""
    applications = list(applications) if applications is not None else list(ALL_APPLICATIONS)
    mixes: List[WorkloadMix] = []
    for throughput in throughputs_mbps:
        mixes.extend(dual_core_mixes(applications, throughput))
    return mixes


def four_core_group_mixes(
    workloads_per_group: int = 10,
    rng_throughput_mbps: float = DEFAULT_RNG_THROUGHPUT_MBPS,
    seed: int = 0,
) -> Dict[str, List[WorkloadMix]]:
    """The 4-core LLLS / LLHS / LHHS / HHHS workload groups (Table 3)."""
    return _grouped_mixes(
        group_signatures=("LLL", "LLH", "LHH", "HHH"),
        workloads_per_group=workloads_per_group,
        rng_throughput_mbps=rng_throughput_mbps,
        seed=seed,
    )


def multi_core_group_mixes(
    num_cores: int,
    workloads_per_group: int = 10,
    rng_throughput_mbps: float = DEFAULT_RNG_THROUGHPUT_MBPS,
    seed: int = 0,
) -> Dict[str, List[WorkloadMix]]:
    """The 8- or 16-core L / M / H workload groups (Table 3).

    Each workload has ``num_cores - 1`` non-RNG applications of a single
    memory-intensity category plus one RNG benchmark.
    """
    if num_cores < 2:
        raise ValueError("num_cores must be at least 2")
    signatures = tuple(category * (num_cores - 1) for category in ("L", "M", "H"))
    return _grouped_mixes(
        group_signatures=signatures,
        workloads_per_group=workloads_per_group,
        rng_throughput_mbps=rng_throughput_mbps,
        seed=seed,
        group_labels=("L", "M", "H"),
    )


def _grouped_mixes(
    group_signatures: Sequence[str],
    workloads_per_group: int,
    rng_throughput_mbps: float,
    seed: int,
    group_labels: Optional[Sequence[str]] = None,
) -> Dict[str, List[WorkloadMix]]:
    if workloads_per_group <= 0:
        raise ValueError("workloads_per_group must be positive")
    categories = applications_by_category()
    rng_generator = np.random.default_rng(seed)
    labels = group_labels or [signature + "S" for signature in group_signatures]

    groups: Dict[str, List[WorkloadMix]] = {}
    for label, signature in zip(labels, group_signatures):
        mixes: List[WorkloadMix] = []
        for workload_index in range(workloads_per_group):
            slots: List = []
            for category in signature:
                pool = categories[category]
                slots.append(pool[int(rng_generator.integers(len(pool)))])
            slots.append(standard_rng_benchmark(rng_throughput_mbps))
            mixes.append(WorkloadMix(name=f"{label}-{workload_index}", slots=slots))
        groups[label] = mixes
    return groups


def build_traces(
    mix: WorkloadMix,
    num_instructions: int,
    seed: int = 0,
    mapping: Optional[AddressMapping] = None,
) -> List[Trace]:
    """Materialise a workload mix into one trace per core.

    Every core receives a distinct row offset (multiples of
    ``ROW_OFFSET_STRIDE``) and a distinct derived seed, so different
    slots of the same application are decorrelated.
    """
    if num_instructions <= 0:
        raise ValueError("num_instructions must be positive")
    traces: List[Trace] = []
    for slot_index, spec in enumerate(mix.slots):
        slot_seed = seed * 1009 + slot_index
        row_offset = slot_index * ROW_OFFSET_STRIDE
        if isinstance(spec, RNGBenchmarkSpec):
            trace = generate_rng_trace(
                spec,
                num_instructions,
                seed=slot_seed,
                mapping=mapping,
                row_offset=row_offset,
            )
        else:
            trace = generate_application_trace(
                spec,
                num_instructions,
                seed=slot_seed,
                mapping=mapping,
                row_offset=row_offset,
            )
        traces.append(trace)
    return traces
