"""The 43 single-core applications of the paper's evaluation.

Section 7 evaluates 43 applications drawn from SPEC CPU2006, TPC, STREAM,
MediaBench and YCSB, grouped into low (MPKI < 1), medium (1 <= MPKI < 10)
and high (MPKI >= 10) memory intensity.  The original SimPoint traces are
not redistributable; this module defines synthetic stand-ins whose MPKI,
row-buffer locality and write fraction approximate the published
behaviour of each benchmark, ordered so that the per-application figures
(Figures 1, 6, 9, 10, 11, 13, 15, 16) show the same left-to-right
intensity trend as the paper.

``PAPER_FIGURE_APPS`` lists the 22 applications that appear on the x-axis
of the paper's per-application plots; ``ALL_APPLICATIONS`` contains the
full 43-entry roster used for averages.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .spec import ApplicationSpec

# ---------------------------------------------------------------------------
# Applications shown on the per-application x-axes of the paper's figures,
# in the paper's order (roughly increasing memory intensity).
# ---------------------------------------------------------------------------

_FIGURE_APPS: Sequence[ApplicationSpec] = (
    ApplicationSpec("ycsb3", mpki=0.4, row_locality=0.30, write_fraction=0.30, footprint_rows=256),
    ApplicationSpec("ycsb4", mpki=0.5, row_locality=0.30, write_fraction=0.35, footprint_rows=256),
    ApplicationSpec("ycsb2", mpki=0.6, row_locality=0.30, write_fraction=0.30, footprint_rows=256),
    ApplicationSpec("ycsb1", mpki=0.8, row_locality=0.30, write_fraction=0.30, footprint_rows=256),
    ApplicationSpec("sphinx3", mpki=1.8, row_locality=0.55, write_fraction=0.15, footprint_rows=128),
    ApplicationSpec("ycsb0", mpki=1.2, row_locality=0.30, write_fraction=0.30, footprint_rows=256),
    ApplicationSpec("jp2d", mpki=2.4, row_locality=0.65, write_fraction=0.30, footprint_rows=96),
    ApplicationSpec("tpcc64", mpki=3.0, row_locality=0.35, write_fraction=0.40, footprint_rows=512),
    ApplicationSpec("jp2e", mpki=4.2, row_locality=0.65, write_fraction=0.35, footprint_rows=96),
    ApplicationSpec("wcount0", mpki=5.0, row_locality=0.45, write_fraction=0.30, footprint_rows=256),
    ApplicationSpec("cactus", mpki=5.6, row_locality=0.50, write_fraction=0.25, footprint_rows=128),
    ApplicationSpec("astar", mpki=6.4, row_locality=0.40, write_fraction=0.25, footprint_rows=256),
    ApplicationSpec("tpch17", mpki=7.2, row_locality=0.45, write_fraction=0.30, footprint_rows=512),
    ApplicationSpec("soplex", mpki=8.2, row_locality=0.55, write_fraction=0.25, footprint_rows=128),
    ApplicationSpec("milc", mpki=9.2, row_locality=0.60, write_fraction=0.30, footprint_rows=128),
    ApplicationSpec("gems", mpki=10.5, row_locality=0.60, write_fraction=0.30, footprint_rows=128),
    ApplicationSpec("leslie3d", mpki=11.5, row_locality=0.70, write_fraction=0.30, footprint_rows=128),
    ApplicationSpec("tpch2", mpki=12.5, row_locality=0.45, write_fraction=0.30, footprint_rows=512),
    ApplicationSpec("zeusmp", mpki=14.0, row_locality=0.60, write_fraction=0.30, footprint_rows=128),
    ApplicationSpec("lbm", mpki=20.0, row_locality=0.80, write_fraction=0.45, footprint_rows=96),
    ApplicationSpec("mcf", mpki=25.0, row_locality=0.20, write_fraction=0.30, footprint_rows=1024),
    ApplicationSpec("libq", mpki=27.0, row_locality=0.90, write_fraction=0.10, footprint_rows=64),
    ApplicationSpec("h264d", mpki=16.0, row_locality=0.55, write_fraction=0.25, footprint_rows=128),
)

# ---------------------------------------------------------------------------
# The remaining applications of the 43-entry roster (low/medium intensity
# SPEC CPU2006, STREAM and TPC stand-ins).
# ---------------------------------------------------------------------------

_EXTRA_APPS: Sequence[ApplicationSpec] = (
    ApplicationSpec("povray", mpki=0.05, row_locality=0.50, write_fraction=0.10, footprint_rows=32),
    ApplicationSpec("gamess", mpki=0.08, row_locality=0.50, write_fraction=0.10, footprint_rows=32),
    ApplicationSpec("namd", mpki=0.20, row_locality=0.55, write_fraction=0.15, footprint_rows=64),
    ApplicationSpec("perlbench", mpki=0.30, row_locality=0.45, write_fraction=0.20, footprint_rows=64),
    ApplicationSpec("tonto", mpki=0.35, row_locality=0.50, write_fraction=0.15, footprint_rows=64),
    ApplicationSpec("sjeng", mpki=0.40, row_locality=0.35, write_fraction=0.20, footprint_rows=128),
    ApplicationSpec("h264ref", mpki=0.50, row_locality=0.60, write_fraction=0.20, footprint_rows=64),
    ApplicationSpec("gobmk", mpki=0.60, row_locality=0.40, write_fraction=0.20, footprint_rows=128),
    ApplicationSpec("gcc", mpki=0.70, row_locality=0.45, write_fraction=0.25, footprint_rows=128),
    ApplicationSpec("gromacs", mpki=0.75, row_locality=0.55, write_fraction=0.20, footprint_rows=64),
    ApplicationSpec("hmmer", mpki=0.90, row_locality=0.60, write_fraction=0.20, footprint_rows=64),
    ApplicationSpec("bzip2", mpki=1.2, row_locality=0.55, write_fraction=0.30, footprint_rows=128),
    ApplicationSpec("dealII", mpki=1.4, row_locality=0.55, write_fraction=0.25, footprint_rows=128),
    ApplicationSpec("calculix", mpki=1.6, row_locality=0.60, write_fraction=0.20, footprint_rows=96),
    ApplicationSpec("xalancbmk", mpki=2.5, row_locality=0.40, write_fraction=0.30, footprint_rows=256),
    ApplicationSpec("wrf", mpki=6.0, row_locality=0.65, write_fraction=0.30, footprint_rows=128),
    ApplicationSpec("omnetpp", mpki=8.0, row_locality=0.30, write_fraction=0.35, footprint_rows=512),
    ApplicationSpec("bwaves", mpki=12.0, row_locality=0.75, write_fraction=0.30, footprint_rows=96),
    ApplicationSpec("stream_copy", mpki=22.0, row_locality=0.90, write_fraction=0.50, footprint_rows=64),
    ApplicationSpec("stream_triad", mpki=24.0, row_locality=0.90, write_fraction=0.35, footprint_rows=64),
)

#: Applications appearing on the paper's per-application figure x-axes.
PAPER_FIGURE_APPS: List[ApplicationSpec] = list(_FIGURE_APPS)

#: The complete 43-application roster.
ALL_APPLICATIONS: List[ApplicationSpec] = list(_FIGURE_APPS) + list(_EXTRA_APPS)

#: Name-indexed lookup table of every application.
APPLICATIONS_BY_NAME: Dict[str, ApplicationSpec] = {app.name: app for app in ALL_APPLICATIONS}


def application(name: str) -> ApplicationSpec:
    """Look up an application specification by benchmark name."""
    try:
        return APPLICATIONS_BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; see repro.workloads.ALL_APPLICATIONS"
        ) from None


def applications_by_category() -> Dict[str, List[ApplicationSpec]]:
    """Group the full roster by memory-intensity category (L/M/H)."""
    groups: Dict[str, List[ApplicationSpec]] = {"L": [], "M": [], "H": []}
    for app in ALL_APPLICATIONS:
        groups[app.category].append(app)
    return groups


def representative_subset(count: int = 8) -> List[ApplicationSpec]:
    """A small, intensity-diverse subset used by fast experiments and tests.

    Picks applications evenly spaced across the figure roster so that low,
    medium and high memory-intensity behaviour are all represented.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if count >= len(PAPER_FIGURE_APPS):
        return list(PAPER_FIGURE_APPS)
    step = len(PAPER_FIGURE_APPS) / count
    return [PAPER_FIGURE_APPS[int(i * step)] for i in range(count)]
