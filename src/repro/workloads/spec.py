"""Workload specifications.

A *specification* describes an application abstractly (its memory
intensity, locality, or required RNG throughput); the synthetic trace
generators in :mod:`repro.workloads.synthetic` and
:mod:`repro.workloads.rng_benchmark` turn a specification into a concrete
instruction trace.  A :class:`WorkloadMix` is an ordered set of
specifications, one per core, mirroring the paper's multi-programmed
workloads (Tables 2 and 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Union


#: Memory-intensity category boundaries (misses per kilo-instruction),
#: matching Section 7: L < 1, 1 <= M < 10, H >= 10.
LOW_MPKI_BOUND = 1.0
HIGH_MPKI_BOUND = 10.0


@dataclass(frozen=True)
class ApplicationSpec:
    """A non-RNG application characterised by its memory behaviour.

    Attributes
    ----------
    name:
        Benchmark name (e.g. ``"mcf"``).
    mpki:
        Last-level-cache misses per kilo-instruction.
    row_locality:
        Probability that a miss targets the currently open row of the
        previously accessed bank (row-buffer locality).
    write_fraction:
        Fraction of misses that also produce a dirty writeback.
    footprint_rows:
        Number of distinct DRAM rows per bank the application touches.
    """

    name: str
    mpki: float
    row_locality: float = 0.5
    write_fraction: float = 0.25
    footprint_rows: int = 64

    def __post_init__(self) -> None:
        if self.mpki < 0:
            raise ValueError("mpki must be non-negative")
        if not 0.0 <= self.row_locality <= 1.0:
            raise ValueError("row_locality must be in [0, 1]")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if self.footprint_rows <= 0:
            raise ValueError("footprint_rows must be positive")

    @property
    def category(self) -> str:
        """Memory intensity category: ``"L"``, ``"M"`` or ``"H"``."""
        if self.mpki < LOW_MPKI_BOUND:
            return "L"
        if self.mpki < HIGH_MPKI_BOUND:
            return "M"
        return "H"

    @property
    def is_rng(self) -> bool:
        return False


@dataclass(frozen=True)
class RNGBenchmarkSpec:
    """A synthetic RNG application with a required RNG throughput.

    The required throughput controls how many instructions separate two
    64-bit random number requests (Section 7): the higher the required
    throughput, the shorter the gap.  ``gap_calibration`` (in units of
    instructions x Mb/s) converts the required throughput into that gap;
    its default is calibrated so that the 5 Gb/s benchmark spends roughly
    60% of its execution time in random number generation on the
    RNG-oblivious baseline system, matching the behaviour reported in
    Section 3 ("up to 58.8% of their execution time").

    RNG applications request random numbers in *bursts* (Section 1: "RNG
    requests are received in bursts and served together"): every
    ``burst_length * instructions_between_requests`` instructions the
    benchmark issues ``burst_length`` back-to-back 64-bit requests, so
    the average required throughput is unchanged but requests arrive
    clustered, as they do in real security applications that fill key or
    nonce buffers.
    """

    name: str
    throughput_mbps: float
    bits_per_request: int = 64
    burst_length: int = 4
    mpki: float = 0.5
    row_locality: float = 0.2
    gap_calibration: float = 12_800_000.0

    def __post_init__(self) -> None:
        if self.throughput_mbps <= 0:
            raise ValueError("throughput_mbps must be positive")
        if self.bits_per_request <= 0:
            raise ValueError("bits_per_request must be positive")
        if self.burst_length <= 0:
            raise ValueError("burst_length must be positive")
        if self.mpki < 0:
            raise ValueError("mpki must be non-negative")
        if not 0.0 <= self.row_locality <= 1.0:
            raise ValueError("row_locality must be in [0, 1]")
        if self.gap_calibration <= 0:
            raise ValueError("gap_calibration must be positive")

    @property
    def instructions_between_requests(self) -> int:
        """Instructions between two RNG requests implied by the throughput."""
        gap = int(round(self.gap_calibration / self.throughput_mbps))
        return max(1, gap)

    @property
    def category(self) -> str:
        """RNG benchmarks are reported in their own category ``"S"``."""
        return "S"

    @property
    def is_rng(self) -> bool:
        return True


WorkloadSpec = Union[ApplicationSpec, RNGBenchmarkSpec]


@dataclass
class WorkloadMix:
    """A multi-programmed workload: one specification per core."""

    name: str
    slots: List[WorkloadSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.slots:
            raise ValueError("a workload mix needs at least one slot")

    def __len__(self) -> int:
        return len(self.slots)

    def __iter__(self):
        return iter(self.slots)

    @property
    def num_cores(self) -> int:
        return len(self.slots)

    @property
    def rng_slots(self) -> List[int]:
        """Core indices occupied by RNG benchmarks."""
        return [index for index, spec in enumerate(self.slots) if spec.is_rng]

    @property
    def non_rng_slots(self) -> List[int]:
        """Core indices occupied by regular applications."""
        return [index for index, spec in enumerate(self.slots) if not spec.is_rng]

    @property
    def category_signature(self) -> str:
        """Concatenated category letters, e.g. ``"LLHS"`` for Table 3 groups."""
        return "".join(spec.category for spec in self.slots)


def standard_rng_benchmark(throughput_mbps: float) -> RNGBenchmarkSpec:
    """The synthetic RNG benchmark used throughout the evaluation."""
    return RNGBenchmarkSpec(name=f"rng{int(throughput_mbps)}", throughput_mbps=throughput_mbps)


#: The four RNG throughput requirements of the motivation study (Table 2).
MOTIVATION_RNG_THROUGHPUTS_MBPS: Sequence[float] = (640.0, 1280.0, 2560.0, 5120.0)

#: The default (most intensive) RNG benchmark throughput (Section 7).
DEFAULT_RNG_THROUGHPUT_MBPS = 5120.0
