"""Synthetic trace generation for non-RNG applications.

The paper drives its evaluation with SimPoint traces of SPEC CPU2006,
TPC, STREAM, MediaBench and YCSB applications.  Those traces are not
redistributable, so this reproduction generates synthetic traces whose
*memory behaviour* matches each application's published characteristics:
misses per kilo-instruction (MPKI), row-buffer locality and write
fraction.  The controller-level phenomena the paper studies (queueing,
row-hit scheduling, bank conflicts, idle-period structure) depend only on
these properties, which is why the substitution preserves the evaluation's
shape (see DESIGN.md).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..cpu.trace import Trace, TraceEntry
from ..dram.address import AddressMapping
from ..dram.timing import DRAMOrganization
from .spec import ApplicationSpec


def generate_application_trace(
    spec: ApplicationSpec,
    num_instructions: int,
    seed: int = 0,
    mapping: Optional[AddressMapping] = None,
    row_offset: int = 0,
) -> Trace:
    """Generate a synthetic trace for a non-RNG application.

    Parameters
    ----------
    spec:
        The application specification (MPKI, locality, write fraction).
    num_instructions:
        Approximate number of instructions the trace should contain.
    seed:
        Seed of the deterministic generator (same spec + seed = same trace).
    mapping:
        Address mapping used to encode DRAM coordinates into addresses.
    row_offset:
        Offset added to every row index, so that different cores of a
        multi-programmed mix touch disjoint rows (they still share
        channels and banks, which is where interference happens).
    """
    if num_instructions <= 0:
        raise ValueError("num_instructions must be positive")
    mapping = mapping or AddressMapping(DRAMOrganization())
    organization = mapping.organization
    rng = np.random.default_rng(seed)

    entries: list[TraceEntry] = []
    instructions = 0

    if spec.mpki <= 0:
        # A purely compute-bound application: one big bubble block.
        return Trace(
            [TraceEntry(bubbles=num_instructions)],
            name=spec.name,
            metadata={"spec": spec.name, "mpki": 0.0},
        )

    mean_gap = max(0.0, 1000.0 / spec.mpki - 1.0)

    # Real applications alternate between memory-intensive and compute
    # bound phases; the phase factor scales the miss gap up or down every
    # few thousand instructions.  Phases produce the bursty DRAM traffic
    # (and the mix of short and long idle periods) that the idleness
    # predictors and the random number buffer are designed around.
    phase_factors = (0.4, 1.0, 2.5)
    phase_length = max(500, num_instructions // 12)
    phase_factor = phase_factors[int(rng.integers(len(phase_factors)))]
    next_phase_change = phase_length

    # Address-generation state: current channel/bank/row/column.
    channel = int(rng.integers(organization.channels))
    bank = int(rng.integers(organization.banks_per_rank))
    row = row_offset % organization.rows_per_bank
    column = 0

    max_row = organization.rows_per_bank

    while instructions < num_instructions:
        if instructions >= next_phase_change:
            phase_factor = phase_factors[int(rng.integers(len(phase_factors)))]
            next_phase_change = instructions + phase_length
        effective_gap = mean_gap * phase_factor
        if effective_gap > 0:
            bubbles = int(rng.geometric(1.0 / (effective_gap + 1.0)) - 1)
        else:
            bubbles = 0

        # Next miss address: stay in the open row with probability
        # ``row_locality``, otherwise jump to a random row/bank/channel.
        if rng.random() < spec.row_locality:
            column = (column + 1) % organization.columns_per_row
        else:
            channel = int(rng.integers(organization.channels))
            bank = int(rng.integers(organization.banks_per_rank))
            row = (row_offset + int(rng.integers(spec.footprint_rows))) % max_row
            column = int(rng.integers(organization.columns_per_row))
        address = mapping.encode(channel=channel, bank=bank, row=row, column=column)

        write_address = None
        if rng.random() < spec.write_fraction:
            # Dirty eviction of another block in the application footprint.
            evict_row = (row_offset + int(rng.integers(spec.footprint_rows))) % max_row
            write_address = mapping.encode(
                channel=int(rng.integers(organization.channels)),
                bank=int(rng.integers(organization.banks_per_rank)),
                row=evict_row,
                column=int(rng.integers(organization.columns_per_row)),
            )

        entries.append(TraceEntry(bubbles=bubbles, address=address, write_address=write_address))
        instructions += bubbles + 1

    return Trace(
        entries,
        name=spec.name,
        metadata={
            "spec": spec.name,
            "mpki": spec.mpki,
            "row_locality": spec.row_locality,
            "row_offset": row_offset,
            "seed": seed,
        },
    )


def generate_streaming_trace(
    name: str,
    num_instructions: int,
    bytes_per_instruction: float = 1.0,
    mapping: Optional[AddressMapping] = None,
    row_offset: int = 0,
) -> Trace:
    """Generate a perfectly sequential streaming trace (STREAM-like).

    Useful for stress tests and for the highest-locality corner of the
    workload space: every miss is the next cache block of a long
    sequential sweep, so row-buffer hit rates approach 1.
    """
    if num_instructions <= 0:
        raise ValueError("num_instructions must be positive")
    if bytes_per_instruction <= 0:
        raise ValueError("bytes_per_instruction must be positive")
    mapping = mapping or AddressMapping(DRAMOrganization())
    block = mapping.block_size
    instructions_per_miss = max(1, int(round(block / bytes_per_instruction)))

    entries: list[TraceEntry] = []
    instructions = 0
    block_index = 0
    base = mapping.encode(channel=0, bank=0, row=row_offset, column=0)
    while instructions < num_instructions:
        address = base + block_index * block
        entries.append(TraceEntry(bubbles=instructions_per_miss - 1, address=address))
        instructions += instructions_per_miss
        block_index += 1
    return Trace(entries, name=name, metadata={"spec": name, "streaming": True})
