"""Synthetic RNG benchmark traces.

The paper evaluates synthetic RNG applications whose required RNG
throughput is controlled by the number of instructions between two 64-bit
random number requests (Section 7).  The benchmarks are not memory
intensive in terms of regular requests but their RNG requests read from
all banks across all channels.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..cpu.trace import Trace, TraceEntry
from ..dram.address import AddressMapping
from ..dram.timing import DRAMOrganization
from .spec import RNGBenchmarkSpec


def generate_rng_trace(
    spec: RNGBenchmarkSpec,
    num_instructions: int,
    seed: int = 0,
    mapping: Optional[AddressMapping] = None,
    row_offset: int = 0,
) -> Trace:
    """Generate the trace of a synthetic RNG benchmark.

    The trace issues bursts of ``spec.burst_length`` back-to-back 64-bit
    RNG requests, separated by compute phases sized so that the average
    required RNG throughput matches ``spec.throughput_mbps``; a light
    stream of regular memory reads (``spec.mpki``) is sprinkled into the
    compute phases.
    """
    if num_instructions <= 0:
        raise ValueError("num_instructions must be positive")
    mapping = mapping or AddressMapping(DRAMOrganization())
    organization = mapping.organization
    rng = np.random.default_rng(seed)

    burst = spec.burst_length
    gap = spec.instructions_between_requests * burst
    reads_per_gap = spec.mpki * gap / 1000.0

    entries: list[TraceEntry] = []
    instructions = 0
    read_accumulator = 0.0
    max_row = organization.rows_per_bank

    while instructions < num_instructions:
        # Compute phase between two bursts, with occasional regular reads
        # sprinkled in proportionally to the benchmark's MPKI.
        remaining = gap
        read_accumulator += reads_per_gap
        reads_this_gap = int(read_accumulator)
        read_accumulator -= reads_this_gap

        if reads_this_gap > 0:
            per_read_gap = max(0, remaining // (reads_this_gap + 1) - 1)
            for _ in range(reads_this_gap):
                address = mapping.encode(
                    channel=int(rng.integers(organization.channels)),
                    bank=int(rng.integers(organization.banks_per_rank)),
                    row=(row_offset + int(rng.integers(64))) % max_row,
                    column=int(rng.integers(organization.columns_per_row)),
                )
                entries.append(TraceEntry(bubbles=per_read_gap, address=address))
                instructions += per_read_gap + 1
                remaining -= per_read_gap + 1

        bubbles = max(0, remaining - burst)
        entries.append(TraceEntry(bubbles=bubbles, rng_bits=spec.bits_per_request))
        instructions += bubbles + 1
        for _ in range(burst - 1):
            entries.append(TraceEntry(bubbles=0, rng_bits=spec.bits_per_request))
            instructions += 1

    return Trace(
        entries,
        name=spec.name,
        metadata={
            "spec": spec.name,
            "throughput_mbps": spec.throughput_mbps,
            "instructions_between_requests": gap,
            "seed": seed,
        },
    )
