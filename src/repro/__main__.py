"""Command-line entry point: regenerate any of the paper's experiments.

Usage::

    python -m repro --list
    python -m repro fig6
    python -m repro fig10 --instructions 40000 --full
"""

from __future__ import annotations

import argparse
import sys

from .experiments import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate a DR-STRaNGe paper experiment (figure or section).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id, e.g. fig6, fig10, sec8.9 (see --list)",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--instructions", type=int, default=None, help="per-core instruction count override"
    )
    parser.add_argument(
        "--full", action="store_true", help="use the full 43-application roster (slow)"
    )
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        print("Available experiments:")
        for key, module in sorted(EXPERIMENTS.items()):
            summary = (module.__doc__ or "").strip().splitlines()[0]
            print(f"  {key:<8} {summary}")
        return 0

    key = args.experiment.lower()
    if key not in EXPERIMENTS:
        print(f"unknown experiment {key!r}; use --list to see the available ids", file=sys.stderr)
        return 2

    module = EXPERIMENTS[key]
    kwargs = {}
    if args.instructions is not None:
        kwargs["instructions"] = args.instructions
    if args.full:
        kwargs["full"] = True
    try:
        data = module.run(**kwargs)
    except TypeError:
        # Some experiments (multi-core studies) do not take the ``full`` flag.
        kwargs.pop("full", None)
        data = module.run(**kwargs)
    print(module.format_table(data))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
