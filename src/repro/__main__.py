"""Command-line entry point: regenerate any of the paper's experiments.

Usage::

    python -m repro --list
    python -m repro fig6
    python -m repro fig10 --instructions 40000 --full
    python -m repro fig7 --jobs 8                  # parallel simulation
    python -m repro sweep fig6 fig11 --jobs 4      # several figures, one batch
    python -m repro fig8 --json fig8.json          # export raw data
    python -m repro fig7 --executor distributed --workers 4
    python -m repro worker --connect HOST:PORT     # join a distributed run
    python -m repro cache                          # result-store statistics

Every invocation routes through :mod:`repro.orchestration`: simulation
points are cached on disk (``--cache-dir``, default ``.repro-cache`` or
``$REPRO_CACHE_DIR``), so re-running a figure — or any figure sharing
simulations with it — is served from the cache.  ``--jobs N`` fans the
uncached points of the run across ``N`` worker processes, and
``--executor distributed`` shards them across coordinator-fed workers
(self-spawned on localhost with ``--workers N``, or joined from other
machines with ``repro worker --connect``); the printed tables are
bit-identical to a serial run either way.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys

from .experiments import EXPERIMENTS
from .orchestration import (
    ProcessPoolExecutor,
    ResultCache,
    SerialExecutor,
    SweepStats,
    dump_json,
    format_experiment,
    format_stats,
    format_sweep,
    open_store,
    sweep_experiments,
)
from .sim.config import ENGINES
from .sim.runner import engine_override

DEFAULT_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")

EXECUTORS = ("serial", "process", "distributed")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate DR-STRaNGe paper experiments (figures or sections).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="experiment",
        help=(
            "experiment id, e.g. fig6, fig10, sec8.9 (see --list); "
            "or 'sweep' followed by several ids to regenerate them as one batch"
        ),
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--instructions", type=int, default=None, help="per-core instruction count override"
    )
    parser.add_argument(
        "--full", action="store_true", help="use the full 43-application roster (slow)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="simulate independent points on N worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTORS,
        default=None,
        help=(
            "execution backend for uncached points: 'serial', 'process' "
            "(local pool of --jobs workers; what plain --jobs N implies) or "
            "'distributed' (coordinator/worker sharding across machines)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "with --executor distributed: self-spawn N localhost worker "
            "processes (default: 0 — wait for external `repro worker` joins)"
        ),
    )
    parser.add_argument(
        "--bind",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help=(
            "with --executor distributed: coordinator listen address "
            "(default: 127.0.0.1:0 — loopback, ephemeral port; use e.g. "
            "0.0.0.0:9876 to accept workers from other machines)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"persistent result cache directory (default: {DEFAULT_CACHE_DIR!r})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not persist simulation results to disk for this run",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="OUT",
        help="also dump the raw experiment data as JSON to OUT ('-' for stdout)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help=(
            "simulation engine: 'event' (cycle-skipping, default) or 'tick' "
            "(cycle-by-cycle reference); results are bit-identical either way"
        ),
    )
    return parser


def _print_experiment_list() -> None:
    print("Available experiments:")
    for key, module in sorted(EXPERIMENTS.items()):
        summary = (module.__doc__ or "").strip().splitlines()[0]
        print(f"  {key:<8} {summary}")


# ----------------------------------------------------------------- worker


def _worker_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description=(
            "Join a distributed run: lease simulation points from a coordinator, "
            "simulate them locally, and stream the results back."
        ),
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="address of the coordinator (printed by the coordinating `repro` run)",
    )
    parser.add_argument(
        "--id", default=None, metavar="NAME", help="worker name (default: hostname-pid)"
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="override the simulation engine for this worker (results are identical)",
    )
    args = parser.parse_args(argv)

    from .distributed import parse_address, run_worker

    try:
        parse_address(args.connect)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        with contextlib.ExitStack() as stack:
            if args.engine is not None:
                stack.enter_context(engine_override(args.engine))
            run_worker(args.connect, worker_id=args.id)
    except (OSError, ConnectionError) as exc:
        print(f"worker could not serve {args.connect}: {exc}", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------- cache


def _cache_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect (or clear) the persistent content-addressed result store.",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR!r})",
    )
    parser.add_argument(
        "--clear", action="store_true", help="delete every cached entry and exit"
    )
    args = parser.parse_args(argv)

    store = ResultCache(args.cache_dir)
    if args.clear:
        removed = len(store)
        store.clear()
        print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'} from {store.cache_dir}")
        return 0

    stats = store.stats()
    print(f"result cache at {store.cache_dir}")
    print(f"  entries:     {stats['entries']}")
    print(f"  total bytes: {stats['total_bytes']}")
    last = store.last_run()
    if last is None:
        print("  last run:    (none recorded)")
    else:
        hits, misses = last.get("hits", 0), last.get("misses", 0)
        line = f"  last run:    {hits} hits, {misses} misses"
        if "executed" in last:
            line += f"; {last.get('planned', 0)} points planned, {last['executed']} executed"
        print(line)
    return 0


# ----------------------------------------------------------------- experiments


def _make_executor(args):
    """The executor implied by ``--executor``/``--jobs`` (None = legacy path)."""
    if args.executor is None:
        return None
    if args.executor == "serial":
        return SerialExecutor()
    if args.executor == "process":
        return ProcessPoolExecutor(jobs=args.jobs)
    from .distributed import DistributedExecutor, parse_address

    host, port = parse_address(args.bind)
    return DistributedExecutor(host, port, spawn_workers=args.workers)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    # `worker` and `cache` have their own flags, so they are dispatched
    # before the experiment parser ever sees the command line.
    if argv and argv[0] == "worker":
        return _worker_main(argv[1:])
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])

    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        _print_experiment_list()
        return 0

    tokens = [token.lower() for token in args.experiments]
    sweep_mode = tokens[0] == "sweep"
    keys = tokens[1:] if sweep_mode else tokens
    if sweep_mode and not keys:
        print("sweep needs at least one experiment id, e.g. `sweep fig6 fig11`", file=sys.stderr)
        return 2
    if not sweep_mode and len(keys) > 1:
        print(
            "several experiment ids given; did you mean `repro sweep "
            + " ".join(keys)
            + "`?",
            file=sys.stderr,
        )
        return 2
    unknown = [key for key in keys if key not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s) {', '.join(map(repr, unknown))}; "
            "use --list to see the available ids",
            file=sys.stderr,
        )
        return 2

    # Only forward the knobs each experiment's run() actually supports;
    # repro.orchestration filters per-module via inspect.signature.
    kwargs = {}
    if args.instructions is not None:
        kwargs["instructions"] = args.instructions
    if args.full:
        kwargs["full"] = True

    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2
    if args.workers < 0:
        print("--workers must be non-negative", file=sys.stderr)
        return 2
    if args.workers and args.executor != "distributed":
        print("--workers only makes sense with --executor distributed", file=sys.stderr)
        return 2
    if args.jobs > 1 and args.executor in ("serial", "distributed"):
        print(
            f"--jobs is a local-pool knob; it has no effect with --executor {args.executor} "
            "(use --workers to size a distributed run)",
            file=sys.stderr,
        )
        return 2
    try:
        executor = _make_executor(args)
    except ValueError as exc:
        print(f"--bind: {exc}", file=sys.stderr)
        return 2

    store = None if args.no_cache else open_store(args.cache_dir)
    stats = SweepStats()
    with contextlib.ExitStack() as stack:
        if args.engine is not None:
            # Applied at the simulate_traces choke point so every
            # simulation of this run (including orchestration workers)
            # uses the engine; scoped so an exception mid-sweep cannot
            # leak the override into later in-process simulations.
            stack.enter_context(engine_override(args.engine))
        results = sweep_experiments(
            keys, jobs=args.jobs, store=store, stats=stats, executor=executor, **kwargs
        )

    # With `--json -` the JSON document owns stdout; tables move to stderr
    # so the output stays pipeable into jq & co.
    tables = sys.stderr if args.json == "-" else sys.stdout
    if sweep_mode:
        print(format_sweep(results), file=tables)
    else:
        key, data = next(iter(results.items()))
        print(format_experiment(key, data), file=tables)
    print(format_stats(stats), file=sys.stderr)

    if args.json is not None:
        dump_json(results, args.json)

    if isinstance(store, ResultCache):
        # Best-effort bookkeeping for `repro cache`: a read-only or full
        # cache directory must never cost the user the run's output.
        try:
            store.record_last_run(
                {"planned": stats.planned, "executed": stats.executed, "reused": stats.reused}
            )
        except OSError:
            pass
    return 0


if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # The stdout reader went away (e.g. `repro cache | grep -q …`):
        # exit quietly like a well-behaved unix filter instead of
        # tracebacking.  Redirect stdout to devnull so the interpreter's
        # shutdown flush cannot raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 141  # 128 + SIGPIPE
    raise SystemExit(code)
