"""Command-line entry point: regenerate any of the paper's experiments.

Usage::

    python -m repro --list
    python -m repro fig6
    python -m repro fig10 --instructions 40000 --full
    python -m repro fig7 --jobs 8                  # parallel simulation
    python -m repro sweep fig6 fig11 --jobs 4      # several figures, one batch
    python -m repro fig8 --json fig8.json          # export raw data
    python -m repro fig7 --target process:4        # where points execute
    python -m repro fig7 --target HOST:PORT        # submit to a sweep service
    python -m repro serve --bind 0.0.0.0:7777 --workers 4   # run the service
    python -m repro submit fig5 fig6 --target HOST:PORT     # submit + wait
    python -m repro jobs --target HOST:PORT        # list the service's jobs
    python -m repro worker --target HOST:PORT      # join a fleet
    python -m repro fig6 --checkpoint-interval 20000   # resumable simulation
    python -m repro checkpoint list                # stored snapshots
    python -m repro cache                          # result-store statistics
    python -m repro fig18 --engine compiled        # config-specialised engine
    python -m repro codegen dump dr-strange        # emitted compiled-engine source
    python -m repro status --target HOST:PORT      # live coordinator/service view
    python -m repro watch --target HOST:PORT       # stream structured events
    python -m repro runs                           # list persisted run manifests
    python -m repro trace export --run ID          # Perfetto-loadable trace JSON

Every invocation routes through :mod:`repro.orchestration`: simulation
points are cached on disk (``--cache-dir``, default ``.repro-cache`` or
``$REPRO_CACHE_DIR``), so re-running a figure — or any figure sharing
simulations with it — is served from the cache.  Execution is selected
with one spec, ``--target {local,process[:N],HOST:PORT}``: serial in
this process, a local process pool, or submission to a running
``repro serve`` daemon; the printed tables are bit-identical to a
serial run in every case.  The pre-service flags (``--executor``,
``--workers``, ``--bind``, ``--connect``) keep working as deprecated
aliases.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
import time

from . import telemetry
from .experiments import EXPERIMENTS
from .telemetry import logs as telemetry_logs
from .orchestration import (
    ProcessPoolExecutor,
    ResultCache,
    SerialExecutor,
    SweepRequest,
    SweepStats,
    dump_json,
    format_experiment,
    format_stats,
    format_sweep,
    open_store,
    parse_target,
    sweep_experiments,
)
from .sim.config import ENGINES, engine_help

DEFAULT_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")

EXECUTORS = ("serial", "process", "distributed")


def _warn_deprecated(flag: str, replacement: str) -> None:
    print(
        f"warning: {flag} is deprecated; use {replacement} instead",
        file=sys.stderr,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate DR-STRaNGe paper experiments (figures or sections).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="experiment",
        help=(
            "experiment id, e.g. fig6, fig10, sec8.9 (see --list); "
            "or 'sweep' followed by several ids to regenerate them as one batch"
        ),
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--instructions", type=int, default=None, help="per-core instruction count override"
    )
    parser.add_argument(
        "--full", action="store_true", help="use the full 43-application roster (slow)"
    )
    parser.add_argument(
        "--target",
        default=None,
        metavar="SPEC",
        help=(
            "where uncached points execute: 'local' (serial, in-process), "
            "'process[:N]' (local pool of N workers) or 'HOST:PORT' (submit "
            "the run to a `repro serve` daemon); default: local"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="simulate independent points on N worker processes (default: 1, serial)",
    )
    # ------------------------------------------------------------------
    # Deprecated execution flags, kept as working aliases of --target.
    # `None` defaults distinguish "not given" from every meaningful value
    # so explicit use (and only explicit use) draws the warning.
    parser.add_argument(
        "--executor",
        choices=EXECUTORS,
        default=None,
        help="(deprecated; use --target) execution backend for uncached points",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "(deprecated; use --target or `repro serve --workers`) with "
            "--executor distributed: self-spawn N localhost worker processes"
        ),
    )
    parser.add_argument(
        "--bind",
        default=None,
        metavar="HOST:PORT",
        help=(
            "(deprecated; use `repro serve --bind`) with --executor "
            "distributed: coordinator listen address (default: 127.0.0.1:0)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"persistent result cache directory (default: {DEFAULT_CACHE_DIR!r})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not persist simulation results to disk for this run",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="OUT",
        help="also dump the raw experiment data as JSON to OUT ('-' for stdout)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        # Derived from the engine registry so the help text can never
        # drift from the engines `make_engine` actually accepts.
        help=engine_help(),
    )
    parser.add_argument(
        "--no-telemetry",
        action="store_true",
        help=(
            "disable metrics collection and manifest writing for this run "
            "(results are bit-identical either way; telemetry is observe-only)"
        ),
    )
    parser.add_argument(
        "--no-trace",
        action="store_true",
        help=(
            "do not emit structured trace events or write the run's event "
            "journal (results are byte-identical either way)"
        ),
    )
    parser.add_argument(
        "--profile-engine",
        action="store_true",
        help=(
            "record engine phase histograms (serve-window lengths, skip "
            "lengths, dispatch counts) into the run manifest; view with "
            "`repro trace profile`; observe-only, results are identical"
        ),
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        metavar="CYCLES",
        help=(
            "snapshot in-process simulations every CYCLES simulated cycles "
            "into <cache-dir>/checkpoints, resuming interrupted or "
            "warmup-sharing runs from the latest snapshot (results are "
            "bit-identical either way); with a distributed executor the "
            "self-spawned workers stream snapshots to the coordinator "
            "instead"
        ),
    )
    _add_verbosity_flags(parser)
    return parser


def _add_verbosity_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--verbose",
        "-v",
        action="count",
        default=0,
        help="more diagnostics (repeat for debug-level)",
    )
    parser.add_argument(
        "--quiet",
        "-q",
        action="count",
        default=0,
        help="fewer diagnostics (repeat to silence warnings too)",
    )


def _add_service_target(parser: argparse.ArgumentParser, *, required: bool = True) -> None:
    """The ``--target HOST:PORT`` / deprecated ``--connect`` pair used by
    every verb that talks to a running daemon."""
    parser.add_argument(
        "--target",
        default=None,
        metavar="HOST:PORT",
        help="address of the daemon (printed by `repro serve`)",
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="(deprecated alias of --target)",
    )
    parser.set_defaults(_target_required=required)


def _resolve_service_target(args, parser: argparse.ArgumentParser) -> str | None:
    if args.target is not None and args.connect is not None:
        parser.error("--target and --connect are mutually exclusive")
    if args.connect is not None:
        _warn_deprecated("--connect", "--target")
        return args.connect
    if args.target is None and getattr(args, "_target_required", True):
        parser.error("--target HOST:PORT is required")
    return args.target


def _print_experiment_list() -> None:
    print("Available experiments:")
    for key, module in sorted(EXPERIMENTS.items()):
        summary = (module.__doc__ or "").strip().splitlines()[0]
        print(f"  {key:<8} {summary}")


# ----------------------------------------------------------------- worker


def _worker_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description=(
            "Join a fleet: lease simulation points from a coordinator or a "
            "sweep service, simulate them locally, and stream the results back."
        ),
    )
    _add_service_target(parser)
    parser.add_argument(
        "--id", default=None, metavar="NAME", help="worker name (default: hostname-pid)"
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="override the simulation engine for this worker (results are identical)",
    )
    parser.add_argument(
        "--profile-engine",
        action="store_true",
        help=(
            "record engine phase histograms for every point this worker "
            "simulates (folded into the coordinator's metrics; observe-only)"
        ),
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        metavar="CYCLES",
        help=(
            "stream a snapshot of the running point to the coordinator "
            "every CYCLES simulated cycles, so if this worker is killed "
            "its replacement resumes from the last snapshot instead of "
            "restarting (results are bit-identical either way)"
        ),
    )
    _add_verbosity_flags(parser)
    args = parser.parse_args(argv)
    telemetry_logs.configure(verbose=args.verbose, quiet=args.quiet)
    target = _resolve_service_target(args, parser)
    if args.checkpoint_interval is not None and args.checkpoint_interval < 1:
        print("--checkpoint-interval must be at least 1 cycle", file=sys.stderr)
        return 2

    from .distributed import parse_address, run_worker
    from .sim.runner import engine_override

    try:
        parse_address(target)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        with contextlib.ExitStack() as stack:
            if args.engine is not None:
                stack.enter_context(engine_override(args.engine))
            if args.profile_engine:
                stack.enter_context(telemetry.profiled())
            run_worker(target, worker_id=args.id, checkpoint_interval=args.checkpoint_interval)
    except (OSError, ConnectionError) as exc:
        print(f"worker could not serve {target}: {exc}", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------- cache


def _cache_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect (or clear) the persistent content-addressed result store.",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR!r})",
    )
    parser.add_argument(
        "--clear",
        action="store_true",
        help="delete every cached entry (and the run manifests they produced) and exit",
    )
    args = parser.parse_args(argv)

    from .sim import codegen

    codegen.set_cache_dir(args.cache_dir)
    store = ResultCache(args.cache_dir)
    if args.clear:
        removed = len(store)
        store.clear()
        generated = codegen.stats()["entries"]
        codegen.clear()
        print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'} from {store.cache_dir}")
        print(
            f"cleared {generated} generated source{'' if generated == 1 else 's'} "
            f"from {codegen.cache_dir()}"
        )
        return 0

    stats = store.stats()
    print(f"result cache at {store.cache_dir}")
    print(f"  entries:     {stats['entries']}")
    print(f"  total bytes: {stats['total_bytes']}")
    breakdown = store.stats_by_figure()
    for figure in sorted(breakdown):
        bucket = breakdown[figure]
        print(f"    {figure:<16} {bucket['entries']:>6} entries, {bucket['total_bytes']} bytes")
    last = store.last_run()
    if last is None:
        print("  last run:    (none recorded)")
    else:
        hits, misses = last.get("hits", 0), last.get("misses", 0)
        line = f"  last run:    {hits} hits, {misses} misses"
        if "executed" in last:
            line += f"; {last.get('planned', 0)} points planned, {last['executed']} executed"
        print(line)
    generated = codegen.stats()
    print(f"generated code at {codegen.cache_dir()}")
    print(f"  entries:     {generated['entries']}")
    print(f"  total bytes: {generated['total_bytes']}")
    return 0


# ----------------------------------------------------------------- codegen


def _codegen_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro codegen",
        description=(
            "Inspect the `--engine compiled` code generator: render the "
            "specialised module source for one configuration, or list the "
            "generated sources cached next to the results."
        ),
    )
    sub = parser.add_subparsers(dest="command", metavar="COMMAND")

    dump_parser = sub.add_parser(
        "dump",
        help="render the specialised module for a configuration and print it",
        description=(
            "Render the module the compiled engine would execute for one "
            "configuration — channel/core loops unrolled, scheduler scans "
            "inlined, design-constant branches folded — and print it "
            "(deterministic: the same configuration always renders the "
            "same bytes).  The content digest goes to stderr."
        ),
    )
    from .sim.config import DESIGNS

    dump_parser.add_argument(
        "design",
        choices=DESIGNS,
        help="system design point the module is specialised for",
    )
    dump_parser.add_argument(
        "--scheduler",
        choices=("fr-fcfs", "fr-fcfs+cap", "bliss"),
        default=None,
        help="request scheduler (default: the config default, fr-fcfs+cap)",
    )
    dump_parser.add_argument(
        "--cap",
        type=int,
        default=None,
        metavar="N",
        help="column cap for fr-fcfs+cap (default: the config default, 16)",
    )
    dump_parser.add_argument(
        "--cores",
        type=int,
        default=8,
        metavar="N",
        help="number of cores the module is specialised for (default: 8)",
    )
    dump_parser.add_argument(
        "--profiled",
        action="store_true",
        help="render with engine-profile hooks live (as under --profile-engine)",
    )
    dump_parser.add_argument(
        "--out",
        default="-",
        metavar="FILE",
        help="write the source to FILE instead of stdout ('-' for stdout)",
    )

    list_parser = sub.add_parser(
        "list",
        help="list the generated sources cached under <cache-dir>/codegen",
    )
    list_parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR!r})",
    )

    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2

    from .sim import codegen

    if args.command == "dump":
        from .sim.config import SimulationConfig

        overrides = {}
        if args.scheduler is not None:
            overrides["scheduler"] = args.scheduler
        if args.cap is not None:
            overrides["scheduler_cap"] = args.cap
        if args.cores < 1:
            print("--cores must be at least 1", file=sys.stderr)
            return 2
        config = SimulationConfig(design=args.design, **overrides)
        digest, source = codegen.render_source(
            config, num_cores=args.cores, profiled=args.profiled
        )
        if args.out == "-":
            sys.stdout.write(source)
        else:
            try:
                with open(args.out, "w", encoding="utf-8") as handle:
                    handle.write(source)
            except OSError as exc:
                print(f"could not write {args.out}: {exc}", file=sys.stderr)
                return 1
        print(f"digest {digest}", file=sys.stderr)
        return 0

    codegen.set_cache_dir(args.cache_dir)
    root = codegen.cache_dir()
    stats = codegen.stats()
    if not stats["entries"]:
        print(f"no generated sources under {root}")
        return 0
    print(f"generated sources under {root}")
    for entry in sorted(root.glob("*.py")):
        try:
            size = entry.stat().st_size
        except OSError:
            continue
        print(f"  {entry.stem}  {size} bytes")
    print(f"  ({stats['entries']} entries, {stats['total_bytes']} bytes)")
    return 0


# ----------------------------------------------------------------- checkpoints


def _checkpoint_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro checkpoint",
        description=(
            "Inspect the warmup/resume checkpoints under "
            "<cache-dir>/checkpoints (written by --checkpoint-interval)."
        ),
    )
    sub = parser.add_subparsers(dest="command", metavar="COMMAND")

    def _add_cache_dir(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--cache-dir",
            default=DEFAULT_CACHE_DIR,
            metavar="DIR",
            help=f"result cache directory (default: {DEFAULT_CACHE_DIR!r})",
        )

    list_parser = sub.add_parser("list", help="list every stored checkpoint")
    _add_cache_dir(list_parser)

    inspect_parser = sub.add_parser(
        "inspect", help="print one checkpoint's metadata (no kernel load)"
    )
    inspect_parser.add_argument(
        "checkpoint",
        metavar="PATH|KEY",
        help="a .ckpt file path, or a prefix-key prefix from `repro checkpoint list`",
    )
    _add_cache_dir(inspect_parser)

    clear_parser = sub.add_parser("clear", help="delete every stored checkpoint")
    _add_cache_dir(clear_parser)

    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help(sys.stderr)
        return 2

    from .orchestration.cache import CHECKPOINT_DIR, CheckpointStore
    from .sim import checkpoint as checkpoint_format

    store = CheckpointStore(os.path.join(args.cache_dir, CHECKPOINT_DIR))

    if args.command == "list":
        records = store.entries()
        if not records:
            print(f"no checkpoints under {store.directory}")
            return 0
        for record in records:
            print(f"{record['key']}  cycle {record['cycle']:>12}  {record['bytes']:>10} bytes")
        print(f"{len(records)} checkpoint(s), {sum(r['bytes'] for r in records)} bytes total")
        return 0

    if args.command == "clear":
        removed = len(store.entries())
        store.clear()
        print(f"cleared {removed} checkpoint(s) from {store.directory}")
        return 0

    # inspect
    path = args.checkpoint
    if not os.path.isfile(path):
        matches = [r for r in store.entries() if r["key"].startswith(args.checkpoint)]
        if len(matches) != 1:
            hint = "no checkpoint" if not matches else f"{len(matches)} checkpoints"
            print(
                f"{hint} matching {args.checkpoint!r} under {store.directory} "
                "(see `repro checkpoint list`)",
                file=sys.stderr,
            )
            return 1
        path = matches[0]["path"]
    try:
        with open(path, "rb") as handle:
            data = handle.read()
        meta = checkpoint_format.describe(data)
    except OSError as exc:
        print(f"could not read {path}: {exc}", file=sys.stderr)
        return 1
    except checkpoint_format.CheckpointError as exc:
        print(f"{path}: {exc}", file=sys.stderr)
        return 1
    print(f"checkpoint {path}")
    print(f"  format:    v{meta.get('format')}")
    print(f"  cycle:     {meta.get('cycle')}")
    print(f"  engine:    {meta.get('engine')}  (resumable under either engine)")
    print(f"  design:    {meta.get('design')}")
    print(f"  prefix:    {meta.get('prefix')}")
    print(f"  digest:    {meta.get('digest')}")
    print(f"  traces:    {', '.join(meta.get('traces', [])) or '(none)'}")
    print(f"  kernel:    {meta.get('kernel_bytes')} bytes")
    return 0


# ----------------------------------------------------------------- status & runs


def _status_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro status",
        description=(
            "Render a live status view of a running coordinator or sweep service: "
            "fleet progress, points/sec, per-worker liveness and lease state, "
            "cache hit rate, per-figure ETA — and, for a service, the jobs table."
        ),
    )
    _add_service_target(parser)
    parser.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="poll every SECONDS instead of printing one snapshot and exiting",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the raw status payload as JSON instead of the rendered view",
    )
    parser.add_argument(
        "--timeout", type=float, default=5.0, metavar="SECONDS", help="connect/read timeout"
    )
    args = parser.parse_args(argv)
    target = _resolve_service_target(args, parser)

    import json as json_module

    from .distributed import parse_address
    from .telemetry.status import fetch_status, format_status, validate_status

    try:
        address = parse_address(target)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    while True:
        try:
            payload = fetch_status(address, timeout=args.timeout)
        except (OSError, ValueError) as exc:
            print(f"could not fetch status from {target}: {exc}", file=sys.stderr)
            return 1
        problems = validate_status(payload)
        if problems:
            print(
                f"malformed status payload (bad fields: {', '.join(problems)})",
                file=sys.stderr,
            )
            return 1
        if args.json:
            print(json_module.dumps(payload, indent=2, sort_keys=True))
        else:
            print(f"coordinator {target}")
            print(format_status(payload))
        if args.watch is None:
            return 0
        time.sleep(max(0.1, args.watch))
        print()


def _watch_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro watch",
        description=(
            "Stream a running coordinator's or sweep service's structured "
            "events live: leases granted and expired, points committed and "
            "requeued, jobs changing state, tenants blacklisted and cleared. "
            "Pushed over the watch protocol — no polling."
        ),
    )
    _add_service_target(parser)
    parser.add_argument(
        "--from-seq",
        type=int,
        default=None,
        metavar="N",
        help=(
            "replay buffered events with seq > N before going live "
            "(0 = everything still buffered; default: live events only)"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print raw event dicts as JSON lines instead of the rendered view",
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help=(
            "fallback poll interval against a pre-watch peer "
            "(default: 2.0; the event stream itself never polls)"
        ),
    )
    _add_verbosity_flags(parser)
    args = parser.parse_args(argv)
    telemetry_logs.configure(verbose=args.verbose, quiet=args.quiet)
    target = _resolve_service_target(args, parser)

    import json as json_module

    from .distributed import ServiceError, parse_address
    from .distributed.client import WatchClient
    from .telemetry.status import fetch_status, format_event, format_status

    try:
        address = parse_address(target)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        watcher = WatchClient(address, from_seq=args.from_seq)
    except (ServiceError, OSError, ValueError) as exc:
        print(f"could not watch {target}: {exc}", file=sys.stderr)
        return 1
    try:
        if not watcher.supports_watch:
            # Version tolerance: an older daemon answers status queries
            # but cannot push events — degrade to polling, loudly.
            watcher.close()
            print(
                f"peer at {target} predates the watch protocol; "
                f"polling status every {args.poll:.1f}s instead",
                file=sys.stderr,
            )
            while True:
                try:
                    payload = fetch_status(address)
                except (OSError, ValueError) as exc:
                    print(f"could not fetch status from {target}: {exc}", file=sys.stderr)
                    return 1
                if args.json:
                    print(json_module.dumps(payload, sort_keys=True), flush=True)
                else:
                    print(format_status(payload))
                    print()
                time.sleep(max(0.1, args.poll))
        if not args.json:
            print(
                f"watching {target} (events from seq {watcher.seq})",
                file=sys.stderr,
                flush=True,
            )
            if watcher.status is not None:
                print(format_status(watcher.status))
                print("--- live events ---", flush=True)
        for event in watcher.events():
            if args.json:
                print(json_module.dumps(event, sort_keys=True), flush=True)
            else:
                print(format_event(event), flush=True)
        print(f"{target} closed the event stream", file=sys.stderr)
        return 0
    except KeyboardInterrupt:
        return 0
    finally:
        watcher.close()


def _parse_since(text: str) -> float:
    """``--since`` spec → epoch seconds: ``2h``/``45m``/``30s``/``7d``
    relative forms or an ISO date/datetime."""
    import re

    spec = text.strip()
    relative = re.fullmatch(r"(\d+(?:\.\d+)?)([smhd])", spec)
    if relative:
        scale = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}[relative.group(2)]
        return time.time() - float(relative.group(1)) * scale
    for fmt in ("%Y-%m-%dT%H:%M:%S", "%Y-%m-%d %H:%M:%S", "%Y-%m-%d"):
        try:
            return time.mktime(time.strptime(spec, fmt))
        except ValueError:
            continue
    raise ValueError(
        f"invalid --since {text!r}: use a relative age like 30s/45m/2h/7d "
        "or an ISO date (2026-08-08[T12:00:00])"
    )


def _runs_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro runs",
        description="List or inspect the run manifests persisted next to the result cache.",
    )
    parser.add_argument(
        "run_id",
        nargs="?",
        default=None,
        help="inspect one run (id or unambiguous prefix) instead of listing all",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR!r})",
    )
    parser.add_argument(
        "--figure",
        default=None,
        metavar="FIG",
        help="only list runs that swept this experiment (e.g. fig6)",
    )
    parser.add_argument(
        "--tenant",
        default=None,
        metavar="NAME",
        help="only list service runs submitted by this tenant",
    )
    parser.add_argument(
        "--since",
        default=None,
        metavar="SPEC",
        help="only list runs started after SPEC: 30s/45m/2h/7d ago, or an ISO date",
    )
    parser.add_argument(
        "--json", action="store_true", help="print raw manifest JSON instead of summaries"
    )
    args = parser.parse_args(argv)

    import json as json_module

    from .telemetry.manifest import list_manifests, load_manifest, summarize_manifest

    if args.run_id is not None:
        manifest = load_manifest(args.cache_dir, args.run_id)
        if manifest is None:
            print(f"no (unique) manifest matching {args.run_id!r}", file=sys.stderr)
            return 1
        if args.json:
            print(json_module.dumps(manifest, indent=2, sort_keys=True))
        else:
            print(summarize_manifest(manifest))
            points = manifest.get("points") or {}
            if isinstance(points, dict) and points:
                simulated = sum(
                    1 for point in points.values()
                    if isinstance(point, dict) and point.get("state") == "simulated"
                )
                print(
                    f"  points: {len(points)} "
                    f"({simulated} simulated, {len(points) - simulated} replayed)"
                )
            counters = (manifest.get("metrics") or {}).get("counters") or {}
            for name in sorted(counters):
                print(f"  {name:<36} {counters[name]}")
        return 0

    manifests = list_manifests(args.cache_dir)
    if args.figure:
        wanted = args.figure.strip().lower()
        manifests = [m for m in manifests if wanted in (m.get("experiments") or ())]
    if args.tenant:
        manifests = [m for m in manifests if m.get("tenant") == args.tenant
                     or (m.get("kwargs") or {}).get("tenant") == args.tenant]
    if args.since:
        try:
            threshold = _parse_since(args.since)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        manifests = [m for m in manifests
                     if isinstance(m.get("started_at"), (int, float))
                     and m["started_at"] >= threshold]
    if not manifests:
        filtered = any((args.figure, args.tenant, args.since))
        print(
            f"no run manifests under {args.cache_dir}/runs"
            + (" matching the given filters" if filtered else "")
        )
        return 0
    if args.json:
        print(json_module.dumps(manifests, indent=2, sort_keys=True))
        return 0
    for manifest in manifests:
        print(summarize_manifest(manifest))
    return 0


def _trace_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description=(
            "Inspect the persisted event traces under <cache-dir>/traces/: "
            "list journals, export one as Chrome trace-event JSON "
            "(loadable in Perfetto / chrome://tracing), or render a run's "
            "engine profile histograms."
        ),
    )
    sub = parser.add_subparsers(dest="command", metavar="COMMAND")

    def _add_cache_dir(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument(
            "--cache-dir",
            default=DEFAULT_CACHE_DIR,
            metavar="DIR",
            help=f"result cache directory (default: {DEFAULT_CACHE_DIR!r})",
        )

    list_parser = sub.add_parser(
        "list", help="list the event journals next to the result cache"
    )
    _add_cache_dir(list_parser)

    export_parser = sub.add_parser(
        "export", help="export one run's journal as Chrome trace-event JSON"
    )
    export_parser.add_argument(
        "--run",
        required=True,
        metavar="ID",
        help="run id (or unambiguous prefix) whose journal to export; "
        "'service' exports the daemon's journal",
    )
    export_parser.add_argument(
        "--out",
        default=None,
        metavar="OUT",
        help="output path ('-' for stdout; default: <run>.trace.json)",
    )
    _add_cache_dir(export_parser)

    profile_parser = sub.add_parser(
        "profile", help="render a --profile-engine run's phase histograms"
    )
    profile_parser.add_argument(
        "run_id",
        nargs="?",
        default=None,
        help="run id or prefix (default: the most recent manifest)",
    )
    _add_cache_dir(profile_parser)

    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help(sys.stderr)
        return 2

    import json as json_module

    from .telemetry.trace import (
        export_chrome_trace,
        list_journals,
        read_journal,
        validate_chrome_trace,
    )

    if args.command == "list":
        journals = list_journals(args.cache_dir)
        if not journals:
            print(f"no event journals under {args.cache_dir}/traces")
            return 0
        for path in journals:
            events = read_journal(path)
            span = ""
            if events:
                first, last = events[0].get("ts"), events[-1].get("ts")
                if isinstance(first, (int, float)) and isinstance(last, (int, float)):
                    span = f", {max(0.0, last - first):.1f}s"
            print(f"{path.stem:<40} {len(events):>6} events{span}")
        return 0

    if args.command == "export":
        journals = list_journals(args.cache_dir)
        matches = [path for path in journals if path.stem == args.run]
        if not matches:
            matches = [path for path in journals if path.stem.startswith(args.run)]
        if len(matches) != 1:
            hint = "no journal" if not matches else f"{len(matches)} journals"
            print(
                f"{hint} matching {args.run!r} under {args.cache_dir}/traces "
                "(see `repro trace list`)",
                file=sys.stderr,
            )
            return 1
        events = read_journal(matches[0])
        document = export_chrome_trace(events)
        problems = validate_chrome_trace(document)
        if problems:
            print(
                f"export produced an invalid trace ({'; '.join(problems[:5])})",
                file=sys.stderr,
            )
            return 1
        text = json_module.dumps(document, indent=2, sort_keys=True)
        out = args.out if args.out is not None else f"{matches[0].stem}.trace.json"
        if out == "-":
            print(text)
        else:
            with open(out, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(
                f"wrote {len(document['traceEvents'])} trace events to {out} "
                "(load in Perfetto or chrome://tracing)",
                file=sys.stderr,
            )
        return 0

    # profile
    from .telemetry.manifest import list_manifests, load_manifest
    from .telemetry.trace import format_profile, load_profile

    if args.run_id is not None:
        manifest = load_manifest(args.cache_dir, args.run_id)
        if manifest is None:
            print(f"no (unique) manifest matching {args.run_id!r}", file=sys.stderr)
            return 1
    else:
        manifests = list_manifests(args.cache_dir)
        if not manifests:
            print(f"no run manifests under {args.cache_dir}/runs", file=sys.stderr)
            return 1
        manifest = manifests[-1]
    counters = load_profile(manifest) or {}
    print(f"run {manifest.get('run_id', '?')}")
    print(format_profile(counters))
    return 0


# ----------------------------------------------------------------- service verbs


def _serve_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run the persistent sweep service: clients submit experiment "
            "requests (`repro submit`), one shared worker fleet simulates "
            "them, and a BLISS-style fair scheduler keeps heavy batch jobs "
            "from starving interactive ones."
        ),
    )
    parser.add_argument(
        "--bind",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help=(
            "listen address (default: 127.0.0.1:0 — loopback, ephemeral "
            "port, printed once bound; use e.g. 0.0.0.0:7777 to accept "
            "clients and workers from other machines)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "self-spawn N localhost worker processes (default: 0 — wait for "
            "external `repro worker --target` joins)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=(
            "persistent result store shared by every job and tenant "
            f"(default: {DEFAULT_CACHE_DIR!r})"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="keep results in memory only (no disk persistence, no manifests)",
    )
    parser.add_argument(
        "--quantum",
        type=int,
        default=None,
        metavar="N",
        help="fairness: consecutive leases before a job is blacklisted (default: 4)",
    )
    parser.add_argument(
        "--clearing-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fairness: seconds between blacklist clearings (default: 5)",
    )
    _add_verbosity_flags(parser)
    args = parser.parse_args(argv)
    telemetry_logs.configure(verbose=args.verbose, quiet=args.quiet)

    from .distributed import parse_address, spawn_local_worker
    from .distributed.fairness import DEFAULT_CLEARING_INTERVAL, DEFAULT_SERVICE_QUANTUM
    from .distributed.service import SweepService
    from .orchestration import InMemoryResultStore

    try:
        host, port = parse_address(args.bind)
    except ValueError as exc:
        print(f"--bind: {exc}", file=sys.stderr)
        return 2
    if args.workers < 0:
        print("--workers must be non-negative", file=sys.stderr)
        return 2

    store = InMemoryResultStore() if args.no_cache else open_store(args.cache_dir)
    if not args.no_cache:
        # Tenants selecting `--engine compiled` share the daemon's
        # generated-source cache (content-addressed per folded config,
        # so different tenants can never collide on a module).
        from .sim import codegen

        codegen.set_cache_dir(args.cache_dir)
    try:
        service = SweepService(
            store,
            host,
            port,
            service_quantum=args.quantum if args.quantum is not None
            else DEFAULT_SERVICE_QUANTUM,
            clearing_interval=args.clearing_interval if args.clearing_interval is not None
            else DEFAULT_CLEARING_INTERVAL,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        bound_host, bound_port = service.start()
    except OSError as exc:
        print(f"could not bind {args.bind}: {exc}", file=sys.stderr)
        return 1
    # Self-spawned workers connect via loopback even on a wildcard bind.
    connect_host = "127.0.0.1" if bound_host in ("0.0.0.0", "::", "") else bound_host
    print(f"sweep service listening on {bound_host}:{bound_port}", flush=True)
    print(
        f"submit with: python -m repro submit fig6 --target {connect_host}:{bound_port}",
        file=sys.stderr,
    )
    workers = [spawn_local_worker(connect_host, bound_port, index)
               for index in range(args.workers)]
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        service.stop()
        for worker in workers:
            try:
                worker.wait(timeout=5.0)
            except Exception:
                worker.kill()
    return 0


def _print_job_results(results, stats: SweepStats, *, sweep_mode: bool, json_out) -> None:
    """Shared tail of the submit/--target-service paths: tables + export."""
    tables = sys.stderr if json_out == "-" else sys.stdout
    if sweep_mode or len(results) != 1:
        print(format_sweep(results), file=tables)
    else:
        key, data = next(iter(results.items()))
        print(format_experiment(key, data), file=tables)
    print(format_stats(stats), file=sys.stderr)
    if json_out is not None:
        dump_json(results, json_out)


def _submit_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro submit",
        description=(
            "Submit a sweep to a running `repro serve` daemon and (by "
            "default) wait for its results."
        ),
    )
    parser.add_argument(
        "experiments", nargs="+", metavar="experiment", help="experiment ids, e.g. fig5 fig6"
    )
    _add_service_target(parser)
    parser.add_argument(
        "--instructions", type=int, default=None, help="per-core instruction count override"
    )
    parser.add_argument(
        "--full", action="store_true", help="use the full 43-application roster (slow)"
    )
    parser.add_argument(
        "--engine", choices=ENGINES, default=None, help="simulation engine for this job"
    )
    parser.add_argument(
        "--priority",
        choices=("interactive", "batch"),
        default="interactive",
        help=(
            "scheduling class: 'interactive' jobs are favoured, 'batch' jobs "
            "yield under contention (default: interactive)"
        ),
    )
    parser.add_argument(
        "--tag",
        action="append",
        default=None,
        metavar="TAG",
        dest="tags",
        help="free-form tag recorded in the job's manifest (repeatable)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="OUT",
        help="dump the job's raw data as JSON to OUT ('-' for stdout)",
    )
    parser.add_argument(
        "--no-wait",
        action="store_true",
        help="print the job id and exit instead of waiting for results",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="give up waiting after SECONDS (default: wait forever)",
    )
    _add_verbosity_flags(parser)
    args = parser.parse_args(argv)
    telemetry_logs.configure(verbose=args.verbose, quiet=args.quiet)
    target = _resolve_service_target(args, parser)

    from .distributed import ServiceError, SweepClient

    try:
        request = SweepRequest(
            experiments=tuple(args.experiments),
            instructions=args.instructions,
            full=args.full,
            engine=args.engine,
            priority=args.priority,
            tags=tuple(args.tags or ()),
        )
    except (TypeError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        with SweepClient(target) as client:
            job_id = client.submit(request)
            print(f"submitted {job_id} to {target}", file=sys.stderr)
            if args.no_wait:
                print(job_id)
                return 0
            status = client.wait(job_id, timeout=args.timeout)
            if status.state != "done":
                detail = f": {status.error}" if status.error else ""
                print(f"{job_id} {status.state}{detail}", file=sys.stderr)
                return 1
            results = client.results(job_id)
    except (ServiceError, TimeoutError, OSError, ValueError) as exc:
        print(f"submit to {target} failed: {exc}", file=sys.stderr)
        return 1

    stats = SweepStats(
        planned=status.points,
        executed=status.executed,
        reused=status.reused,
        elapsed=status.elapsed_seconds,
    )
    _print_job_results(
        results, stats, sweep_mode=len(request.experiments) > 1, json_out=args.json
    )
    return 0


def _jobs_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro jobs",
        description="List (or cancel) the jobs of a running sweep service.",
    )
    _add_service_target(parser)
    parser.add_argument(
        "--cancel", default=None, metavar="JOB", help="cancel one job instead of listing"
    )
    parser.add_argument(
        "--json", action="store_true", help="print raw job payloads as JSON"
    )
    _add_verbosity_flags(parser)
    args = parser.parse_args(argv)
    telemetry_logs.configure(verbose=args.verbose, quiet=args.quiet)
    target = _resolve_service_target(args, parser)

    import json as json_module

    from .distributed import ServiceError, SweepClient

    try:
        with SweepClient(target) as client:
            if args.cancel is not None:
                status = client.cancel(args.cancel)
                print(f"{status.job_id} {status.state}")
                return 0
            statuses = client.jobs()
    except (ServiceError, OSError, ValueError) as exc:
        print(f"could not query {target}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json_module.dumps([status.raw for status in statuses], indent=2, sort_keys=True))
        return 0
    if not statuses:
        print("no jobs submitted yet")
        return 0
    for status in statuses:
        label = ",".join(status.experiments) or "?"
        print(
            f"{status.job_id:<10} {status.state:<10} {status.priority:<11} "
            f"{status.completed}/{status.points} points, executed {status.executed}, "
            f"reused {status.reused}  [{label}]  tenant {status.tenant}"
        )
    return 0


# ----------------------------------------------------------------- experiments


class _CliError(Exception):
    """An execution-spec problem; ``main`` prints it and exits 2."""


def _resolve_execution(args):
    """Map ``--target`` (or the deprecated flag set) onto an execution plan.

    Returns ``(service_address, executor, jobs)`` — exactly one of
    ``service_address``/local fields is meaningful: a non-``None``
    address means "submit to that daemon", otherwise run locally with
    ``executor``/``jobs``.  Raises :class:`_CliError` on a bad spec.
    """
    deprecated_used = [
        flag for flag, value in (
            ("--executor", args.executor),
            ("--workers", args.workers),
            ("--bind", args.bind),
        ) if value is not None
    ]
    if args.target is not None and deprecated_used:
        raise _CliError(
            f"--target cannot be combined with {', '.join(deprecated_used)} "
            "(they are deprecated aliases of it)"
        )

    if args.target is not None:
        try:
            target = parse_target(args.target)
        except ValueError as exc:
            raise _CliError(str(exc)) from exc
        if target.kind == "service":
            host, port = target.address
            return f"{host}:{port}", None, args.jobs
        if target.kind == "process":
            jobs = target.jobs or os.cpu_count() or 1
            return None, ProcessPoolExecutor(jobs=jobs), jobs
        return None, None, args.jobs  # local: plain --jobs semantics

    for flag in deprecated_used:
        _warn_deprecated(flag, "--target")
    workers = args.workers if args.workers is not None else 0
    if workers < 0:
        raise _CliError("--workers must be non-negative")
    if workers and args.executor != "distributed":
        raise _CliError("--workers only makes sense with --executor distributed")
    if args.jobs > 1 and args.executor in ("serial", "distributed"):
        raise _CliError(
            f"--jobs is a local-pool knob; it has no effect with --executor {args.executor} "
            "(use --workers to size a distributed run)"
        )
    if args.executor is None:
        return None, None, args.jobs
    if args.executor == "serial":
        return None, SerialExecutor(), args.jobs
    if args.executor == "process":
        return None, ProcessPoolExecutor(jobs=args.jobs), args.jobs
    from .distributed import DistributedExecutor, parse_address

    try:
        host, port = parse_address(args.bind if args.bind is not None else "127.0.0.1:0")
    except ValueError as exc:
        raise _CliError(f"--bind: {exc}") from exc
    executor = DistributedExecutor(
        host, port, spawn_workers=workers, checkpoint_interval=args.checkpoint_interval
    )
    return None, executor, args.jobs


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    # Verbs with their own flags are dispatched before the experiment
    # parser ever sees the command line.
    verbs = {
        "worker": _worker_main,
        "cache": _cache_main,
        "codegen": _codegen_main,
        "checkpoint": _checkpoint_main,
        "status": _status_main,
        "watch": _watch_main,
        "runs": _runs_main,
        "trace": _trace_main,
        "serve": _serve_main,
        "submit": _submit_main,
        "jobs": _jobs_main,
    }
    if argv and argv[0] in verbs:
        return verbs[argv[0]](argv[1:])

    parser = _build_parser()
    args = parser.parse_args(argv)
    telemetry_logs.configure(verbose=args.verbose, quiet=args.quiet)

    if args.list or not args.experiments:
        _print_experiment_list()
        return 0

    tokens = [token.lower() for token in args.experiments]
    sweep_mode = tokens[0] == "sweep"
    keys = tokens[1:] if sweep_mode else tokens
    if sweep_mode and not keys:
        print("sweep needs at least one experiment id, e.g. `sweep fig6 fig11`", file=sys.stderr)
        return 2
    if not sweep_mode and len(keys) > 1:
        print(
            "several experiment ids given; did you mean `repro sweep "
            + " ".join(keys)
            + "`?",
            file=sys.stderr,
        )
        return 2
    unknown = [key for key in keys if key not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s) {', '.join(map(repr, unknown))}; "
            "use --list to see the available ids",
            file=sys.stderr,
        )
        return 2

    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2
    if args.checkpoint_interval is not None and args.checkpoint_interval < 1:
        print("--checkpoint-interval must be at least 1 cycle", file=sys.stderr)
        return 2

    # One request object is the whole run description from here on — the
    # same value a `repro submit` would put on the wire.
    request = SweepRequest(
        experiments=tuple(keys),
        instructions=args.instructions,
        full=args.full,
        engine=args.engine,
    )
    try:
        service_address, executor, jobs = _resolve_execution(args)
    except _CliError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if service_address is not None:
        from .distributed import ServiceError, SweepClient

        try:
            with SweepClient(service_address) as client:
                job_id = client.submit(request)
                print(f"submitted {job_id} to {service_address}", file=sys.stderr)
                status = client.wait(job_id)
                if status.state != "done":
                    detail = f": {status.error}" if status.error else ""
                    print(f"{job_id} {status.state}{detail}", file=sys.stderr)
                    return 1
                results = client.results(job_id)
        except (ServiceError, OSError, ValueError) as exc:
            print(f"submit to {service_address} failed: {exc}", file=sys.stderr)
            return 1
        stats = SweepStats(
            planned=status.points,
            executed=status.executed,
            reused=status.reused,
            elapsed=status.elapsed_seconds,
        )
        # The service owns the cache and writes the job's manifest; the
        # client-side run has nothing to persist.
        _print_job_results(results, stats, sweep_mode=sweep_mode, json_out=args.json)
        return 0

    store = None if args.no_cache else open_store(args.cache_dir)
    if not args.no_cache:
        # Generated-source cache for `--engine compiled` lives next to
        # the results; pointing it here is free when compiled is never
        # selected (nothing renders until the engine actually runs).
        from .sim import codegen

        codegen.set_cache_dir(args.cache_dir)
    stats = SweepStats()
    started_at = time.time()
    with contextlib.ExitStack() as stack:
        if args.no_telemetry:
            # Observe-only by construction; disabling just skips the
            # bookkeeping (and the manifest below), never the results.
            stack.enter_context(telemetry.disabled())
        if args.no_telemetry or args.no_trace:
            # Silence the event bus for the run: no emits, no journal
            # (TraceJournal only creates its file on first write).
            previous_bus_state = telemetry.bus().enabled
            telemetry.bus().enabled = False
            stack.callback(
                setattr, telemetry.bus(), "enabled", previous_bus_state
            )
        if args.profile_engine:
            stack.enter_context(telemetry.profiled())
        if args.checkpoint_interval is not None:
            # Periodic checkpointing for every simulation this thread
            # executes directly; resume-from-latest makes an interrupted
            # run (or one sharing a warmup prefix) skip finished cycles.
            from .orchestration.cache import CHECKPOINT_DIR, CheckpointStore
            from .sim.runner import checkpointing

            stack.enter_context(
                checkpointing(
                    CheckpointStore(os.path.join(args.cache_dir, CHECKPOINT_DIR)),
                    args.checkpoint_interval,
                )
            )
        result = sweep_experiments(
            request, jobs=jobs, store=store, stats=stats, executor=executor
        )
    results = result.data

    # With `--json -` the JSON document owns stdout; tables move to stderr
    # so the output stays pipeable into jq & co.
    _print_job_results(results, stats, sweep_mode=sweep_mode, json_out=args.json)

    if isinstance(store, ResultCache):
        # Best-effort bookkeeping for `repro cache`: a read-only or full
        # cache directory must never cost the user the run's output.
        try:
            store.record_last_run(
                {"planned": stats.planned, "executed": stats.executed, "reused": stats.reused}
            )
        except OSError:
            pass
        if not args.no_telemetry:
            # One run manifest per sweep, next to the cache (same
            # best-effort contract as record_last_run).
            from .telemetry.manifest import write_manifest

            executor_name = getattr(executor, "name", None) or (
                "process" if jobs > 1 else "serial"
            )
            try:
                write_manifest(
                    store.cache_dir,
                    experiments=keys,
                    started_at=started_at,
                    argv=argv,
                    kwargs=request.run_kwargs(),
                    executor=executor_name,
                    engine=args.engine,
                    stats={
                        "planned": stats.planned,
                        "executed": stats.executed,
                        "reused": stats.reused,
                        "elapsed_seconds": stats.elapsed,
                    },
                    cache=store.stats(),
                    workers=getattr(executor, "last_worker_snapshots", None),
                    run_id=stats.run_id,
                    points=stats.points,
                )
            except OSError:
                pass
    return 0


if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # The stdout reader went away (e.g. `repro cache | grep -q …`):
        # exit quietly like a well-behaved unix filter instead of
        # tracebacking.  Redirect stdout to devnull so the interpreter's
        # shutdown flush cannot raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 141  # 128 + SIGPIPE
    raise SystemExit(code)
