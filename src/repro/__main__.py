"""Command-line entry point: regenerate any of the paper's experiments.

Usage::

    python -m repro --list
    python -m repro fig6
    python -m repro fig10 --instructions 40000 --full
    python -m repro fig7 --jobs 8                  # parallel simulation
    python -m repro sweep fig6 fig11 --jobs 4      # several figures, one batch
    python -m repro fig8 --json fig8.json          # export raw data

Every invocation routes through :mod:`repro.orchestration`: simulation
points are cached on disk (``--cache-dir``, default ``.repro-cache`` or
``$REPRO_CACHE_DIR``), so re-running a figure — or any figure sharing
simulations with it — is served from the cache.  ``--jobs N`` fans the
uncached points of the run across ``N`` worker processes; the printed
tables are bit-identical to a serial run.
"""

from __future__ import annotations

import argparse
import os
import sys

from .experiments import EXPERIMENTS
from .orchestration import (
    SweepStats,
    dump_json,
    format_experiment,
    format_stats,
    format_sweep,
    open_store,
    sweep_experiments,
)
from .sim.config import ENGINES
from .sim.runner import set_engine_override

DEFAULT_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate DR-STRaNGe paper experiments (figures or sections).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="experiment",
        help=(
            "experiment id, e.g. fig6, fig10, sec8.9 (see --list); "
            "or 'sweep' followed by several ids to regenerate them as one batch"
        ),
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--instructions", type=int, default=None, help="per-core instruction count override"
    )
    parser.add_argument(
        "--full", action="store_true", help="use the full 43-application roster (slow)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="simulate independent points on N worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"persistent result cache directory (default: {DEFAULT_CACHE_DIR!r})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not persist simulation results to disk for this run",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="OUT",
        help="also dump the raw experiment data as JSON to OUT ('-' for stdout)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help=(
            "simulation engine: 'event' (cycle-skipping, default) or 'tick' "
            "(cycle-by-cycle reference); results are bit-identical either way"
        ),
    )
    return parser


def _print_experiment_list() -> None:
    print("Available experiments:")
    for key, module in sorted(EXPERIMENTS.items()):
        summary = (module.__doc__ or "").strip().splitlines()[0]
        print(f"  {key:<8} {summary}")


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        _print_experiment_list()
        return 0

    tokens = [token.lower() for token in args.experiments]
    sweep_mode = tokens[0] == "sweep"
    keys = tokens[1:] if sweep_mode else tokens
    if sweep_mode and not keys:
        print("sweep needs at least one experiment id, e.g. `sweep fig6 fig11`", file=sys.stderr)
        return 2
    if not sweep_mode and len(keys) > 1:
        print(
            "several experiment ids given; did you mean `repro sweep "
            + " ".join(keys)
            + "`?",
            file=sys.stderr,
        )
        return 2
    unknown = [key for key in keys if key not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s) {', '.join(map(repr, unknown))}; "
            "use --list to see the available ids",
            file=sys.stderr,
        )
        return 2

    # Only forward the knobs each experiment's run() actually supports;
    # repro.orchestration filters per-module via inspect.signature.
    kwargs = {}
    if args.instructions is not None:
        kwargs["instructions"] = args.instructions
    if args.full:
        kwargs["full"] = True

    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2

    if args.engine is not None:
        # Applied at the simulate_traces choke point so every simulation
        # of this run (including orchestration workers) uses the engine.
        set_engine_override(args.engine)

    store = None if args.no_cache else open_store(args.cache_dir)
    stats = SweepStats()
    results = sweep_experiments(keys, jobs=args.jobs, store=store, stats=stats, **kwargs)

    # With `--json -` the JSON document owns stdout; tables move to stderr
    # so the output stays pipeable into jq & co.
    tables = sys.stderr if args.json == "-" else sys.stdout
    if sweep_mode:
        print(format_sweep(results), file=tables)
    else:
        key, data = next(iter(results.items()))
        print(format_experiment(key, data), file=tables)
    print(format_stats(stats), file=sys.stderr)

    if args.json is not None:
        dump_json(results, args.json)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
