"""Command-line entry point: regenerate any of the paper's experiments.

Usage::

    python -m repro --list
    python -m repro fig6
    python -m repro fig10 --instructions 40000 --full
    python -m repro fig7 --jobs 8                  # parallel simulation
    python -m repro sweep fig6 fig11 --jobs 4      # several figures, one batch
    python -m repro fig8 --json fig8.json          # export raw data
    python -m repro fig7 --executor distributed --workers 4
    python -m repro worker --connect HOST:PORT     # join a distributed run
    python -m repro cache                          # result-store statistics
    python -m repro status --connect HOST:PORT     # live view of a running coordinator
    python -m repro runs                           # list persisted run manifests

Every invocation routes through :mod:`repro.orchestration`: simulation
points are cached on disk (``--cache-dir``, default ``.repro-cache`` or
``$REPRO_CACHE_DIR``), so re-running a figure — or any figure sharing
simulations with it — is served from the cache.  ``--jobs N`` fans the
uncached points of the run across ``N`` worker processes, and
``--executor distributed`` shards them across coordinator-fed workers
(self-spawned on localhost with ``--workers N``, or joined from other
machines with ``repro worker --connect``); the printed tables are
bit-identical to a serial run either way.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
import time

from . import telemetry
from .experiments import EXPERIMENTS
from .telemetry import logs as telemetry_logs
from .orchestration import (
    ProcessPoolExecutor,
    ResultCache,
    SerialExecutor,
    SweepStats,
    dump_json,
    format_experiment,
    format_stats,
    format_sweep,
    open_store,
    sweep_experiments,
)
from .sim.config import ENGINES
from .sim.runner import engine_override

DEFAULT_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")

EXECUTORS = ("serial", "process", "distributed")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate DR-STRaNGe paper experiments (figures or sections).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="experiment",
        help=(
            "experiment id, e.g. fig6, fig10, sec8.9 (see --list); "
            "or 'sweep' followed by several ids to regenerate them as one batch"
        ),
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument(
        "--instructions", type=int, default=None, help="per-core instruction count override"
    )
    parser.add_argument(
        "--full", action="store_true", help="use the full 43-application roster (slow)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="simulate independent points on N worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTORS,
        default=None,
        help=(
            "execution backend for uncached points: 'serial', 'process' "
            "(local pool of --jobs workers; what plain --jobs N implies) or "
            "'distributed' (coordinator/worker sharding across machines)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "with --executor distributed: self-spawn N localhost worker "
            "processes (default: 0 — wait for external `repro worker` joins)"
        ),
    )
    parser.add_argument(
        "--bind",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help=(
            "with --executor distributed: coordinator listen address "
            "(default: 127.0.0.1:0 — loopback, ephemeral port; use e.g. "
            "0.0.0.0:9876 to accept workers from other machines)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"persistent result cache directory (default: {DEFAULT_CACHE_DIR!r})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not persist simulation results to disk for this run",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="OUT",
        help="also dump the raw experiment data as JSON to OUT ('-' for stdout)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help=(
            "simulation engine: 'event' (cycle-skipping, default) or 'tick' "
            "(cycle-by-cycle reference); results are bit-identical either way"
        ),
    )
    parser.add_argument(
        "--no-telemetry",
        action="store_true",
        help=(
            "disable metrics collection and manifest writing for this run "
            "(results are bit-identical either way; telemetry is observe-only)"
        ),
    )
    _add_verbosity_flags(parser)
    return parser


def _add_verbosity_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--verbose",
        "-v",
        action="count",
        default=0,
        help="more diagnostics (repeat for debug-level)",
    )
    parser.add_argument(
        "--quiet",
        "-q",
        action="count",
        default=0,
        help="fewer diagnostics (repeat to silence warnings too)",
    )


def _print_experiment_list() -> None:
    print("Available experiments:")
    for key, module in sorted(EXPERIMENTS.items()):
        summary = (module.__doc__ or "").strip().splitlines()[0]
        print(f"  {key:<8} {summary}")


# ----------------------------------------------------------------- worker


def _worker_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description=(
            "Join a distributed run: lease simulation points from a coordinator, "
            "simulate them locally, and stream the results back."
        ),
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="address of the coordinator (printed by the coordinating `repro` run)",
    )
    parser.add_argument(
        "--id", default=None, metavar="NAME", help="worker name (default: hostname-pid)"
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="override the simulation engine for this worker (results are identical)",
    )
    _add_verbosity_flags(parser)
    args = parser.parse_args(argv)
    telemetry_logs.configure(verbose=args.verbose, quiet=args.quiet)

    from .distributed import parse_address, run_worker

    try:
        parse_address(args.connect)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        with contextlib.ExitStack() as stack:
            if args.engine is not None:
                stack.enter_context(engine_override(args.engine))
            run_worker(args.connect, worker_id=args.id)
    except (OSError, ConnectionError) as exc:
        print(f"worker could not serve {args.connect}: {exc}", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------- cache


def _cache_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect (or clear) the persistent content-addressed result store.",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR!r})",
    )
    parser.add_argument(
        "--clear", action="store_true", help="delete every cached entry and exit"
    )
    args = parser.parse_args(argv)

    store = ResultCache(args.cache_dir)
    if args.clear:
        removed = len(store)
        store.clear()
        print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'} from {store.cache_dir}")
        return 0

    stats = store.stats()
    print(f"result cache at {store.cache_dir}")
    print(f"  entries:     {stats['entries']}")
    print(f"  total bytes: {stats['total_bytes']}")
    breakdown = store.stats_by_figure()
    for figure in sorted(breakdown):
        bucket = breakdown[figure]
        print(f"    {figure:<16} {bucket['entries']:>6} entries, {bucket['total_bytes']} bytes")
    last = store.last_run()
    if last is None:
        print("  last run:    (none recorded)")
    else:
        hits, misses = last.get("hits", 0), last.get("misses", 0)
        line = f"  last run:    {hits} hits, {misses} misses"
        if "executed" in last:
            line += f"; {last.get('planned', 0)} points planned, {last['executed']} executed"
        print(line)
    return 0


# ----------------------------------------------------------------- status & runs


def _status_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro status",
        description=(
            "Render a live status view of a running coordinator: fleet progress, "
            "points/sec, per-worker liveness and lease state, cache hit rate, "
            "per-figure ETA."
        ),
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="address of the coordinator (printed by the coordinating `repro` run)",
    )
    parser.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="poll every SECONDS instead of printing one snapshot and exiting",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the raw status payload as JSON instead of the rendered view",
    )
    parser.add_argument(
        "--timeout", type=float, default=5.0, metavar="SECONDS", help="connect/read timeout"
    )
    args = parser.parse_args(argv)

    import json as json_module

    from .distributed import parse_address
    from .telemetry.status import fetch_status, format_status, validate_status

    try:
        address = parse_address(args.connect)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    while True:
        try:
            payload = fetch_status(address, timeout=args.timeout)
        except (OSError, ValueError) as exc:
            print(f"could not fetch status from {args.connect}: {exc}", file=sys.stderr)
            return 1
        problems = validate_status(payload)
        if problems:
            print(
                f"malformed status payload (bad fields: {', '.join(problems)})",
                file=sys.stderr,
            )
            return 1
        if args.json:
            print(json_module.dumps(payload, indent=2, sort_keys=True))
        else:
            print(f"coordinator {args.connect}")
            print(format_status(payload))
        if args.watch is None:
            return 0
        time.sleep(max(0.1, args.watch))
        print()


def _runs_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro runs",
        description="List or inspect the run manifests persisted next to the result cache.",
    )
    parser.add_argument(
        "run_id",
        nargs="?",
        default=None,
        help="inspect one run (id or unambiguous prefix) instead of listing all",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR!r})",
    )
    parser.add_argument(
        "--json", action="store_true", help="print raw manifest JSON instead of summaries"
    )
    args = parser.parse_args(argv)

    import json as json_module

    from .telemetry.manifest import list_manifests, load_manifest, summarize_manifest

    if args.run_id is not None:
        manifest = load_manifest(args.cache_dir, args.run_id)
        if manifest is None:
            print(f"no (unique) manifest matching {args.run_id!r}", file=sys.stderr)
            return 1
        if args.json:
            print(json_module.dumps(manifest, indent=2, sort_keys=True))
        else:
            print(summarize_manifest(manifest))
            counters = (manifest.get("metrics") or {}).get("counters") or {}
            for name in sorted(counters):
                print(f"  {name:<36} {counters[name]}")
        return 0

    manifests = list_manifests(args.cache_dir)
    if not manifests:
        print(f"no run manifests under {args.cache_dir}/runs")
        return 0
    if args.json:
        print(json_module.dumps(manifests, indent=2, sort_keys=True))
        return 0
    for manifest in manifests:
        print(summarize_manifest(manifest))
    return 0


# ----------------------------------------------------------------- experiments


def _make_executor(args):
    """The executor implied by ``--executor``/``--jobs`` (None = legacy path)."""
    if args.executor is None:
        return None
    if args.executor == "serial":
        return SerialExecutor()
    if args.executor == "process":
        return ProcessPoolExecutor(jobs=args.jobs)
    from .distributed import DistributedExecutor, parse_address

    host, port = parse_address(args.bind)
    return DistributedExecutor(host, port, spawn_workers=args.workers)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    # `worker`, `cache`, `status` and `runs` have their own flags, so they
    # are dispatched before the experiment parser ever sees the command line.
    if argv and argv[0] == "worker":
        return _worker_main(argv[1:])
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    if argv and argv[0] == "status":
        return _status_main(argv[1:])
    if argv and argv[0] == "runs":
        return _runs_main(argv[1:])

    parser = _build_parser()
    args = parser.parse_args(argv)
    telemetry_logs.configure(verbose=args.verbose, quiet=args.quiet)

    if args.list or not args.experiments:
        _print_experiment_list()
        return 0

    tokens = [token.lower() for token in args.experiments]
    sweep_mode = tokens[0] == "sweep"
    keys = tokens[1:] if sweep_mode else tokens
    if sweep_mode and not keys:
        print("sweep needs at least one experiment id, e.g. `sweep fig6 fig11`", file=sys.stderr)
        return 2
    if not sweep_mode and len(keys) > 1:
        print(
            "several experiment ids given; did you mean `repro sweep "
            + " ".join(keys)
            + "`?",
            file=sys.stderr,
        )
        return 2
    unknown = [key for key in keys if key not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s) {', '.join(map(repr, unknown))}; "
            "use --list to see the available ids",
            file=sys.stderr,
        )
        return 2

    # Only forward the knobs each experiment's run() actually supports;
    # repro.orchestration filters per-module via inspect.signature.
    kwargs = {}
    if args.instructions is not None:
        kwargs["instructions"] = args.instructions
    if args.full:
        kwargs["full"] = True

    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2
    if args.workers < 0:
        print("--workers must be non-negative", file=sys.stderr)
        return 2
    if args.workers and args.executor != "distributed":
        print("--workers only makes sense with --executor distributed", file=sys.stderr)
        return 2
    if args.jobs > 1 and args.executor in ("serial", "distributed"):
        print(
            f"--jobs is a local-pool knob; it has no effect with --executor {args.executor} "
            "(use --workers to size a distributed run)",
            file=sys.stderr,
        )
        return 2
    try:
        executor = _make_executor(args)
    except ValueError as exc:
        print(f"--bind: {exc}", file=sys.stderr)
        return 2

    store = None if args.no_cache else open_store(args.cache_dir)
    stats = SweepStats()
    started_at = time.time()
    with contextlib.ExitStack() as stack:
        if args.no_telemetry:
            # Observe-only by construction; disabling just skips the
            # bookkeeping (and the manifest below), never the results.
            stack.enter_context(telemetry.disabled())
        if args.engine is not None:
            # Applied at the simulate_traces choke point so every
            # simulation of this run (including orchestration workers)
            # uses the engine; scoped so an exception mid-sweep cannot
            # leak the override into later in-process simulations.
            stack.enter_context(engine_override(args.engine))
        results = sweep_experiments(
            keys, jobs=args.jobs, store=store, stats=stats, executor=executor, **kwargs
        )

    # With `--json -` the JSON document owns stdout; tables move to stderr
    # so the output stays pipeable into jq & co.
    tables = sys.stderr if args.json == "-" else sys.stdout
    if sweep_mode:
        print(format_sweep(results), file=tables)
    else:
        key, data = next(iter(results.items()))
        print(format_experiment(key, data), file=tables)
    print(format_stats(stats), file=sys.stderr)

    if args.json is not None:
        dump_json(results, args.json)

    if isinstance(store, ResultCache):
        # Best-effort bookkeeping for `repro cache`: a read-only or full
        # cache directory must never cost the user the run's output.
        try:
            store.record_last_run(
                {"planned": stats.planned, "executed": stats.executed, "reused": stats.reused}
            )
        except OSError:
            pass
        if not args.no_telemetry:
            # One run manifest per sweep, next to the cache (same
            # best-effort contract as record_last_run).
            from .telemetry.manifest import write_manifest

            executor_name = getattr(executor, "name", None) or (
                "process" if args.jobs > 1 else "serial"
            )
            try:
                write_manifest(
                    store.cache_dir,
                    experiments=keys,
                    started_at=started_at,
                    argv=argv,
                    kwargs=kwargs,
                    executor=executor_name,
                    engine=args.engine,
                    stats={
                        "planned": stats.planned,
                        "executed": stats.executed,
                        "reused": stats.reused,
                        "elapsed_seconds": stats.elapsed,
                    },
                    cache=store.stats(),
                    workers=getattr(executor, "last_worker_snapshots", None),
                )
            except OSError:
                pass
    return 0


if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # The stdout reader went away (e.g. `repro cache | grep -q …`):
        # exit quietly like a well-behaved unix filter instead of
        # tracebacking.  Redirect stdout to devnull so the interpreter's
        # shutdown flush cannot raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 141  # 128 + SIGPIPE
    raise SystemExit(code)
