"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that legacy editable installs (``python setup.py develop`` or
``pip install -e . --no-build-isolation``) work on machines without the
``wheel`` package or network access to build isolation environments.
"""

from setuptools import setup

setup()
