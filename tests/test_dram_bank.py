"""Tests for the DRAM bank state machine."""

import pytest

from repro.dram.bank import AccessCategory, Bank, BankStats
from repro.dram.timing import DRAMTiming


@pytest.fixture
def bank():
    return Bank(0, DRAMTiming())


class TestAccessCategories:
    def test_first_access_is_closed(self, bank):
        assert bank.access_category(10) is AccessCategory.ROW_CLOSED

    def test_same_row_is_hit(self, bank):
        bank.access(10, now=0)
        assert bank.access_category(10) is AccessCategory.ROW_HIT

    def test_different_row_is_conflict(self, bank):
        bank.access(10, now=0)
        assert bank.access_category(11) is AccessCategory.ROW_CONFLICT


class TestPreparationLatency:
    def test_hit_has_zero_preparation(self, bank):
        bank.access(5, now=0)
        assert bank.preparation_latency(5) == 0

    def test_closed_pays_rcd(self, bank):
        assert bank.preparation_latency(5) == bank.timing.tRCD

    def test_conflict_pays_rp_plus_rcd(self, bank):
        bank.access(5, now=0)
        assert bank.preparation_latency(6) == bank.timing.tRP + bank.timing.tRCD


class TestAccessTiming:
    def test_access_respects_ready_time(self, bank):
        bank.access(1, now=0)
        bank.complete_access(100)
        column_ready, _ = bank.access(1, now=10)
        assert column_ready >= 100

    def test_access_updates_open_row(self, bank):
        bank.access(7, now=0)
        assert bank.open_row == 7
        bank.access(9, now=50)
        assert bank.open_row == 9

    def test_complete_access_is_monotonic(self, bank):
        bank.complete_access(100)
        bank.complete_access(50)
        assert bank.ready_at == 100

    def test_precharge_closes_row(self, bank):
        bank.access(3, now=0)
        bank.precharge(now=10)
        assert bank.open_row is None
        assert bank.ready_at >= 10 + bank.timing.tRP

    def test_is_ready(self, bank):
        assert bank.is_ready(0)
        bank.complete_access(20)
        assert not bank.is_ready(10)
        assert bank.is_ready(20)

    def test_reset_keeps_stats(self, bank):
        bank.access(3, now=0)
        bank.reset()
        assert bank.open_row is None
        assert bank.ready_at == 0
        assert bank.stats.reads == 1


class TestBankStats:
    def test_read_write_counting(self, bank):
        bank.access(1, now=0, is_write=False)
        bank.access(1, now=100, is_write=True)
        assert bank.stats.reads == 1
        assert bank.stats.writes == 1

    def test_category_counting(self, bank):
        bank.access(1, now=0)      # closed
        bank.access(1, now=100)    # hit
        bank.access(2, now=200)    # conflict
        stats = bank.stats
        assert stats.row_closed == 1
        assert stats.row_hits == 1
        assert stats.row_conflicts == 1
        assert stats.activations == 2
        assert stats.precharges == 1

    def test_merge(self):
        a = BankStats(activations=1, reads=2)
        b = BankStats(activations=3, writes=4, row_hits=5)
        a.merge(b)
        assert a.activations == 4
        assert a.reads == 2
        assert a.writes == 4
        assert a.row_hits == 5
