"""Tests for the telemetry subsystem (metrics, manifests, status, logs).

Covers the metrics registry's snapshot-and-merge algebra (the
commutative/associative rules that make fleet aggregation
deterministic), the observe-only hooks threaded through the engines and
the result cache, run manifests, the coordinator's live status surface
(including version tolerance of the feature negotiation), the logging
setup, and the CLI's ``status``/``runs`` subcommands — ending with the
acceptance bar: a telemetry-enabled run's JSON export is byte-identical
to a ``--no-telemetry`` run's.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import socket
import threading
import time

import pytest

from repro import telemetry
from repro.cpu.trace import Trace, TraceEntry
from repro.distributed import Coordinator, run_worker
from repro.distributed.protocol import (
    FEATURES,
    decode_message,
    encode_message,
    hello_message,
    metrics_message,
    peer_features,
    result_to_wire,
    unit_from_wire,
    unit_to_wire,
)
from repro.dram.address import AddressMapping
from repro.dram.timing import DRAMOrganization
from repro.orchestration import (
    InMemoryResultStore,
    ResultCache,
    SerialExecutor,
    SimulationUnit,
    point_key,
)
from repro.orchestration.executors import store_put
from repro.sim.config import ENGINE_EVENT, ENGINE_TICK, baseline_config
from repro.sim.system import System
from repro.telemetry import logs
from repro.telemetry.manifest import (
    list_manifests,
    load_manifest,
    summarize_manifest,
    write_manifest,
)
from repro.telemetry.status import (
    REQUIRED_FIELDS,
    fetch_status,
    format_status,
    validate_status,
)
from repro.workloads.mixes import ROW_OFFSET_STRIDE
from repro.workloads.suites import applications_by_category
from repro.workloads.synthetic import generate_application_trace


def make_trace(name: str = "t", rng: bool = False, seed: int = 0, entries: int = 64) -> Trace:
    records = []
    for index in range(entries):
        records.append(
            TraceEntry(
                bubbles=3 + (index + seed) % 5,
                address=(index * 4096 + seed * 64) % (1 << 20),
                rng_bits=64 if rng and index % 16 == 0 else 0,
            )
        )
    return Trace(records, name=name, metadata={"seed": seed})


def make_unit(seed: int = 0, rng: bool = True, figure=None) -> SimulationUnit:
    traces = [make_trace(f"u{seed}", rng=rng, seed=seed)]
    config = baseline_config()
    return SimulationUnit(
        key=point_key(traces, config), traces=traces, config=config, figure=figure
    )


# ----------------------------------------------------------------- registry


class TestMetricsRegistry:
    def test_counter_gauge_timer_snapshot(self):
        registry = telemetry.MetricsRegistry()
        registry.counter("hits")
        registry.counter("hits", 2)
        registry.gauge("depth", 4.0)
        registry.gauge("depth", 2.0)  # last write wins locally
        registry.observe("seconds", 0.5)
        registry.observe("seconds", 1.5)
        snapshot = registry.snapshot()
        assert snapshot["schema"] == telemetry.SNAPSHOT_SCHEMA
        assert snapshot["counters"] == {"hits": 3}
        assert snapshot["gauges"] == {"depth": 2.0}
        assert snapshot["timers"]["seconds"] == {
            "count": 2,
            "total": 2.0,
            "min": 0.5,
            "max": 1.5,
        }
        assert registry.op_count == 6

    def test_snapshot_is_json_compatible(self):
        registry = telemetry.MetricsRegistry()
        registry.counter("a")
        registry.gauge("g", 1.5)
        registry.observe("t", 0.25)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_time_context_manager(self):
        registry = telemetry.MetricsRegistry()
        with registry.time("block"):
            pass
        timer = registry.snapshot()["timers"]["block"]
        assert timer["count"] == 1
        assert timer["total"] >= 0.0

    def test_disabled_registry_records_nothing(self):
        registry = telemetry.MetricsRegistry(enabled=False)
        registry.counter("hits")
        registry.gauge("depth", 1.0)
        registry.observe("seconds", 1.0)
        with registry.time("block"):
            pass
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["timers"] == {}
        assert registry.op_count == 0

    def test_merge_is_commutative_and_associative(self):
        snapshots = []
        for seed in range(3):
            registry = telemetry.MetricsRegistry()
            registry.counter("points", seed + 1)
            registry.gauge("depth", float(seed))
            registry.observe("seconds", 0.1 * (seed + 1))
            snapshots.append(registry.snapshot())
        a, b, c = snapshots
        forward = telemetry.merge_snapshots(a, b, c)
        reversed_ = telemetry.merge_snapshots(c, b, a)
        nested = telemetry.merge_snapshots(telemetry.merge_snapshots(a, b), c)
        # Counters (ints), gauges (max) and timer count/min/max are exact
        # under any merge order; timer totals are float sums, identical
        # only up to IEEE-754 rounding.
        for merged in (reversed_, nested):
            assert merged["counters"] == forward["counters"]
            assert merged["gauges"] == forward["gauges"]
            for name, timer in forward["timers"].items():
                other = merged["timers"][name]
                assert other["count"] == timer["count"]
                assert other["min"] == timer["min"]
                assert other["max"] == timer["max"]
                assert other["total"] == pytest.approx(timer["total"])
        assert forward["counters"]["points"] == 6
        assert forward["gauges"]["depth"] == 2.0  # merge takes the max
        timer = forward["timers"]["seconds"]
        assert timer["count"] == 3
        assert timer["min"] == pytest.approx(0.1)
        assert timer["max"] == pytest.approx(0.3)

    def test_merge_skips_none(self):
        registry = telemetry.MetricsRegistry()
        registry.counter("x")
        snapshot = registry.snapshot()
        assert telemetry.merge_snapshots(None, snapshot, None)["counters"] == {"x": 1}

    def test_isolated_swaps_and_restores_process_registry(self):
        before = telemetry.registry()
        with telemetry.isolated() as fresh:
            assert telemetry.registry() is fresh
            telemetry.counter("inside")
            assert fresh.snapshot()["counters"] == {"inside": 1}
        assert telemetry.registry() is before
        assert "inside" not in telemetry.snapshot()["counters"]

    def test_disabled_scope_restores_state(self):
        with telemetry.isolated():
            assert telemetry.enabled()
            with telemetry.disabled():
                assert not telemetry.enabled()
                telemetry.counter("dropped")
            assert telemetry.enabled()
            assert telemetry.snapshot()["counters"] == {}


# ----------------------------------------------------------------- engine metrics


def _dense_fig18_style_traces(cores: int = 8, instructions: int = 2_000):
    """fig18 H-group shape scaled down for test time: deep read queues on
    every core, the regime where batched serve windows engage."""
    mapping = AddressMapping(DRAMOrganization())
    pool = applications_by_category()["H"]
    return [
        generate_application_trace(
            pool[slot % len(pool)],
            instructions,
            seed=17 + slot,
            mapping=mapping,
            row_offset=slot * ROW_OFFSET_STRIDE,
        )
        for slot in range(cores)
    ]


class TestEngineInstrumentation:
    def test_serve_window_counters_nonzero_on_dense_config(self):
        config = dataclasses.replace(baseline_config(), engine=ENGINE_EVENT)
        with telemetry.isolated() as registry:
            system = System(_dense_fig18_style_traces(), config)
            system.run()
        engine = system.last_engine
        assert engine.serve_windows > 0
        assert engine.serve_window_cycles > engine.serve_windows
        counters = registry.snapshot()["counters"]
        assert counters["engine.serve_windows"] == engine.serve_windows
        assert counters["engine.serve_window_cycles"] == engine.serve_window_cycles

    def test_serve_window_counters_exactly_zero_on_idle_only_config(self):
        idle_traces = [
            Trace([TraceEntry(bubbles=50)] * 40, name=f"idle{core}") for core in range(2)
        ]
        config = dataclasses.replace(baseline_config(), engine=ENGINE_EVENT)
        with telemetry.isolated() as registry:
            system = System(idle_traces, config)
            system.run()
        assert system.last_engine.serve_windows == 0
        assert system.last_engine.serve_window_cycles == 0
        counters = registry.snapshot()["counters"]
        # Zero-valued engine counters are elided entirely, not recorded as 0.
        assert "engine.serve_windows" not in counters
        assert "engine.serve_window_cycles" not in counters

    def test_run_records_sim_counters_per_engine(self):
        trace = make_trace()
        with telemetry.isolated() as registry:
            System([trace], dataclasses.replace(baseline_config(), engine=ENGINE_EVENT)).run()
            System([trace], dataclasses.replace(baseline_config(), engine=ENGINE_TICK)).run()
        snapshot = registry.snapshot()
        assert snapshot["counters"]["sim.runs"] == 2
        assert snapshot["counters"]["sim.runs.event"] == 1
        assert snapshot["counters"]["sim.runs.tick"] == 1
        assert snapshot["counters"]["sim.cycles"] > 0
        assert snapshot["timers"]["sim.run_seconds"]["count"] == 2

    def test_telemetry_never_changes_result_bits(self):
        trace = make_trace(rng=True)
        config = baseline_config()
        with telemetry.isolated(enabled=True):
            with_telemetry = System([trace], config).run()
        with telemetry.isolated(enabled=False):
            without = System([trace], config).run()
        assert with_telemetry == without


# ----------------------------------------------------------------- cache stats


class TestResultCacheStats:
    @pytest.fixture(scope="class")
    def simulated(self):
        trace = make_trace()
        config = baseline_config()
        return trace, config, System([trace], config).run()

    def test_hit_and_miss_accounting(self, tmp_path, simulated):
        trace, config, result = simulated
        key = point_key([trace], config)
        with telemetry.isolated() as registry:
            cache = ResultCache(tmp_path)
            assert cache.get(key) is None  # cold miss
            cache.put(key, result)
            assert cache.get(key) == result  # memo hit
            fresh = ResultCache(tmp_path)
            assert fresh.get(key) == result  # disk hit
            assert fresh.get(key) == result  # memo hit
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        assert stats["total_bytes"] > 0
        fresh_stats = fresh.stats()
        assert fresh_stats["hits"] == 2
        assert fresh_stats["misses"] == 0
        counters = registry.snapshot()["counters"]
        assert counters["cache.hits"] == 3
        assert counters["cache.misses"] == 1
        assert counters["cache.puts"] == 1
        assert counters["cache.put_bytes"] == stats["total_bytes"]

    def test_stats_by_figure_breakdown(self, tmp_path, simulated):
        trace, config, result = simulated
        cache = ResultCache(tmp_path)
        labeled_key = point_key([trace], config)
        other = make_trace(seed=5)
        unlabeled_key = point_key([other], config)
        cache.put(labeled_key, result, figure="fig6")
        cache.put(unlabeled_key, result)
        breakdown = cache.stats_by_figure()
        assert breakdown["fig6"]["entries"] == 1
        assert breakdown[ResultCache.UNATTRIBUTED]["entries"] == 1
        assert sum(bucket["entries"] for bucket in breakdown.values()) == 2
        assert sum(bucket["total_bytes"] for bucket in breakdown.values()) == (
            cache.stats()["total_bytes"]
        )

    def test_figure_label_never_enters_the_key_or_payload_result(self, tmp_path, simulated):
        trace, config, result = simulated
        key = point_key([trace], config)
        cache = ResultCache(tmp_path)
        cache.put(key, result, figure="fig6")
        # Same key regardless of attribution; a fresh reader returns the
        # exact result (the label is reporting-only metadata).
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) == result
        payload = json.loads(cache._path(key).read_text(encoding="utf-8"))
        assert payload["figure"] == "fig6"
        assert payload["key"] == key


class TestStorePut:
    def test_figure_aware_store_receives_label(self, tmp_path):
        result = System([make_trace()], baseline_config()).run()
        cache = ResultCache(tmp_path)
        store_put(cache, "ab" + "0" * 62, result, "fig9")
        assert cache.stats_by_figure()["fig9"]["entries"] == 1

    def test_two_argument_store_still_works(self):
        class TwoArgStore:
            def __init__(self):
                self.committed = {}

            def put(self, key, result):
                self.committed[key] = result

        store = TwoArgStore()
        result = System([make_trace()], baseline_config()).run()
        store_put(store, "k", result, "fig9")
        assert store.committed == {"k": result}

    def test_in_memory_store_accepts_label(self):
        store = InMemoryResultStore()
        result = System([make_trace()], baseline_config()).run()
        store_put(store, "k", result, "fig9")
        assert store.get("k") == result


# ----------------------------------------------------------------- manifests


class TestRunManifests:
    def test_write_load_list_round_trip(self, tmp_path):
        with telemetry.isolated():
            telemetry.counter("sim.runs", 3)
            path = write_manifest(
                tmp_path,
                experiments=["fig6", "fig11"],
                started_at=1700000000.0,
                finished_at=1700000100.0,
                argv=["fig6", "fig11", "--jobs", "2"],
                kwargs={"instructions": 4000},
                executor="process",
                engine="event",
                stats={"planned": 8, "executed": 5, "reused": 3},
                cache={"entries": 8, "total_bytes": 1024, "hits": 3, "misses": 5},
            )
        assert path.is_file()
        assert path.parent == tmp_path / "runs"
        manifests = list_manifests(tmp_path)
        assert len(manifests) == 1
        manifest = manifests[0]
        assert manifest["experiments"] == ["fig6", "fig11"]
        assert manifest["duration_seconds"] == 100.0
        assert manifest["executor"] == "process"
        assert manifest["metrics"]["counters"]["sim.runs"] == 3
        # Exact id and unambiguous prefix both resolve.
        assert load_manifest(tmp_path, manifest["run_id"]) == manifest
        assert load_manifest(tmp_path, manifest["run_id"][:10]) == manifest
        assert load_manifest(tmp_path, "nope") is None
        summary = summarize_manifest(manifest)
        assert manifest["run_id"] in summary
        assert "executed 5" in summary

    def test_torn_manifest_is_skipped(self, tmp_path):
        write_manifest(tmp_path, experiments=["fig6"], started_at=1700000000.0)
        (tmp_path / "runs" / "torn.json").write_text("{not json", encoding="utf-8")
        assert len(list_manifests(tmp_path)) == 1

    def test_manifests_sorted_oldest_first(self, tmp_path):
        write_manifest(tmp_path, experiments=["b"], started_at=1700000200.0)
        write_manifest(tmp_path, experiments=["a"], started_at=1700000100.0)
        manifests = list_manifests(tmp_path)
        assert [m["experiments"] for m in manifests] == [["a"], ["b"]]


# ----------------------------------------------------------------- status surface


FAST = dict(lease_timeout=0.4, straggler_timeout=0.3, retry_seconds=0.05)


class FakeWorker:
    """A hand-driven protocol client for exercising the coordinator."""

    def __init__(self, address, name="fake"):
        self.connection = socket.create_connection(address)
        self.stream = self.connection.makefile("rb")
        self.send(hello_message(name))
        self.welcome = self.receive()
        assert self.welcome["type"] == "welcome"

    def send(self, payload):
        self.connection.sendall(encode_message(payload))

    def receive(self):
        return decode_message(self.stream.readline())

    def lease_work(self, attempts=50):
        for _ in range(attempts):
            self.send({"type": "lease"})
            reply = self.receive()
            if reply["type"] in ("work", "done"):
                return reply
            time.sleep(reply.get("seconds", 0.05))
        raise AssertionError("coordinator never handed out work")

    def finish(self, key, result):
        self.send({"type": "result", "key": key, "result": result_to_wire(result)})
        assert self.receive()["type"] == "ack"

    def close(self):
        try:
            self.connection.close()
        except OSError:
            pass


@pytest.fixture
def unit_and_result():
    unit = make_unit(figure="fig6")
    return unit, System(unit.traces, unit.config).run()


class TestStatusSurface:
    def test_welcome_advertises_features_and_peer_features_parses(self, unit_and_result):
        unit, _ = unit_and_result
        coordinator = Coordinator([unit], InMemoryResultStore(), **FAST)
        address = coordinator.start()
        try:
            worker = FakeWorker(address)
            features = peer_features(worker.welcome)
            assert features == frozenset(FEATURES)
            assert "metrics" in features and "status" in features
            worker.close()
        finally:
            coordinator.stop()

    def test_peer_features_tolerates_pre_telemetry_welcome(self):
        # An old coordinator sends no features field at all; a hostile or
        # garbled one may send the wrong type.  Both map to "send nothing
        # optional", the original message set.
        assert peer_features({"type": "welcome"}) == frozenset()
        assert peer_features({"type": "welcome", "features": "metrics"}) == frozenset()
        assert peer_features({"type": "welcome", "features": [1, "status"]}) == (
            frozenset({"status"})
        )

    def test_status_payload_shape_and_live_progress(self, unit_and_result):
        unit, result = unit_and_result
        store = InMemoryResultStore()
        coordinator = Coordinator([unit], store, **FAST)
        address = coordinator.start()
        try:
            payload = coordinator.status_payload()
            assert validate_status(payload) == []
            assert payload["points"] == 1
            assert payload["completed"] == 0
            assert payload["figures"]["fig6"]["points"] == 1
            assert payload["workers"] == {}

            worker = FakeWorker(address, name="w1")
            work = worker.lease_work()
            assert work["type"] == "work"
            mid = fetch_status(address)
            assert validate_status(mid) == []
            assert mid["leases"] == 1
            assert mid["workers"]["w1"]["leases"] == 1
            assert mid["workers"]["w1"]["last_seen_seconds"] is not None

            # The worker streams a cumulative telemetry snapshot; the
            # coordinator folds the latest one into the fleet view.
            registry = telemetry.MetricsRegistry()
            registry.counter("worker.points")
            worker.send(metrics_message("w1", registry.snapshot()))
            worker.finish(unit.key, result)
            assert coordinator.wait(timeout=5)

            final = fetch_status(address)
            assert validate_status(final) == []
            assert final["completed"] == 1
            assert final["figures"]["fig6"]["completed"] == 1
            assert final["figures"]["fig6"]["eta_seconds"] == 0.0
            assert final["workers"]["w1"]["completed"] == 1
            counters = final["metrics"]["counters"]
            assert counters["coordinator.lease_grants"] >= 1
            assert counters["coordinator.results_committed"] == 1
            assert counters["worker.points"] == 1
            assert coordinator.fleet_metrics()["counters"]["worker.points"] == 1
            assert "w1" in coordinator.worker_snapshots()
            worker.close()
        finally:
            coordinator.stop()

    def test_repeated_metrics_snapshots_are_not_double_counted(self, unit_and_result):
        unit, _ = unit_and_result
        coordinator = Coordinator([unit], InMemoryResultStore(), **FAST)
        address = coordinator.start()
        try:
            worker = FakeWorker(address, name="w1")
            registry = telemetry.MetricsRegistry()
            for _ in range(3):
                registry.counter("worker.waits")
                worker.send(metrics_message("w1", registry.snapshot()))
            # metrics messages get no reply; a lease round-trip flushes them.
            worker.lease_work()
            assert coordinator.fleet_metrics()["counters"]["worker.waits"] == 3
            worker.close()
        finally:
            coordinator.stop()

    def test_validate_status_flags_malformed_payloads(self):
        assert validate_status({}) == list(REQUIRED_FIELDS)
        good = {field: 0 for field in REQUIRED_FIELDS}
        good.update(
            type="status",
            workers={},
            figures={},
            cache={},
            metrics={"counters": {}},
            elapsed_seconds=1.0,
            points_per_second=0.0,
        )
        assert validate_status(good) == []
        bad = dict(good, points="three", workers=[], metrics={"counters": 7})
        problems = validate_status(bad)
        assert set(problems) == {"points", "workers", "metrics"}

    def test_format_status_renders_every_section(self):
        payload = {
            "type": "status",
            "protocol": 1,
            "points": 4,
            "pending": 1,
            "completed": 2,
            "failed": 0,
            "leases": 1,
            "workers": {"w1": {"pid": 7, "leases": 3, "completed": 2, "last_seen_seconds": 0.5}},
            "elapsed_seconds": 65.0,
            "points_per_second": 0.25,
            "cache": {"hits": 3, "misses": 1},
            "figures": {"fig6": {"points": 4, "completed": 2, "eta_seconds": 8.0}},
            "metrics": {
                "counters": {
                    "coordinator.lease_grants": 3,
                    "codegen.emits": 2,
                    "codegen.disk_hits": 1,
                }
            },
        }
        rendered = format_status(payload)
        assert "2/4 done" in rendered
        assert "hit rate 75%" in rendered
        assert "fig6" in rendered and "eta 8s" in rendered
        assert "w1" in rendered and "last seen 0.5s ago" in rendered
        assert "3 granted" in rendered
        assert "codegen  2 emitted, 1 disk hits" in rendered
        # Without codegen traffic the line stays out of the view.
        plain = dict(payload, metrics={"counters": {"coordinator.lease_grants": 3}})
        assert "codegen" not in format_status(plain)

    def test_fetch_status_raises_on_unreachable_coordinator(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        with pytest.raises(OSError):
            fetch_status(("127.0.0.1", port), timeout=0.5)

    def test_worker_streams_metrics_end_to_end(self, unit_and_result):
        unit, _ = unit_and_result
        store = InMemoryResultStore()
        coordinator = Coordinator([unit], store, **FAST)
        host, port = coordinator.start()
        try:
            with telemetry.isolated():
                thread = threading.Thread(
                    target=run_worker,
                    args=(f"{host}:{port}",),
                    kwargs={"worker_id": "inproc"},
                    daemon=True,
                )
                thread.start()
                assert coordinator.wait(timeout=30)
                thread.join(timeout=10)
            snapshots = coordinator.worker_snapshots()
            assert "inproc" in snapshots
            counters = snapshots["inproc"]["counters"]
            assert counters["worker.points"] == 1
            assert snapshots["inproc"]["timers"]["worker.point_seconds"]["count"] == 1
            fleet = coordinator.fleet_metrics()["counters"]
            assert fleet["worker.points"] == 1
            assert fleet["coordinator.results_committed"] == 1
            # The worker's simulation itself reported engine telemetry.
            assert fleet["sim.runs"] >= 1
        finally:
            coordinator.stop()

    def test_unit_figure_survives_the_wire(self):
        unit = make_unit(figure="fig6")
        restored = unit_from_wire(json.loads(json.dumps(unit_to_wire(unit))))
        assert restored.figure == "fig6"
        bare = make_unit()
        assert unit_from_wire(json.loads(json.dumps(unit_to_wire(bare)))).figure is None


# ----------------------------------------------------------------- executors


class TestExecutorTelemetry:
    def test_serial_executor_counts_points_and_seconds(self):
        units = [make_unit(seed=seed, rng=False) for seed in range(2)]
        store = InMemoryResultStore()
        with telemetry.isolated() as registry:
            assert SerialExecutor().execute(units, store) == 2
        snapshot = registry.snapshot()
        assert snapshot["counters"]["executor.points_started"] == 2
        assert snapshot["counters"]["executor.points_finished"] == 2
        assert snapshot["timers"]["executor.point_seconds"]["count"] == 2


# ----------------------------------------------------------------- logging


class TestLogs:
    def test_verbosity_mapping(self):
        assert logs.verbosity_level() == logging.INFO
        assert logs.verbosity_level(verbose=1) == logging.INFO
        assert logs.verbosity_level(verbose=2) == logging.DEBUG
        assert logs.verbosity_level(quiet=1) == logging.WARNING
        assert logs.verbosity_level(quiet=2) == logging.CRITICAL
        # Quiet wins over verbose when both are given.
        assert logs.verbosity_level(verbose=3, quiet=1) == logging.WARNING

    def test_configure_is_idempotent(self):
        root = logs.configure()
        logs.configure(verbose=2)
        handlers = [h for h in root.handlers if getattr(h, "_repro_handler", False)]
        assert len(handlers) == 1
        assert root.level == logging.DEBUG
        logs.configure()  # back to the default level for later tests
        assert root.level == logging.INFO

    def test_lines_carry_timestamp_component_and_worker_id(self):
        import io
        import sys

        stream = io.StringIO()
        logs.configure(stream=stream)
        try:
            logs.get_logger("worker", "w7").info("leased a point")
            line = stream.getvalue().strip()
            assert "[repro.worker.w7]" in line
            assert "INFO leased a point" in line
            # Timestamped: the line starts with the YYYY-MM-DD date.
            assert line[:4].isdigit() and line[4] == "-"
        finally:
            logs.configure(stream=sys.stderr)


# ----------------------------------------------------------------- CLI


class TestCLI:
    def test_status_subcommand_against_live_coordinator(self, capsys):
        from repro.__main__ import main

        unit = make_unit(figure="fig6")
        coordinator = Coordinator([unit], InMemoryResultStore(), **FAST)
        host, port = coordinator.start()
        try:
            assert main(["status", "--connect", f"{host}:{port}"]) == 0
            captured = capsys.readouterr()
            assert "points   0/1 done" in captured.out
            assert "fig6" in captured.out
            assert "workers  (none connected yet)" in captured.out

            assert main(["status", "--connect", f"{host}:{port}", "--json"]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert validate_status(payload) == []
        finally:
            coordinator.stop()

    def test_status_subcommand_fails_cleanly_when_unreachable(self, capsys):
        from repro.__main__ import main

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        assert main(["status", "--connect", f"127.0.0.1:{port}", "--timeout", "0.5"]) == 1
        assert "could not fetch status" in capsys.readouterr().err

    def test_run_writes_manifest_and_no_telemetry_is_byte_identical(self, tmp_path, capsys):
        from repro.__main__ import main

        out_telemetry = tmp_path / "with.json"
        out_plain = tmp_path / "without.json"
        cache_telemetry = tmp_path / "cache-with"
        cache_plain = tmp_path / "cache-without"
        with telemetry.isolated():
            assert (
                main(
                    ["fig5", "--instructions", "2000", "--cache-dir", str(cache_telemetry),
                     "--json", str(out_telemetry)]
                )
                == 0
            )
        assert (
            main(
                ["fig5", "--instructions", "2000", "--cache-dir", str(cache_plain),
                 "--no-telemetry", "--json", str(out_plain)]
            )
            == 0
        )
        capsys.readouterr()
        # Telemetry is observe-only: the exported data is byte-identical.
        assert out_telemetry.read_bytes() == out_plain.read_bytes()
        # The telemetry run left exactly one manifest; --no-telemetry none.
        manifests = list_manifests(cache_telemetry)
        assert len(manifests) == 1
        assert manifests[0]["experiments"] == ["fig5"]
        assert manifests[0]["stats"]["executed"] > 0
        assert manifests[0]["metrics"]["counters"]["sim.runs"] > 0
        assert list_manifests(cache_plain) == []

        # `repro runs` lists and inspects the manifest.
        assert main(["runs", "--cache-dir", str(cache_telemetry)]) == 0
        listing = capsys.readouterr().out
        assert manifests[0]["run_id"] in listing
        assert "executed" in listing
        assert main(["runs", manifests[0]["run_id"][:10], "--cache-dir",
                     str(cache_telemetry)]) == 0
        detail = capsys.readouterr().out
        assert "sim.runs" in detail

        assert main(["runs", "--cache-dir", str(cache_plain)]) == 0
        assert "no run manifests" in capsys.readouterr().out

    def test_cache_subcommand_shows_figure_breakdown(self, tmp_path, capsys):
        from repro.__main__ import main

        cache_dir = tmp_path / "cache"
        with telemetry.isolated():
            assert main(["fig5", "--instructions", "2000", "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert main(["cache", "--cache-dir", str(cache_dir)]) == 0
        captured = capsys.readouterr().out
        assert "fig5" in captured
        assert "entries," in captured
