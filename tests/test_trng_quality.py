"""Tests for the randomness-quality test suite."""

import numpy as np
import pytest

from repro.trng.entropy import EntropySource
from repro.trng.quality import (
    all_tests_pass,
    block_frequency_test,
    monobit_test,
    run_all_tests,
    runs_test,
    serial_twobit_test,
    shannon_entropy,
)


@pytest.fixture(scope="module")
def good_bits():
    return np.random.default_rng(7).integers(0, 2, size=20_000)


@pytest.fixture(scope="module")
def entropy_bits():
    return EntropySource(seed=11).generate_bits(20_000)


class TestOnGoodRandomness:
    def test_monobit_passes(self, good_bits):
        assert monobit_test(good_bits).passed

    def test_block_frequency_passes(self, good_bits):
        assert block_frequency_test(good_bits).passed

    def test_runs_passes(self, good_bits):
        assert runs_test(good_bits).passed

    def test_serial_passes(self, good_bits):
        assert serial_twobit_test(good_bits).passed

    def test_entropy_near_one(self, good_bits):
        assert shannon_entropy(good_bits) > 0.95

    def test_all_tests_pass_on_entropy_source_output(self, entropy_bits):
        assert all_tests_pass(entropy_bits)

    def test_run_all_returns_every_test(self, good_bits):
        results = run_all_tests(good_bits)
        assert {r.name for r in results} == {"monobit", "block_frequency", "runs", "serial_twobit"}


class TestOnBadRandomness:
    def test_all_zeros_fails_monobit(self):
        assert not monobit_test([0] * 5000).passed

    def test_alternating_fails_runs(self):
        bits = [0, 1] * 2500
        assert not runs_test(bits).passed

    def test_biased_stream_fails(self):
        rng = np.random.default_rng(0)
        biased = (rng.random(20_000) < 0.7).astype(int)
        assert not monobit_test(biased).passed

    def test_repeating_pattern_fails_serial(self):
        bits = [0, 0, 1] * 5000
        assert not serial_twobit_test(bits).passed

    def test_constant_has_zero_entropy(self):
        assert shannon_entropy([1] * 4096) == pytest.approx(0.0)


class TestInputValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            monobit_test([])

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            monobit_test([0, 1, 2])

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            block_frequency_test([0, 1] * 10, block_size=0)
        with pytest.raises(ValueError):
            block_frequency_test([0, 1], block_size=128)

    def test_result_string_contains_verdict(self):
        result = monobit_test(np.random.default_rng(1).integers(0, 2, 4096))
        assert "PASS" in str(result) or "FAIL" in str(result)
