"""Tests for DRAM timing parameters and organization."""

import pytest

from repro.dram.timing import (
    DRAMOrganization,
    DRAMTiming,
    ddr3_1066,
    ddr3_1600,
    ddr4_2400,
    timing_preset,
)


class TestDRAMTiming:
    def test_default_is_ddr3_1600(self):
        timing = DRAMTiming()
        assert timing.name == "DDR3-1600"
        assert timing.tck_ns == pytest.approx(1.25)

    def test_bus_frequency(self):
        assert DRAMTiming().bus_frequency_mhz == pytest.approx(800.0)
        assert ddr3_1066().bus_frequency_mhz == pytest.approx(533.33, rel=1e-3)

    def test_latency_orderings(self):
        timing = DRAMTiming()
        assert timing.row_hit_latency < timing.row_closed_latency < timing.row_conflict_latency

    def test_row_hit_latency_components(self):
        timing = DRAMTiming()
        assert timing.row_hit_latency == timing.tCL + timing.tBL
        assert timing.row_conflict_latency == timing.tRP + timing.tRCD + timing.tCL + timing.tBL

    def test_ns_to_cycles_rounds_up(self):
        timing = DRAMTiming()
        assert timing.ns_to_cycles(1.25) == 1
        assert timing.ns_to_cycles(1.26) == 2
        assert timing.ns_to_cycles(0.0) == 0

    def test_cycles_to_ns_roundtrip(self):
        timing = DRAMTiming()
        assert timing.cycles_to_ns(timing.ns_to_cycles(100.0)) >= 100.0

    def test_presets(self):
        assert timing_preset("DDR3-1600").name == "DDR3-1600"
        assert timing_preset("DDR3-1066").name == "DDR3-1066"
        assert timing_preset("DDR4-2400").name == "DDR4-2400"

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            timing_preset("DDR5-9999")

    def test_ddr4_is_faster_clock(self):
        assert ddr4_2400().tck_ns < ddr3_1600().tck_ns


class TestDRAMOrganization:
    def test_defaults_match_table1(self):
        org = DRAMOrganization()
        assert org.channels == 4
        assert org.ranks_per_channel == 1
        assert org.banks_per_rank == 8
        assert org.rows_per_bank == 65536

    def test_derived_counts(self):
        org = DRAMOrganization()
        assert org.banks_per_channel == 8
        assert org.total_banks == 32
        assert org.row_size_bytes == 128 * 64

    def test_capacity(self):
        org = DRAMOrganization()
        expected = 32 * 65536 * 128 * 64
        assert org.capacity_bytes == expected

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            DRAMOrganization(channels=0)
        with pytest.raises(ValueError):
            DRAMOrganization(banks_per_rank=-1)
        with pytest.raises(ValueError):
            DRAMOrganization(rows_per_bank=0)
